#!/usr/bin/env bash
# Appends one compact summary row per BENCH_*.json report to
# bench/history.jsonl — a durable perf trail CI uploads as an artifact
# so trends survive individual runs. Each line is a self-contained JSON
# object tagged with the report kind, the commit, and a UTC timestamp.
# Missing reports are skipped, never fatal.
#
#   scripts/bench_history.sh [--out bench/history.jsonl] [BENCH_*.json ...]
set -euo pipefail

OUT="bench/history.jsonl"
REPORTS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --out)
            OUT="${2:?--out needs a value}"
            shift 2
            ;;
        *)
            REPORTS+=("$1")
            shift
            ;;
    esac
done
if [ ${#REPORTS[@]} -eq 0 ]; then
    REPORTS=(BENCH_server.json BENCH_shard_scaling.json \
             BENCH_replica_scaling.json BENCH_reshard.json \
             BENCH_oplog.json BENCH_twostage.json BENCH_planner.json)
fi

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
mkdir -p "$(dirname "$OUT")"

python3 - "$OUT" "$COMMIT" "${REPORTS[@]}" <<'PY'
import datetime
import json
import os
import sys

out_path, commit = sys.argv[1:3]
reports = sys.argv[3:]
stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
    "%Y-%m-%dT%H:%M:%SZ")


def summarise(report):
    """One flat row of the headline numbers for each report shape."""
    if "throughput_rps" in report:  # loadgen (BENCH_server.json)
        row = {
            "kind": "server",
            "requests": report["requests"],
            "errors": report["errors"],
            "throughput_rps": round(report["throughput_rps"], 1),
            "p50_ms": round(report["latency_ms"]["p50_ms"], 3),
            "p99_ms": round(report["latency_ms"]["p99_ms"], 3),
            "mix": report["mix"],
        }
        delta = report.get("metrics_delta")
        if delta:
            row["server_5xx"] = delta["responses_5xx"]
            row["bound_pruned"] = delta["bound_pruned"]
            row["planner_skipped"] = delta["planner_skipped"]
        return row
    if "speedup_4_vs_1" in report:
        return {
            "kind": "shard_scaling",
            "speedup_4_vs_1": round(report["speedup_4_vs_1"], 3),
            "shards": [p["shards"] for p in report["sweep"]],
            "throughput_qps": [round(p["throughput_qps"], 1)
                               for p in report["sweep"]],
        }
    if "speedup_3_vs_1" in report:
        return {
            "kind": "replica_scaling",
            "speedup_3_vs_1": round(report["speedup_3_vs_1"], 3),
        }
    if report.get("benchmark") == "planner":
        return {
            "kind": "planner",
            "speedup_p95": round(report["speedup_p95"], 3),
            "v2_p95_us": round(report["v2"]["p95_us"], 1),
            "v2_scored": report["v2"]["scored"],
            "naive_scored": report["naive"]["scored"],
        }
    if "catchup" in report:
        return {
            "kind": "oplog",
            "replay_speedup": round(report["catchup"]["replay_speedup"], 2),
        }
    if "frontier" in report:
        last = report["sweep"][-1]
        return {
            "kind": "twostage",
            "images": last["images"],
            "scored_fraction": round(last["scored_fraction"], 3),
            "speedup_p50": round(last["speedup_p50"], 3),
        }
    if "from" in report and "to" in report:
        best = min(report["sweep"], key=lambda p: p["reshard_ms"])
        return {
            "kind": "reshard",
            "to_shards": report["to"],
            "best_reshard_ms": round(best["reshard_ms"], 1),
            "p95_during_ms": round(best["during"]["p95_ms"], 3),
        }
    return {"kind": "unknown"}


rows = 0
with open(out_path, "a") as out:
    for path in reports:
        if not os.path.exists(path):
            continue
        with open(path) as f:
            report = json.load(f)
        row = {"ts": stamp, "commit": commit, "source": os.path.basename(path)}
        row.update(summarise(report))
        out.write(json.dumps(row, sort_keys=True) + "\n")
        rows += 1
print(f"bench_history: appended {rows} row(s) to {out_path}")
PY
