#!/usr/bin/env bash
# Renders the BENCH_*.json reports as a GitHub-flavoured markdown
# summary (CI appends the output to $GITHUB_STEP_SUMMARY so every PR
# shows its perf trajectory). Missing files are noted, not fatal.
#
#   scripts/bench_summary.sh [BENCH_server.json] [BENCH_shard_scaling.json] [BENCH_replica_scaling.json] [BENCH_reshard.json] [BENCH_oplog.json] [BENCH_twostage.json] [BENCH_planner.json]
set -euo pipefail

SERVER="${1:-BENCH_server.json}"
SCALING="${2:-BENCH_shard_scaling.json}"
REPLICAS="${3:-BENCH_replica_scaling.json}"
RESHARD="${4:-BENCH_reshard.json}"
OPLOG="${5:-BENCH_oplog.json}"
TWOSTAGE="${6:-BENCH_twostage.json}"
PLANNER="${7:-BENCH_planner.json}"

python3 - "$SERVER" "$SCALING" "$REPLICAS" "$RESHARD" "$OPLOG" "$TWOSTAGE" "$PLANNER" <<'PY'
import json
import os
import sys

(server_path, scaling_path, replica_path, reshard_path, oplog_path,
 twostage_path, planner_path) = sys.argv[1:8]

print("## Perf trajectory")
print()

if os.path.exists(server_path):
    with open(server_path) as f:
        report = json.load(f)
    lat = report["latency_ms"]
    print("### Server loadgen")
    print()
    print("| requests | errors | throughput | p50 | p95 | p99 | mix |")
    print("|---:|---:|---:|---:|---:|---:|:---|")
    print(f"| {report['requests']} | {report['errors']} "
          f"| {report['throughput_rps']:.0f} req/s "
          f"| {lat['p50_ms']:.2f} ms | {lat['p95_ms']:.2f} ms "
          f"| {lat['p99_ms']:.2f} ms | `{report['mix']}` |")
    print()
    delta = report.get("metrics_delta")
    if delta:
        print("Server counter movement over the run "
              "(`/v1/metrics` scraped at start and end):")
        print()
        print("| requests | 2xx | 4xx | 5xx | bound pruned | planner skips |")
        print("|---:|---:|---:|---:|---:|---:|")
        print(f"| {delta['requests']} | {delta['responses_2xx']} "
              f"| {delta['responses_4xx']} | {delta['responses_5xx']} "
              f"| {delta['bound_pruned']} | {delta['planner_skipped']} |")
        print()
    trace = report.get("trace")
    if trace:
        print(f"Server-side stage timings over {trace['sampled']} traced "
              "searches (means; scatter = parallel fan-out wall-clock):")
        print()
        print("| planner | scatter | gather | total mean | total max |")
        print("|---:|---:|---:|---:|---:|")
        print(f"| {trace['planner_mean_ms']:.3f} ms "
              f"| {trace['scatter_mean_ms']:.3f} ms "
              f"| {trace['gather_mean_ms']:.3f} ms "
              f"| {trace['total_mean_ms']:.3f} ms "
              f"| {trace['total_max_ms']:.3f} ms |")
        print()
else:
    print(f"_no {server_path} found_")
    print()

if os.path.exists(scaling_path):
    with open(scaling_path) as f:
        scaling = json.load(f)
    print(f"### Shard scaling "
          f"({scaling['images']} images, {scaling['readers']} readers + "
          f"{scaling['writers']} writers, {scaling['host_threads']} host threads)")
    print()
    print("| shards | searches | throughput | p50 | p95 | p99 |")
    print("|---:|---:|---:|---:|---:|---:|")
    for point in scaling["sweep"]:
        print(f"| {point['shards']} | {point['searches']} "
              f"| {point['throughput_qps']:.1f} q/s "
              f"| {point['p50_ms']:.2f} ms | {point['p95_ms']:.2f} ms "
              f"| {point['p99_ms']:.2f} ms |")
    print()
    print(f"**4-shard vs 1-shard query throughput: "
          f"{scaling['speedup_4_vs_1']:.2f}×**"
          + (" _(single-core host — scatter-gather cannot scale here)_"
             if scaling.get("host_threads", 0) == 1 else ""))
    print()
else:
    print(f"_no {scaling_path} found_")
    print()

if os.path.exists(replica_path):
    with open(replica_path) as f:
        replica = json.load(f)
    print(f"### Replica scaling "
          f"({replica['images']} images over {replica['shards']} shards, "
          f"{replica['readers']} readers + {replica['writers']} writers, "
          f"{replica['host_threads']} host threads)")
    print()
    print("| replicas | mode | searches | throughput | p50 | p95 | p99 | writes/s |")
    print("|---:|:---|---:|---:|---:|---:|---:|---:|")
    for point in replica["sweep"]:
        writes_per_s = point.get("writes_per_s")
        writes = (f"{writes_per_s:.0f}" if writes_per_s is not None
                  else str(point["writes"]))
        print(f"| {point['replicas']} | {point.get('mode', 'sync')} "
              f"| {point['searches']} "
              f"| {point['throughput_qps']:.1f} q/s "
              f"| {point['p50_ms']:.2f} ms | {point['p95_ms']:.2f} ms "
              f"| {point['p99_ms']:.2f} ms | {writes} |")
    print()
    print(f"**3-replica vs 1-replica query throughput (sync): "
          f"{replica['speedup_3_vs_1']:.2f}×**"
          + (" _(single-core host — replica fan-out cannot scale here)_"
             if replica.get("host_threads", 0) == 1 else ""))
    if "async_write_speedup_vs_sync" in replica:
        print()
        print(f"**R=3 write throughput vs sync: "
              f"quorum {replica['quorum_write_speedup_vs_sync']:.2f}×, "
              f"async {replica['async_write_speedup_vs_sync']:.2f}×**")
    print()
else:
    print(f"_no {replica_path} found_")
    print()

if os.path.exists(reshard_path):
    with open(reshard_path) as f:
        reshard = json.load(f)
    print(f"### Online reshard {reshard['from']} → {reshard['to']} shards "
          f"({reshard['images']} images × {reshard['replicas']} replicas, "
          f"{reshard['readers']} readers, {reshard['host_threads']} host threads)")
    print()
    print("| batch | migration | moved | batches "
          "| p95 before | p95 during | p95 after | p99 during |")
    print("|---:|---:|---:|---:|---:|---:|---:|---:|")
    for point in reshard["sweep"]:
        print(f"| {point['batch']} | {point['reshard_ms']:.1f} ms "
              f"| {point['moved']} | {point['batches']} "
              f"| {point['before']['p95_ms']:.2f} ms "
              f"| {point['during']['p95_ms']:.2f} ms "
              f"| {point['after']['p95_ms']:.2f} ms "
              f"| {point['during']['p99_ms']:.2f} ms |")
    print()
    print("Latency *during* spans the whole live migration window; "
          "bigger batches finish faster but pause longer per step.")
    print()
else:
    print(f"_no {reshard_path} found_")
    print()

if os.path.exists(oplog_path):
    with open(oplog_path) as f:
        oplog = json.load(f)
    catchup = oplog["catchup"]
    print(f"### Op log ({oplog['images']} images, "
          f"{oplog['gap']}-write catch-up gap, "
          f"{oplog['writes']} writes per measurement)")
    print()
    print(f"Replica catch-up: replay {catchup['replay_ms']:.2f} ms vs "
          f"clone {catchup['clone_ms']:.2f} ms "
          f"(**{catchup['replay_speedup']:.1f}× faster by replay**)")
    print()
    print("| WAL | inserts/s |")
    print("|:---|---:|")
    for point in oplog["wal"]:
        print(f"| {point['config']} | {point['inserts_per_s']:.0f} |")
    print()
    print("| ack mode (R=3) | p50 | p95 |")
    print("|:---|---:|---:|")
    for point in oplog["ack"]:
        print(f"| {point['mode']} | {point['p50_us']:.1f} µs "
              f"| {point['p95_us']:.1f} µs |")
    print()
else:
    print(f"_no {oplog_path} found_")
    print()

if os.path.exists(twostage_path):
    with open(twostage_path) as f:
        twostage = json.load(f)
    print(f"### Two-stage retrieval "
          f"(frontier {twostage['frontier']}, top-{twostage['top_k']}, "
          f"{twostage['queries']} queries per size; rankings asserted "
          "bit-identical to exhaustive)")
    print()
    print("| images | candidates | exactly scored | scored frac "
          "| exhaustive p50 | staged p50 | speedup |")
    print("|---:|---:|---:|---:|---:|---:|---:|")
    for point in twostage["sweep"]:
        print(f"| {point['images']} | {point['candidates']} "
              f"| {point['scored']} | {point['scored_fraction']:.2f} "
              f"| {point['exhaustive_p50_us'] / 1000:.2f} ms "
              f"| {point['staged_p50_us'] / 1000:.2f} ms "
              f"| {point['speedup_p50']:.2f}× |")
    print()
else:
    print(f"_no {twostage_path} found_")
    print()

if os.path.exists(planner_path):
    with open(planner_path) as f:
        planner = json.load(f)
    print(f"### Planner v2 under hot-shard skew "
          f"({planner['images']} images over {planner['shards']} shards "
          f"× {planner['replicas']} replicas, top-{planner['top_k']}, "
          f"frontier {planner['frontier']}; rankings asserted "
          "bit-identical to naive)")
    print()
    print("| mode | p50 | p95 | concurrent p95 | exactly scored |")
    print("|:---|---:|---:|---:|---:|")
    for tag in ("naive", "v2"):
        mode = planner[tag]
        print(f"| {tag} | {mode['p50_us'] / 1000:.2f} ms "
              f"| {mode['p95_us'] / 1000:.2f} ms "
              f"| {mode['concurrent_p95_us'] / 1000:.2f} ms "
              f"| {mode['scored']} |")
    print()
    print(f"**v2 vs naive: p50 {planner['speedup_p50']:.2f}×, "
          f"p95 {planner['speedup_p95']:.2f}×, "
          f"concurrent p95 {planner['concurrent_speedup_p95']:.2f}×**")
else:
    print(f"_no {planner_path} found_")
PY
