#!/usr/bin/env bash
# Verifies every intra-repo markdown link resolves: for each tracked
# *.md file, every relative link target (anchor stripped) must exist on
# disk. External links (http/https/mailto) are ignored. CI runs this in
# the docs step; a broken link fails the build.
#
#   scripts/check_links.sh
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

git ls-files '*.md' | python3 - <<'PY'
import os
import re
import sys

# Inline markdown links [text](target) — skips images' extra ! cheaply
# since the target rules are identical, and tolerates titles
# [text](target "title").
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks are stripped so example snippets never count.
FENCE = re.compile(r"^(```|~~~)")

broken = []
for path in (line.strip() for line in sys.stdin if line.strip()):
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    in_fence = False
    for number, line in enumerate(lines, 1):
        if FENCE.match(line.lstrip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#")[0])
            )
            if not os.path.exists(resolved):
                broken.append(f"{path}:{number}: broken link -> {target}")

if broken:
    print("\n".join(broken))
    print(f"\n{len(broken)} broken intra-repo link(s)", file=sys.stderr)
    sys.exit(1)
print("all intra-repo markdown links resolve")
PY
