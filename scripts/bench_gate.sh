#!/usr/bin/env bash
# Perf regression gate: compares a fresh bench report against the
# committed baseline and fails when the measured build got meaningfully
# slower.
#
#   scripts/bench_gate.sh BENCH_server.json bench/baseline.json
#   scripts/bench_gate.sh BENCH_twostage.json bench/baseline_twostage.json
#   scripts/bench_gate.sh BENCH_oplog.json bench/baseline_oplog.json
#   scripts/bench_gate.sh BENCH_planner.json bench/baseline_planner.json
#
# The report schema is picked from the fresh file's "benchmark" field
# (absent = the server loadgen report). Each schema contributes
# higher-is-better ("floor") and lower-is-better ("ceiling") metrics;
# thresholds are deliberately generous to tolerate shared-runner noise:
#   - floor metrics may drop at most 25% below the baseline
#   - ceiling metrics may rise at most 50% above the baseline
#
# Re-baselining: each committed bench/baseline*.json is a conservative
# floor (seeded well below a dev-box run so a cold CI runner passes).
# After a deliberate perf change, download the matching BENCH artifact
# from a green `bench-report` CI run on main and commit it:
#
#   cp BENCH_server.json bench/baseline.json   # then commit the change
#
set -euo pipefail

FRESH="${1:?usage: bench_gate.sh FRESH.json BASELINE.json}"
BASELINE="${2:?usage: bench_gate.sh FRESH.json BASELINE.json}"
MAX_THROUGHPUT_DROP="${MAX_THROUGHPUT_DROP:-0.25}"
MAX_P95_RISE="${MAX_P95_RISE:-0.50}"

# Newly added bench files have no committed baseline yet: skip the gate
# with a notice instead of failing, so adding a benchmark never blocks
# the PR that introduces it. (Commit a baseline later to start gating.)
# A missing FRESH report stays a hard failure: a gated benchmark that
# produced no output must never pass silently.
if [ ! -f "$BASELINE" ]; then
    echo "::notice::bench gate: no baseline at $BASELINE for $FRESH — skipping (commit one to start gating)"
    exit 0
fi
if [ ! -f "$FRESH" ]; then
    echo "::error::bench gate: fresh report $FRESH is missing (baseline $BASELINE exists, so this benchmark is gated)"
    exit 1
fi

python3 - "$FRESH" "$BASELINE" "$MAX_THROUGHPUT_DROP" "$MAX_P95_RISE" <<'PY'
import json
import sys

fresh_path, base_path, max_drop, max_rise = sys.argv[1:5]
max_drop, max_rise = float(max_drop), float(max_rise)

with open(fresh_path) as f:
    fresh = json.load(f)
with open(base_path) as f:
    base = json.load(f)

schema = fresh.get("benchmark", "server")
if schema != base.get("benchmark", "server"):
    print(f"::error::bench gate: fresh report is {schema!r} but baseline "
          f"is {base.get('benchmark', 'server')!r}")
    sys.exit(1)


def metrics(report):
    """(name, kind, value) triples for the report's schema.

    kind "floor" = higher is better (gated at baseline * (1 - drop)),
    kind "ceiling" = lower is better (gated at baseline * (1 + rise)).
    """
    if schema == "server":
        return [
            ("throughput", "floor", report["throughput_rps"], "req/s"),
            ("p95 latency", "ceiling", report["latency_ms"]["p95_ms"], "ms"),
        ]
    if schema == "twostage":
        last = report["sweep"][-1]
        return [
            ("staged speedup (largest corpus)", "floor",
             last["speedup_p50"], "x"),
            ("staged p95 (largest corpus)", "ceiling",
             last["staged_p95_us"], "us"),
        ]
    if schema == "oplog":
        sync = next(p for p in report["ack"] if p["mode"] == "sync")
        return [
            ("catch-up replay speedup", "floor",
             report["catchup"]["replay_speedup"], "x"),
            ("sync ack p95", "ceiling", sync["p95_us"], "us"),
        ]
    if schema == "planner":
        return [
            ("v2 p95 speedup over naive", "floor",
             report["speedup_p95"], "x"),
            ("v2 p95 latency", "ceiling", report["v2"]["p95_us"], "us"),
        ]
    print(f"::error::bench gate: unknown benchmark schema {schema!r}")
    sys.exit(1)


failures = []
for (name, kind, fresh_value, unit), (_, _, base_value, _) in zip(
        metrics(fresh), metrics(base)):
    if kind == "floor":
        limit = base_value * (1.0 - max_drop)
        print(f"{name}: fresh {fresh_value:.2f} {unit} vs baseline "
              f"{base_value:.2f} (floor {limit:.2f}, max drop {max_drop:.0%})")
        if fresh_value < limit:
            failures.append(
                f"{name} regressed: {fresh_value:.2f} {unit} is more than "
                f"{max_drop:.0%} below the baseline {base_value:.2f} {unit}")
    else:
        limit = base_value * (1.0 + max_rise)
        print(f"{name}: fresh {fresh_value:.2f} {unit} vs baseline "
              f"{base_value:.2f} (ceiling {limit:.2f}, max rise {max_rise:.0%})")
        if fresh_value > limit:
            failures.append(
                f"{name} regressed: {fresh_value:.2f} {unit} is more than "
                f"{max_rise:.0%} above the baseline {base_value:.2f} {unit}")
if fresh.get("errors", 0) > 0:
    failures.append(f"loadgen reported {fresh['errors']} failed requests")

if failures:
    for failure in failures:
        print(f"::error::bench gate: {failure}")
    print("bench gate FAILED (see scripts/bench_gate.sh for how to "
          "re-baseline after a deliberate change)")
    sys.exit(1)
print("bench gate passed")
PY
