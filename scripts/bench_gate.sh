#!/usr/bin/env bash
# Perf regression gate: compares a fresh loadgen report against the
# committed baseline and fails when the service got meaningfully slower.
#
#   scripts/bench_gate.sh BENCH_server.json bench/baseline.json
#
# Thresholds are deliberately generous to tolerate shared-runner noise:
#   - throughput may drop at most 25% below the baseline
#   - p95 latency may rise at most 50% above the baseline
#
# Re-baselining: the committed bench/baseline.json is a conservative
# floor (seeded well below a dev-box run so a cold CI runner passes).
# After a deliberate perf change, download the BENCH_server artifact
# from a green `bench-report` CI run on main and commit it:
#
#   cp BENCH_server.json bench/baseline.json   # then commit the change
#
set -euo pipefail

FRESH="${1:?usage: bench_gate.sh FRESH.json BASELINE.json}"
BASELINE="${2:?usage: bench_gate.sh FRESH.json BASELINE.json}"
MAX_THROUGHPUT_DROP="${MAX_THROUGHPUT_DROP:-0.25}"
MAX_P95_RISE="${MAX_P95_RISE:-0.50}"

# Newly added bench files have no committed baseline yet: skip the gate
# with a notice instead of failing, so adding a benchmark never blocks
# the PR that introduces it. (Commit a baseline later to start gating.)
# A missing FRESH report stays a hard failure: a gated benchmark that
# produced no output must never pass silently.
if [ ! -f "$BASELINE" ]; then
    echo "::notice::bench gate: no baseline at $BASELINE for $FRESH — skipping (commit one to start gating)"
    exit 0
fi
if [ ! -f "$FRESH" ]; then
    echo "::error::bench gate: fresh report $FRESH is missing (baseline $BASELINE exists, so this benchmark is gated)"
    exit 1
fi

python3 - "$FRESH" "$BASELINE" "$MAX_THROUGHPUT_DROP" "$MAX_P95_RISE" <<'PY'
import json
import sys

fresh_path, base_path, max_drop, max_rise = sys.argv[1:5]
max_drop, max_rise = float(max_drop), float(max_rise)

with open(fresh_path) as f:
    fresh = json.load(f)
with open(base_path) as f:
    base = json.load(f)

fresh_rps = fresh["throughput_rps"]
base_rps = base["throughput_rps"]
fresh_p95 = fresh["latency_ms"]["p95_ms"]
base_p95 = base["latency_ms"]["p95_ms"]

rps_floor = base_rps * (1.0 - max_drop)
p95_ceiling = base_p95 * (1.0 + max_rise)

print(f"throughput: fresh {fresh_rps:.1f} req/s vs baseline {base_rps:.1f} "
      f"(floor {rps_floor:.1f}, max drop {max_drop:.0%})")
print(f"p95 latency: fresh {fresh_p95:.2f} ms vs baseline {base_p95:.2f} "
      f"(ceiling {p95_ceiling:.2f}, max rise {max_rise:.0%})")

failures = []
if fresh_rps < rps_floor:
    failures.append(
        f"throughput regressed: {fresh_rps:.1f} req/s is more than "
        f"{max_drop:.0%} below the baseline {base_rps:.1f} req/s")
if fresh_p95 > p95_ceiling:
    failures.append(
        f"p95 latency regressed: {fresh_p95:.2f} ms is more than "
        f"{max_rise:.0%} above the baseline {base_p95:.2f} ms")
if fresh.get("errors", 0) > 0:
    failures.append(f"loadgen reported {fresh['errors']} failed requests")

if failures:
    for failure in failures:
        print(f"::error::bench gate: {failure}")
    print("bench gate FAILED (see scripts/bench_gate.sh for how to "
          "re-baseline after a deliberate change)")
    sys.exit(1)
print("bench gate passed")
PY
