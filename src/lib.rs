//! # be2d — image indexing and similarity retrieval with 2D BE-strings
//!
//! A comprehensive Rust reproduction of *"Image Indexing and Similarity
//! Retrieval Based on A New Spatial Relation Model"* (Ying-Hong Wang,
//! 2001). This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`geometry`] | MBRs, scenes, Allen relations, the D4 transform group |
//! | [`core`] | the 2D BE-string model, Algorithm 1 conversion, modified LCS (Algorithms 2–3), similarity evaluation, string-reversal transforms, §3.2 maintenance |
//! | [`strings2d`] | the 2-D string family baselines (Chang 2-D string, 2D G-/C-/B-strings, type-0/1/2 maximum-clique similarity) |
//! | [`imaging`] | synthetic raster rendering + connected-component MBR extraction |
//! | [`workload`] | seeded corpora, query derivation with ground truth, retrieval metrics |
//! | [`db`] | the image database: indexing, incremental edits, ranked transform-invariant search, persistence |
//! | [`metrics`] | dependency-free observability primitives: counters, gauges, histograms, Prometheus exposition |
//! | [`server`] | the HTTP/1.1 retrieval service and its load generator |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Example
//!
//! ```
//! use be2d::{convert_scene, similarity, SceneBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scene = SceneBuilder::new(100, 100)
//!     .object("A", (10, 50, 25, 85))
//!     .object("B", (30, 90, 5, 45))
//!     .object("C", (50, 70, 45, 65))
//!     .build()?;
//! let s = convert_scene(&scene);
//! assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");
//! assert!((similarity(&s, &s).score - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use be2d_core as core;
pub use be2d_db as db;
pub use be2d_geometry as geometry;
pub use be2d_imaging as imaging;
pub use be2d_metrics as metrics;
pub use be2d_server as server;
pub use be2d_strings2d as strings2d;
pub use be2d_workload as workload;

pub use be2d_core::{
    be_lcs_length, best_transform_similarity, convert_scene, exact_constrained_lcs_length,
    similarity, similarity_matrix, similarity_with, threshold_clusters, transformed, BeString,
    BeString2D, BeSymbol, LcsTable, Similarity, SimilarityConfig, SymbolicImage,
};
pub use be2d_db::{
    ImageDatabase, QueryOptions, ReplicatedImageDatabase, Resharder, SearchHit,
    ShardedImageDatabase, TwoStage,
};
pub use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder, Transform};
