//! Offline vendored subset of `serde_derive`.
//!
//! The workspace builds without network access, so instead of the real
//! `serde`/`serde_derive` crates it vendors a small value-tree
//! implementation (see `vendor/serde`). This proc macro generates the
//! `Serialize`/`Deserialize` impls for the type shapes actually used in
//! the workspace:
//!
//! - structs with named fields,
//! - single-field tuple structs (newtypes, including `#[serde(transparent)]`),
//! - enums whose variants are unit, newtype, or struct-like.
//!
//! Generics are not supported; the macro reports a compile error if it
//! meets a shape it cannot handle, so failures are loud rather than
//! silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving item, extracted from its token stream.
///
/// `#[serde(transparent)]` needs no explicit flag: every tuple struct in
/// this workspace is a single-field newtype, which serde serialises as
/// its inner value anyway.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, …);` — field count.
    TupleStruct(usize),
    /// `enum E { … }`.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips a run of `#[…]` attributes (doc comments, `#[serde(…)]`,
/// `#[default]`, …). The shim needs none of their contents: transparent
/// newtypes are recognised structurally.
fn skip_attributes(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        if !matches!(iter.peek(), Some(TokenTree::Group(_))) {
            break;
        }
        iter.next();
    }
}

/// Skips an optional `pub` / `pub(…)` visibility prefix.
fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(i)) = iter.peek() {
        if i.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Parses the fields of a `{ … }` group into names, or counts the
/// top-level elements of a `( … )` group.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(name)) => {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
                // Consume the type: everything up to a comma at angle-depth 0.
                let mut depth = 0i32;
                loop {
                    match iter.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                            depth += 1;
                            iter.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                            depth -= 1;
                            iter.next();
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                            iter.next();
                            break;
                        }
                        Some(_) => {
                            iter.next();
                        }
                    }
                }
                fields.push(name.to_string());
            }
            Some(other) => return Err(format!("unexpected token in fields: {other:?}")),
        }
    }
    Ok(fields)
}

/// Counts the top-level comma-separated elements of a tuple-struct or
/// tuple-variant parenthesis group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    for t in group {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if saw_token {
                    count += 1;
                }
                saw_token = false;
            }
            _ => saw_token = true,
        }
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(name)) => {
                let kind = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        iter.next();
                        VariantKind::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        if arity != 1 {
                            return Err(format!(
                                "serde shim: tuple variant {name} must have exactly 1 field, has {arity}"
                            ));
                        }
                        iter.next();
                        VariantKind::Newtype
                    }
                    _ => VariantKind::Unit,
                };
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == ',' {
                        iter.next();
                    }
                }
                variants.push(Variant {
                    name: name.to_string(),
                    kind,
                });
            }
            Some(other) => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);

    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde shim: generic type {name} is not supported"));
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => return Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body for {name}, got {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    if let Kind::TupleStruct(arity) = kind {
        if arity != 1 {
            return Err(format!(
                "serde shim: tuple struct {name} must have exactly 1 field, has {arity}"
            ));
        }
    }

    Ok(Input { name, kind })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::TupleStruct(_) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Named(fields) => {
                            let pat = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {pat} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::TupleStruct(_) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(__m, {:?}, {f:?})?)?",
                        name
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::Error::expected({name:?}, \"map\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(__fm, {:?}, {f:?})?)?",
                                        name
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __fm = __inner.as_map().ok_or_else(|| ::serde::Error::expected({name:?}, \"variant map\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::unknown_variant({name:?}, __other)),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::unknown_variant({name:?}, __other)),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected({name:?}, \"string or single-entry map\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
