//! Offline vendored subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()`, `read()`, and `write()` return guards directly rather
//! than `Result`s. A panicked writer does not poison the lock — the
//! inner value is recovered, matching `parking_lot` semantics closely
//! enough for this workspace.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shared access without blocking, when free.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without blocking, when free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access through an exclusive borrow — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock without blocking, when free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access through an exclusive borrow — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 2);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let lock = Mutex::new(String::from("a"));
        lock.lock().push('b');
        assert_eq!(&*lock.lock(), "ab");
    }

    #[test]
    fn panicked_writer_does_not_poison() {
        let lock = std::sync::Arc::new(RwLock::new(5));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("die while holding the lock");
        })
        .join();
        assert_eq!(*lock.read(), 5);
    }
}
