//! Offline vendored subset of `criterion`.
//!
//! A small wall-clock benchmarking harness exposing the criterion API
//! surface the workspace's benches use: [`Criterion::benchmark_group`],
//! chained `sample_size`/`measurement_time`/`warm_up_time`/`throughput`
//! configuration, [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Reports the median per-iteration time over `sample_size` samples.
//! There is no statistical analysis, plotting, or baseline comparison —
//! this exists so `cargo bench` produces honest numbers offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_owned());
        group.bench_with_input(BenchmarkId::from_parameter("base"), &(), |b, ()| f(b));
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declares the work done per iteration, enabling rate output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-iteration cost to size the real samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher, input);
            warm_iters += 1;
        }
        let per_iter = if warm_iters > 0 {
            warm_start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX)
        } else {
            Duration::from_millis(1)
        };

        // Choose iterations per sample so all samples fit the budget.
        let budget_per_sample =
            self.measurement_time / u32::try_from(self.sample_size).unwrap_or(1);
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
            samples.push(b.elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!("  ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!(
                    "  ({:.3} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {:?} over {} samples x {} iters{}",
            self.name, id.label, median, self.sample_size, iters_per_sample, rate
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

/// Hint for how much setup output to hold in memory per batch. The shim
/// runs one setup per iteration regardless, so the variants only exist
/// for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    /// Runs `f` for this sample's iteration count, recording wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` on a fresh `setup()` value each iteration, timing
    /// only the routine.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a group function running each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
