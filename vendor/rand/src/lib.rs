//! Offline vendored subset of `rand` (0.9 API surface).
//!
//! Provides exactly what the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over
//! integer ranges. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed, which is all the workloads rely on
//! (they compare runs against the same seed, never against golden
//! values from the real `rand`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types seedable from a bare `u64` — the only constructor used here.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range`, like `rand 0.9`'s
    /// `random_range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 random bits → uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Half-open or inclusive ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniformly samples `[0, span)` without modulo bias (Lemire's
/// multiply-and-reject method).
fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if let Ok(span64) = u64::try_from(span) {
        let mut m = u128::from(rng.next_u64()) * u128::from(span64);
        let mut lo = m as u64;
        if lo < span64 {
            // (2^64 - span) % span: the size of the biased tail
            let threshold = span64.wrapping_neg() % span64;
            while lo < threshold {
                m = u128::from(rng.next_u64()) * u128::from(span64);
                lo = m as u64;
            }
        }
        return m >> 64;
    }
    // Spans of 2^64 and above (never hit by this workspace's i64/usize
    // ranges, but kept total): combine two draws.
    let v = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    v % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = sample_span(rng, span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = sample_span(rng, span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `StdRng` (ChaCha12) this is not cryptographic,
    /// which is fine for workload generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for code written against small-footprint rand configs.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.random_range(0usize..7);
            assert!(u < 7);
            let w = rng.random_range(3i64..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
