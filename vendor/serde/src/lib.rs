//! Offline vendored subset of `serde`.
//!
//! The workspace must build without network access, so this crate
//! replaces the real `serde` with a small self-describing value tree:
//! [`Serialize`] renders a type into a [`Value`], [`Deserialize`] reads
//! it back. `serde_json` (also vendored) maps [`Value`] to and from JSON
//! text. The derive macros come from the vendored `serde_derive` and
//! understand the subset of shapes used in this workspace (named-field
//! structs, transparent newtypes, and unit/newtype/struct enum
//! variants, in serde's externally-tagged layout).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value — the shim's entire data model.
///
/// Maps preserve entry order so JSON output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer; `i128` covers the full `u64` and `i64` ranges.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialisation (and key-serialisation) error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a caller-provided message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// "expected X while deserialising T".
    pub fn expected(ty: &str, what: &str) -> Error {
        Error {
            msg: format!("{ty}: expected {what}"),
        }
    }

    /// An unknown externally-tagged enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Error {
        Error {
            msg: format!("{ty}: unknown variant `{variant}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in a struct's serialised map.
///
/// # Errors
///
/// Returns a "missing field" error when the key is absent.
pub fn get_field<'a>(
    entries: &'a [(String, Value)],
    ty: &str,
    field: &str,
) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("{ty}: missing field `{field}`")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Mirror of `serde::de`, including the `DeserializeOwned` bound alias.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// In real serde this marks types deserialisable without borrowing;
    /// the shim's `Deserialize` never borrows, so it is a plain alias.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)
                        ))),
                    other => Err(Error::custom(format!(
                        "{}: expected integer, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(Error::custom(format!(
                "i128: expected integer, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(i128::try_from(*self).expect("u128 value fits i128 in this workspace"))
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u128::try_from(*i)
                .map_err(|_| Error::custom(format!("integer {i} out of range for u128"))),
            other => Err(Error::custom(format!(
                "u128: expected integer, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    // JSON cannot tell `1.0` from `1`, so whole floats may
                    // arrive as integers.
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!(
                        "{}: expected number, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "bool: expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "String: expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!(
                "char: expected 1-character string, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Smart pointers
// ---------------------------------------------------------------------------

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(Error::custom(format!(
                "Arc<str>: expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "Vec: expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(::std::vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error::expected("tuple", "sequence"))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "tuple: expected {LEN} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

/// Renders a map key, which JSON requires to be a string.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be string-like, got {}",
            other.kind()
        ))),
    }
}

/// Reads a map key back from its string form.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    K::from_value(&Value::Str(s.to_owned())).or_else(|string_err| {
        s.parse::<i128>()
            .map_err(|_| string_err)
            .and_then(|i| K::from_value(&Value::Int(i)))
    })
}

macro_rules! impl_map {
    ($name:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $name<K, V> {
            fn to_value(&self) -> Value {
                Value::Map(
                    self.iter()
                        .map(|(k, v)| {
                            (key_to_string(k).expect("serialisable map key"), v.to_value())
                        })
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $name<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Map(entries) => entries
                        .iter()
                        .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                        .collect(),
                    other => {
                        Err(Error::custom(format!("map: expected map, got {}", other.kind())))
                    }
                }
            }
        }
    };
}

impl_map!(BTreeMap, Ord);
impl_map!(HashMap, Eq + Hash);

macro_rules! impl_set {
    ($name:ident, $($bound:tt)+) => {
        impl<T: Serialize + $($bound)+> Serialize for $name<T> {
            fn to_value(&self) -> Value {
                Value::Seq(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $name<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => items.iter().map(T::from_value).collect(),
                    other => {
                        Err(Error::custom(format!("set: expected sequence, got {}", other.kind())))
                    }
                }
            }
        }
    };
}

impl_set!(BTreeSet, Ord);
impl_set!(HashSet, Eq + Hash);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "(): expected null, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
