//! Offline vendored subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: composable [`strategy::Strategy`] values (integer ranges,
//! tuples, `prop_map`, `prop_flat_map`, [`collection::vec`],
//! [`prop_oneof!`], [`any`]) plus the [`proptest!`] test macro with
//! `prop_assert!`-style assertions and `prop_assume!` rejection.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the assertion message
//!   but is not minimised.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test
//!   name, so failures reproduce across runs; set `PROPTEST_CASES` to
//!   change the case count (default 64).

#![forbid(unsafe_code)]

/// Deterministic RNG and per-test configuration.
pub mod test_runner {
    /// SplitMix64 — small, fast, and deterministic; plenty for test-case
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }

        /// A generator seeded from a test's name, for reproducibility.
        #[must_use]
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics when `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // multiply-shift with rejection of the biased tail
            let mut m = u128::from(self.next_u64()) * u128::from(bound);
            let mut lo = m as u64;
            if lo < bound {
                let threshold = bound.wrapping_neg() % bound;
                while lo < threshold {
                    m = u128::from(self.next_u64()) * u128::from(bound);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        }
    }

    /// Per-test configuration: how many cases to run.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running exactly `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Marker returned by `prop_assume!` when a case is discarded.
    #[derive(Debug, Clone, Copy)]
    pub struct CaseRejected;
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A reusable recipe for generating values of one type.
    ///
    /// Unlike the real proptest there is no value tree: strategies
    /// generate plain values and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of alternatives.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Integer types usable as range strategies.
    pub trait PropInt: Copy {
        /// Converts to wide signed arithmetic.
        fn to_i128(self) -> i128;
        /// Converts back from wide arithmetic.
        fn from_i128(v: i128) -> Self;
    }

    macro_rules! impl_prop_int {
        ($($t:ty),*) => {$(
            impl PropInt for $t {
                fn to_i128(self) -> i128 { self as i128 }
                #[allow(clippy::cast_possible_truncation)]
                fn from_i128(v: i128) -> Self { v as $t }
            }
        )*};
    }

    impl_prop_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    fn sample_int_range(rng: &mut TestRng, start: i128, end_inclusive: i128) -> i128 {
        assert!(start <= end_inclusive, "cannot sample empty range");
        let span = (end_inclusive - start) as u128 + 1;
        let offset = if let Ok(span64) = u64::try_from(span) {
            u128::from(rng.below(span64))
        } else {
            // Span exceeding u64 — combine two draws (unused in practice).
            ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span
        };
        start + offset as i128
    }

    impl<T: PropInt> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (start, end) = (self.start.to_i128(), self.end.to_i128());
            assert!(start < end, "cannot sample empty range");
            T::from_i128(sample_int_range(rng, start, end - 1))
        }
    }

    impl<T: PropInt> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_i128(sample_int_range(
                rng,
                self.start().to_i128(),
                self.end().to_i128(),
            ))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    }

    /// Full-range strategy for a primitive (see [`crate::any`]).
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: crate::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec`: vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Primitives with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `any::<T>()`: the canonical full-range strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Mirror of proptest's `prop` module path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics like `assert!`; no
/// shrinking happens on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::CaseRejected);
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(::std::stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::CaseRejected> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    // Rejected cases (prop_assume!) are simply skipped.
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        let strat = (0i64..10, 5usize..=6).prop_map(|(a, b)| a + b as i64);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn flat_map_respects_dependency() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        let strat = (1i64..50).prop_flat_map(|hi| (0i64..hi).prop_map(move |lo| (lo, hi)));
        for _ in 0..200 {
            let (lo, hi) = strat.generate(&mut rng);
            assert!(lo < hi);
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let strat = prop::collection::vec(0u64..5, 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::from_seed(4);
        let strat = prop_oneof![
            (0i64..1).prop_map(|_| "a"),
            (0i64..1).prop_map(|_| "b"),
            (0i64..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(a in 0i64..100, b in any::<u64>()) {
            prop_assume!(a != 50);
            prop_assert!(a < 100);
            prop_assert_ne!(a, 50);
            let _ = b;
        }
    }
}
