//! Offline vendored subset of `serde_json`.
//!
//! Bridges JSON text and the vendored `serde` value tree: a writer with
//! full string escaping, and a strict recursive-descent parser with
//! `\uXXXX` (including surrogate pairs), nesting-depth protection, and
//! trailing-garbage detection. Supports exactly the API the workspace
//! uses: [`to_string`], [`from_str`], and [`Error`].

#![forbid(unsafe_code)]

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON serialisation or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = format!("{f}");
        let needs_dot = !text.contains(['.', 'e', 'E']);
        out.push_str(&text);
        if needs_dot {
            out.push_str(".0");
        }
    } else {
        // Like real serde_json: non-finite floats become null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                char::from(other),
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => push_byte(&mut out, b'"', &mut self.pos),
                        Some(b'\\') => push_byte(&mut out, b'\\', &mut self.pos),
                        Some(b'/') => push_byte(&mut out, b'/', &mut self.pos),
                        Some(b'n') => push_byte(&mut out, b'\n', &mut self.pos),
                        Some(b't') => push_byte(&mut out, b'\t', &mut self.pos),
                        Some(b'r') => push_byte(&mut out, b'\r', &mut self.pos),
                        Some(b'b') => push_byte(&mut out, 0x08, &mut self.pos),
                        Some(b'f') => push_byte(&mut out, 0x0c, &mut self.pos),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape `{text}`")))?;
        self.pos += 4;
        Ok(code)
    }
}

fn push_byte(out: &mut String, b: u8, pos: &mut usize) {
    out.push(char::from(b));
    *pos += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes_and_numbers() {
        let v = Value::Map(vec![
            ("s".into(), Value::Str("a\"b\\c\nd\u{1F600}".into())),
            ("i".into(), Value::Int(-42)),
            ("u".into(), Value::Int(u64::MAX as i128)),
            ("f".into(), Value::Float(1.5)),
            ("whole".into(), Value::Float(3.0)),
            ("b".into(), Value::Bool(true)),
            ("n".into(), Value::Null),
            ("seq".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        // `3.0` survives as a float thanks to the forced `.0`
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A\u{1F600}".into()));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>(&("[".repeat(500) + &"]".repeat(500))).is_err());
    }
}
