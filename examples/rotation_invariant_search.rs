//! Rotation/reflection retrieval by string reversal (§4), at corpus
//! scale.
//!
//! Plants transformed copies of corpus images as queries, then compares
//! plain search against transform-invariant search (which tries the six
//! paper transforms per candidate — each one a pure string reversal).
//!
//! ```sh
//! cargo run --release --example rotation_invariant_search
//! ```

use be2d::workload::{derive_queries, Corpus, CorpusConfig, QueryKind, SceneConfig};
use be2d::{ImageDatabase, QueryOptions, Transform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Square frames so that 90°/270° rotations stay in-frame.
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 100,
            scene: SceneConfig {
                width: 200,
                height: 200,
                objects: 6,
                ..Default::default()
            },
        },
        99,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene)?;
    }

    let kinds: Vec<QueryKind> = [
        Transform::Rotate90,
        Transform::Rotate180,
        Transform::Rotate270,
        Transform::ReflectX,
        Transform::ReflectY,
    ]
    .into_iter()
    .map(QueryKind::Transformed)
    .collect();
    let queries = derive_queries(&corpus, &kinds, 10, 3);

    println!("transform          plain-top1   invariant-top1   recovered-transform");
    println!("-----------------  -----------  ---------------  -------------------");
    for kind in &kinds {
        let subset: Vec<_> = queries.iter().filter(|q| q.kind == *kind).collect();
        let mut plain_hits = 0;
        let mut invariant_hits = 0;
        let mut recovered = String::new();
        for q in &subset {
            let target = q.target.expect("target");
            let plain = db.search_scene(&q.scene, &QueryOptions::default());
            if plain.first().map(|h| h.id.index()) == Some(target.index()) {
                plain_hits += 1;
            }
            let inv = db.search_scene(&q.scene, &QueryOptions::transform_invariant());
            if inv.first().map(|h| h.id.index()) == Some(target.index()) {
                invariant_hits += 1;
                recovered = inv[0].transform.to_string();
            }
        }
        println!(
            "{:<17}  {:>6}/{:<4}  {:>10}/{:<4}  {}",
            kind.to_string().replace("transformed-", ""),
            plain_hits,
            subset.len(),
            invariant_hits,
            subset.len(),
            recovered,
        );
        assert_eq!(
            invariant_hits,
            subset.len(),
            "invariant search must recover all"
        );
    }
    println!("\nEvery transformed query is recovered exactly by trying the six string\nreversals; plain search misses most of them.");
    Ok(())
}
