//! §3.2 incremental maintenance: inserting and dropping objects in a
//! stored image without reconversion.
//!
//! Shows that binary-search insertion into the coordinate-annotated
//! BE-string produces exactly the same representation as re-indexing from
//! scratch, and that retrieval reflects edits immediately.
//!
//! ```sh
//! cargo run --example incremental_maintenance
//! ```

use be2d::{
    convert_scene, ImageDatabase, ObjectClass, QueryOptions, Rect, SceneBuilder, SymbolicImage,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let initial = SceneBuilder::new(120, 80)
        .object("desk", (10, 60, 5, 35))
        .object("lamp", (15, 30, 35, 60))
        .build()?;

    let mut db = ImageDatabase::new();
    let office = db.insert_scene("office", &initial)?;
    println!(
        "initial image: {}",
        db.get(office).unwrap().symbolic.to_be_string_2d()
    );

    // Add a chair incrementally (binary-search insertion, §3.2).
    let chair = Rect::new(70, 95, 5, 30)?;
    db.add_object(office, &ObjectClass::new("chair"), chair)?;
    println!(
        "after insert:  {}",
        db.get(office).unwrap().symbolic.to_be_string_2d()
    );

    // Verify against a from-scratch conversion.
    let reindexed = SceneBuilder::new(120, 80)
        .object("desk", (10, 60, 5, 35))
        .object("lamp", (15, 30, 35, 60))
        .object("chair", (70, 95, 5, 30))
        .build()?;
    assert_eq!(
        db.get(office).unwrap().symbolic,
        SymbolicImage::from_scene(&reindexed),
        "incremental insert equals batch reconversion"
    );

    // The edit is immediately searchable.
    let chair_query = SceneBuilder::new(120, 80)
        .object("chair", (70, 95, 5, 30))
        .build()?;
    let hits = db.search_scene(&chair_query, &QueryOptions::default());
    assert_eq!(hits[0].name, "office");
    println!(
        "chair query now hits 'office' with score {:.4}",
        hits[0].score
    );

    // Drop the lamp: sequential search, delete, dummy cleanup (§3.2).
    db.remove_object(
        office,
        &ObjectClass::new("lamp"),
        Rect::new(15, 30, 35, 60)?,
    )?;
    println!(
        "after drop:    {}",
        db.get(office).unwrap().symbolic.to_be_string_2d()
    );
    let expected = SceneBuilder::new(120, 80)
        .object("desk", (10, 60, 5, 35))
        .object("chair", (70, 95, 5, 30))
        .build()?;
    assert_eq!(
        db.get(office).unwrap().symbolic.to_be_string_2d(),
        convert_scene(&expected),
        "drop leaves a canonical string"
    );

    // Dropping a missing object fails without corrupting the record.
    let before = db.get(office).unwrap().symbolic.clone();
    let err = db.remove_object(
        office,
        &ObjectClass::new("lamp"),
        Rect::new(15, 30, 35, 60)?,
    );
    assert!(err.is_err());
    assert_eq!(
        &before,
        &db.get(office).unwrap().symbolic,
        "failed drop is atomic"
    );
    println!("\nall §3.2 maintenance invariants verified");
    Ok(())
}
