//! Partial-match retrieval at corpus scale — the paper's central §4
//! claim, quantified.
//!
//! Builds a 200-image corpus, derives partial queries (object subsets and
//! jittered relations), and measures how often the BE-string/LCS ranking
//! still finds the source image — versus the strict type-2 baseline,
//! which only accepts all-relations-identical matches.
//!
//! ```sh
//! cargo run --release --example partial_match_retrieval
//! ```

use be2d::strings2d::{typed_similarity, SimilarityType};
use be2d::workload::metrics::{mean, reciprocal_rank};
use be2d::workload::{derive_queries, Corpus, CorpusConfig, ImageId, QueryKind, SceneConfig};
use be2d::{ImageDatabase, QueryOptions};
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 200,
            scene: SceneConfig {
                objects: 6,
                classes: 5,
                ..SceneConfig::default()
            },
        },
        2024,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene)?;
    }

    let kinds = [
        QueryKind::Exact,
        QueryKind::DropObjects { keep: 3 },
        QueryKind::Jitter { max_delta: 24 },
    ];
    let queries = derive_queries(&corpus, &kinds, 20, 7);

    println!("query kind      MRR(LCS)  MRR(type-2)  top1(LCS)  top1(type-2)");
    println!("--------------  --------  -----------  ---------  ------------");
    for kind in kinds {
        let mut rr_lcs = Vec::new();
        let mut rr_t2 = Vec::new();
        let mut top1_lcs = 0usize;
        let mut top1_t2 = 0usize;
        let subset: Vec<_> = queries.iter().filter(|q| q.kind == kind).collect();
        for q in &subset {
            let target = q.target.expect("derived queries have targets");
            let relevant: HashSet<ImageId> = [target].into_iter().collect();

            // BE-string / modified-LCS ranking.
            let hits = db.search_scene(&q.scene, &QueryOptions::default().with_top_k(None));
            let ranked: Vec<ImageId> = hits.iter().map(|h| ImageId(h.id.index())).collect();
            rr_lcs.push(reciprocal_rank(&ranked, &relevant));
            if ranked.first() == Some(&target) {
                top1_lcs += 1;
            }

            // Type-2 clique baseline: rank by matched-object count.
            let mut scored: Vec<(ImageId, usize)> = corpus
                .iter()
                .map(|(id, scene)| {
                    (
                        id,
                        typed_similarity(&q.scene, scene, SimilarityType::Type2).matched,
                    )
                })
                .collect();
            scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let ranked: Vec<ImageId> = scored.iter().map(|(id, _)| *id).collect();
            rr_t2.push(reciprocal_rank(&ranked, &relevant));
            if ranked.first() == Some(&target) {
                top1_t2 += 1;
            }
        }
        println!(
            "{:<14}  {:>8.3}  {:>11.3}  {:>8}/{}  {:>11}/{}",
            kind.to_string(),
            mean(&rr_lcs),
            mean(&rr_t2),
            top1_lcs,
            subset.len(),
            top1_t2,
            subset.len(),
        );
    }
    println!(
        "\nThe LCS ranking keeps finding the source for partial queries;\n\
         the strict type-2 count degrades as soon as relations are perturbed."
    );
    Ok(())
}
