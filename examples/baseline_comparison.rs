//! Side-by-side comparison with the 2-D string family (§2 of the paper).
//!
//! For one scene, prints every representation — Chang 2-D string, 2D
//! B-string, 2D G-string, 2D C-string and the 2D BE-string — with their
//! storage costs, then compares matching costs on growing images.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use be2d::strings2d::{typed_similarity, BString, CString, GString, SimilarityType, TwoDString};
use be2d::workload::{scene_from_seed, SceneConfig};
use be2d::{be_lcs_length, convert_scene, SceneBuilder};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = SceneBuilder::new(100, 100)
        .object("A", (10, 60, 10, 60))
        .object("B", (40, 90, 40, 90))
        .object("C", (20, 50, 65, 95))
        .build()?;

    println!("representations of one 3-object scene (A/B overlap):\n");
    let two_d = TwoDString::from_scene(&scene);
    println!("2-D string   ({} symbols): {}", two_d.symbol_count(), two_d);
    let b = BString::from_scene(&scene);
    println!("2D B-string  ({} units):   {}", b.symbol_count(), b);
    let g = GString::from_scene(&scene);
    println!(
        "2D G-string  ({} segments): ({}, {})",
        g.segment_count(),
        g.x().render_with_operators(),
        g.y().render_with_operators()
    );
    let c = CString::from_scene(&scene);
    println!(
        "2D C-string  ({} segments): ({}, {})",
        c.segment_count(),
        c.x().render_with_operators(),
        c.y().render_with_operators()
    );
    let be = convert_scene(&scene);
    println!("2D BE-string ({} symbols):  {}", be.total_len(), be);

    // Matching cost: modified LCS (O(mn)) vs type-2 clique (NP-complete).
    println!("\nmatching a scene against itself, growing n:");
    println!("   n   LCS time      clique time   clique graph");
    for n in [4usize, 8, 12, 16] {
        let cfg = SceneConfig {
            objects: n,
            classes: 3,
            ..SceneConfig::default()
        };
        let scene = scene_from_seed(&cfg, n as u64);
        let s = convert_scene(&scene);

        let t0 = Instant::now();
        let lcs = be_lcs_length(s.x(), s.x()) + be_lcs_length(s.y(), s.y());
        let lcs_time = t0.elapsed();

        let t0 = Instant::now();
        let typed = typed_similarity(&scene, &scene, SimilarityType::Type2);
        let clique_time = t0.elapsed();

        println!(
            "  {n:>2}   {:>9.1?}    {:>9.1?}    {} vertices / {} edges",
            lcs_time, clique_time, typed.graph_vertices, typed.graph_edges
        );
        assert_eq!(typed.matched, n);
        assert!(lcs >= 2 * (2 * n + 1) - 2);
    }
    println!("\nSelf-matching is the clique baseline's easy case; experiment E3\n(cargo bench + exp_matching) shows the exponential divergence.");
    Ok(())
}
