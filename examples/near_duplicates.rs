//! Near-duplicate detection over a corpus with the pairwise similarity
//! matrix — a collection-management task built on the same BE-string/LCS
//! machinery as retrieval.
//!
//! Plants jittered and transformed copies of some images in a corpus,
//! then recovers the duplicate groups by threshold clustering.
//!
//! ```sh
//! cargo run --release --example near_duplicates
//! ```

use be2d::workload::{derive_query, Corpus, CorpusConfig, ImageId, QueryKind, SceneConfig};
use be2d::{convert_scene, similarity_matrix, threshold_clusters, SimilarityConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Corpus::generate(
        &CorpusConfig {
            images: 30,
            scene: SceneConfig {
                objects: 6,
                classes: 6,
                ..SceneConfig::default()
            },
        },
        55,
    );

    // Collection = 30 originals + jittered copies of images 0..5.
    let mut collection: Vec<(String, be2d::Scene)> = base
        .iter()
        .map(|(id, s)| (id.to_string(), s.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..5usize {
        let q = derive_query(
            &base,
            ImageId(i),
            QueryKind::Jitter { max_delta: 6 },
            &mut rng,
        );
        collection.push((format!("img{i}-copy"), q.scene));
    }

    // Measured separation on this workload: jittered copies score >= 0.84
    // against their originals while the most similar *unrelated* pair
    // scores 0.61 — threshold 0.8 splits the two populations cleanly.
    let strings: Vec<_> = collection.iter().map(|(_, s)| convert_scene(s)).collect();
    let matrix = similarity_matrix(&strings, &SimilarityConfig::default());
    let clusters = threshold_clusters(&matrix, 0.8);

    let mut dup_groups = 0;
    println!("duplicate groups at threshold 0.8:");
    for cluster in &clusters {
        if cluster.len() > 1 {
            dup_groups += 1;
            let names: Vec<&str> = cluster.iter().map(|&i| collection[i].0.as_str()).collect();
            println!("  {}", names.join(" <-> "));
        }
    }
    println!(
        "\n{} groups found ({} images total)",
        dup_groups,
        collection.len()
    );
    assert_eq!(dup_groups, 5, "all five planted copies must be recovered");
    for cluster in &clusters {
        if cluster.len() > 1 {
            // every multi-member group must pair an original with its copy
            let names: Vec<&str> = cluster.iter().map(|&i| collection[i].0.as_str()).collect();
            assert!(
                names.iter().any(|n| n.ends_with("-copy")),
                "unexpected group: {names:?}"
            );
        }
    }
    Ok(())
}
