//! The full pipeline the paper assumes: raster image → object
//! recognition → MBR abstraction → 2D BE-string → retrieval.
//!
//! Renders synthetic "photographs" (icons drawn as ellipses, diamonds,
//! triangles), recognises the objects back with connected-component
//! labeling, and indexes the recognised scenes — demonstrating that the
//! spatial-relation model is agnostic to the segmentation front end.
//!
//! ```sh
//! cargo run --example image_pipeline
//! ```

use be2d::imaging::{extract_scene, render_scene_with_shapes, ClassPalette, Shape};
use be2d::{ImageDatabase, QueryOptions, SceneBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three "photographs" (ground-truth layouts).
    let layouts = vec![
        (
            "street",
            SceneBuilder::new(96, 64)
                .object("car", (8, 28, 4, 16))
                .object("tree", (40, 52, 4, 40))
                .object("house", (60, 90, 8, 44))
                .build()?,
        ),
        (
            "park",
            SceneBuilder::new(96, 64)
                .object("tree", (6, 20, 10, 50))
                .object("tree", (30, 46, 8, 52))
                .object("car", (60, 82, 4, 18))
                .build()?,
        ),
        (
            "suburb",
            SceneBuilder::new(96, 64)
                .object("house", (4, 40, 4, 40))
                .object("house", (52, 92, 4, 44))
                .build()?,
        ),
    ];

    // Render each layout to a raster and recognise the objects back.
    let mut palette = ClassPalette::new();
    let mut db = ImageDatabase::new();
    for (name, layout) in &layouts {
        let raster = render_scene_with_shapes(layout, &mut palette, &mut |i| {
            Shape::ALL[i % Shape::ALL.len()]
        });
        let recognised = extract_scene(&raster, &palette, 4)?;
        println!(
            "{name}: rendered {}x{} raster, recognised {} objects (ground truth {})",
            raster.width(),
            raster.height(),
            recognised.len(),
            layout.len()
        );
        assert_eq!(recognised.len(), layout.len(), "recognition is exact here");
        db.insert_scene(name, &recognised)?;
    }

    // Query: "a car left of a tree" sketched roughly.
    let sketch = SceneBuilder::new(96, 64)
        .object("car", (10, 30, 5, 15))
        .object("tree", (45, 60, 5, 45))
        .build()?;
    println!("\nquery: car left of tree");
    for h in db.search_scene(&sketch, &QueryOptions::default()) {
        println!("  {h}");
    }
    let hits = db.search_scene(&sketch, &QueryOptions::default());
    assert_eq!(hits[0].name, "street", "street has car-left-of-tree");
    Ok(())
}
