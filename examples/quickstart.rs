//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Builds the three-object image of §3.1, converts it to its 2D
//! BE-string, runs similarity queries (exact, partial, rotated), and
//! prints everything.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use be2d::{convert_scene, similarity, ImageDatabase, QueryOptions, SceneBuilder, Transform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The image of Figure 1: A overlaps B; C touches A's right edge at
    // x = 50 and B's top edge at y = 45.
    let figure1 = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()?;

    // Algorithm 1: convert to the (u, v) string pair.
    let s = convert_scene(&figure1);
    println!("2D BE-string of Figure 1:");
    println!("  u = {}", s.x());
    println!("  v = {}", s.y());
    assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");

    // Index a few images.
    let mut db = ImageDatabase::new();
    db.insert_scene("figure1", &figure1)?;
    db.insert_scene(
        "variant",
        &SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85))
            .object("B", (30, 90, 5, 45))
            .build()?,
    )?;
    db.insert_scene(
        "unrelated",
        &SceneBuilder::new(100, 100)
            .object("Z", (10, 90, 10, 90))
            .build()?,
    )?;

    // Exact query: figure1 ranks first with score 1.
    let hits = db.search_scene(&figure1, &QueryOptions::default());
    println!("\nexact query:");
    for h in &hits {
        println!("  {h}");
    }
    assert_eq!(hits[0].name, "figure1");

    // Partial query: only A and C — both images containing them score,
    // graded by how much matches (the paper's partial-match behaviour).
    let partial = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("C", (50, 70, 45, 65))
        .build()?;
    println!("\npartial query (A and C only):");
    for h in db.search_scene(&partial, &QueryOptions::default()) {
        println!("  {h}");
    }

    // Rotated query: §4 retrieval by string reversal.
    let rotated = figure1.transformed(Transform::Rotate90);
    let hits = db.search_scene(&rotated, &QueryOptions::transform_invariant());
    println!("\nquery rotated 90° cw, transform-invariant search:");
    for h in &hits {
        println!("  {h}");
    }
    assert_eq!(hits[0].name, "figure1");
    assert_eq!(
        hits[0].transform,
        Transform::Rotate270,
        "inverse rotation re-aligns"
    );

    // Direct similarity evaluation.
    let sim = similarity(&convert_scene(&partial), &s);
    println!(
        "\npartial-vs-full similarity: {:.4} (x-axis LCS {}, y-axis LCS {})",
        sim.score, sim.x.lcs_len, sim.y.lcs_len
    );
    Ok(())
}
