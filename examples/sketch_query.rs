//! Querying by spatial pattern: the paper's §1 motivating example —
//! "find all images which icon A locates at the left side and icon B
//! locates at the right" — written in the sketch language and run
//! against a corpus.
//!
//! ```sh
//! cargo run --example sketch_query
//! ```

use be2d::db::sketch::Sketch;
use be2d::workload::{Corpus, CorpusConfig, SceneConfig};
use be2d::{ImageDatabase, QueryOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Index a 100-image corpus.
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 100,
            scene: SceneConfig {
                objects: 5,
                classes: 4,
                ..SceneConfig::default()
            },
        },
        21,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene)?;
    }

    for pattern in [
        "C0 left-of C1",
        "C0 left-of C1; C2 above C0",
        "C0 inside C1",
        "C0 overlaps C1",
    ] {
        let sketch = Sketch::parse(pattern)?;
        let query = sketch.to_scene()?;
        println!("pattern: {sketch}");
        let hits = db.search_scene(&query, &QueryOptions::default().with_top_k(Some(3)));
        for h in &hits {
            println!("  {h}");
        }
        // verify the top hit actually satisfies the headline relation for
        // the simple left-of pattern
        if pattern == "C0 left-of C1" {
            let best = corpus
                .scene(be2d::workload::ImageId(
                    hits[0].name.trim_start_matches("img").parse::<usize>()?,
                ))
                .expect("hit refers to a corpus image");
            let c0 = best.iter().find(|o| o.class().name() == "C0");
            let c1 = best.iter().find(|o| o.class().name() == "C1");
            if let (Some(a), Some(b)) = (c0, c1) {
                println!(
                    "  (top hit: C0 x-extent {:?}, C1 x-extent {:?})",
                    (a.mbr().x_begin(), a.mbr().x_end()),
                    (b.mbr().x_begin(), b.mbr().x_end()),
                );
            }
        }
        println!();
    }

    // Unsatisfiable sketches are rejected, not silently misqueried.
    let err = Sketch::parse("A left-of B; B left-of A")?.to_scene();
    println!("cyclic sketch -> {}", err.unwrap_err());
    Ok(())
}
