//! End-to-end integration: raster image → recognition → BE-string →
//! database → retrieval, across every crate in the workspace.

use be2d::imaging::{extract_scene, render_scene, ClassPalette, Shape};
use be2d::workload::{Corpus, CorpusConfig, Placement, SceneConfig};
use be2d::{convert_scene, ImageDatabase, QueryOptions, Transform};

fn corpus() -> Corpus {
    Corpus::generate(
        &CorpusConfig {
            images: 30,
            scene: SceneConfig {
                width: 96,
                height: 96,
                objects: 5,
                classes: 4,
                min_size: 6,
                max_size: 20,
                placement: Placement::NonOverlapping,
            },
        },
        77,
    )
}

#[test]
fn raster_roundtrip_preserves_bestrings() {
    // For non-overlapping rectangle scenes, rendering and re-extracting
    // must preserve the 2D BE-string exactly.
    for (id, scene) in corpus().iter() {
        let mut palette = ClassPalette::new();
        let raster = render_scene(scene, &mut palette, Shape::Rectangle);
        let recognised = extract_scene(&raster, &palette, 1).expect("extraction");
        assert_eq!(
            convert_scene(&recognised),
            convert_scene(scene),
            "BE-string changed through the raster pipeline for {id}"
        );
    }
}

#[test]
fn retrieval_through_the_full_pipeline() {
    // Index scenes recognised from rasters; query with the ground-truth
    // layouts; the matching image must rank first with score 1.
    let corpus = corpus();
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        let mut palette = ClassPalette::new();
        let raster = render_scene(scene, &mut palette, Shape::Rectangle);
        let recognised = extract_scene(&raster, &palette, 1).expect("extraction");
        db.insert_scene(&id.to_string(), &recognised)
            .expect("insert");
    }
    for (id, scene) in corpus.iter().take(10) {
        let hits = db.search_scene(scene, &QueryOptions::default());
        assert_eq!(hits[0].name, id.to_string(), "query {id}");
        assert!((hits[0].score - 1.0).abs() < 1e-12);
    }
}

#[test]
fn transform_invariance_survives_the_raster_pipeline() {
    // Rotate the *raster-recognised* scene geometrically, query the
    // database of originals with invariant search: the source must come
    // back at score 1 via the inverse transform.
    let corpus = corpus();
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }
    for (id, scene) in corpus.iter().take(5) {
        let mut palette = ClassPalette::new();
        let raster = render_scene(scene, &mut palette, Shape::Rectangle);
        let recognised = extract_scene(&raster, &palette, 1).expect("extraction");
        let rotated = recognised.transformed(Transform::Rotate90);
        let hits = db.search_scene(&rotated, &QueryOptions::transform_invariant());
        assert_eq!(hits[0].name, id.to_string(), "query {id}");
        assert!(
            (hits[0].score - 1.0).abs() < 1e-12,
            "query {id}: {}",
            hits[0].score
        );
        assert_eq!(hits[0].transform, Transform::Rotate270);
    }
}

#[test]
fn database_persistence_preserves_search_results() {
    let corpus = corpus();
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }
    let json = db.to_json().expect("serialise");
    let restored = ImageDatabase::from_json(&json).expect("deserialise");

    let query = corpus.scene(be2d::workload::ImageId(3)).unwrap();
    let a = db.search_scene(query, &QueryOptions::default().with_top_k(None));
    let b = restored.search_scene(query, &QueryOptions::default().with_top_k(None));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert!((x.score - y.score).abs() < 1e-12);
    }
}
