//! Workspace smoke test: executes the `examples/quickstart.rs` flow as
//! an integration test and touches every facade re-export, so a
//! manifest, feature, or re-export regression fails `cargo test` loudly
//! instead of only breaking `cargo build --examples`.

use be2d::{convert_scene, similarity, ImageDatabase, QueryOptions, SceneBuilder, Transform};

/// The `server` facade module is wired: config resolves, the serving
/// preset exists, and the request-mix sampler parses.
#[test]
fn server_facade_re_exports() {
    let config = be2d::server::ServerConfig::default();
    assert!(config.effective_threads() >= 2);
    let options = be2d::db::QueryOptions::serving();
    assert_eq!(options.parallel, be2d::db::Parallelism::Auto);
    let mix: be2d::workload::RequestMix = "insert=1,search=4".parse().expect("mix parses");
    assert_eq!(mix.total_weight(), 5);
}

/// The paper's Figure 1 scene: A overlaps B, C touches both.
fn figure1() -> be2d::geometry::Scene {
    SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()
        .expect("valid scene")
}

#[test]
fn quickstart_flow_end_to_end() {
    // Algorithm 1 conversion, exactly as printed in the example.
    let fig = figure1();
    let s = convert_scene(&fig);
    assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");

    // Index three images, as the example does.
    let mut db = ImageDatabase::new();
    db.insert_scene("figure1", &fig).expect("insert");
    db.insert_scene(
        "variant",
        &SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85))
            .object("B", (30, 90, 5, 45))
            .build()
            .expect("valid scene"),
    )
    .expect("insert");
    db.insert_scene(
        "unrelated",
        &SceneBuilder::new(100, 100)
            .object("Z", (10, 90, 10, 90))
            .build()
            .expect("valid scene"),
    )
    .expect("insert");

    // Exact query ranks the source first with score 1.
    let hits = db.search_scene(&fig, &QueryOptions::default());
    assert_eq!(hits[0].name, "figure1");
    assert!((hits[0].score - 1.0).abs() < 1e-12);

    // Partial query (A and C only) still retrieves both A-bearing images.
    let partial = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("C", (50, 70, 45, 65))
        .build()
        .expect("valid scene");
    let hits = db.search_scene(&partial, &QueryOptions::default());
    assert!(hits.len() >= 2, "partial query should match ≥ 2 images");

    // Rotated query via §4 string reversal: the inverse transform wins.
    let rotated = fig.transformed(Transform::Rotate90);
    let hits = db.search_scene(&rotated, &QueryOptions::transform_invariant());
    assert_eq!(hits[0].name, "figure1");
    assert_eq!(hits[0].transform, Transform::Rotate270);

    // Direct similarity evaluation, as the example prints.
    let sim = similarity(&convert_scene(&partial), &s);
    assert!(sim.score > 0.0 && sim.score < 1.0);
    assert!(sim.x.lcs_len > 0 && sim.y.lcs_len > 0);
}

#[test]
fn facade_reexports_are_wired() {
    // Root-level re-exports used throughout the examples.
    let fig = figure1();
    let s: be2d::BeString2D = convert_scene(&fig);
    let _: be2d::Similarity = be2d::similarity(&s, &s);
    let _: be2d::SimilarityConfig = be2d::SimilarityConfig::default();
    let table: be2d::LcsTable = be2d::LcsTable::build(s.x(), s.x());
    assert_eq!(table.length(), be2d::be_lcs_length(s.x(), s.x()));

    // One symbol from each module namespace, proving the module
    // re-exports resolve and the crates are actually linked.
    let rect = be2d::geometry::Rect::new(0, 2, 0, 2).expect("rect");
    assert_eq!(rect.width(), 2);
    let img = be2d::core::SymbolicImage::from_scene(&fig);
    assert_eq!(img.to_be_string_2d(), s);
    let g = be2d::strings2d::GString::from_scene(&fig);
    assert!(g.segment_count() >= fig.len());
    let mut palette = be2d::imaging::ClassPalette::new();
    let raster = be2d::imaging::render_scene(&fig, &mut palette, be2d::imaging::Shape::Rectangle);
    let recognised = be2d::imaging::extract_scene(&raster, &palette, 1).expect("extract");
    assert_eq!(convert_scene(&recognised), s);
    let scene = be2d::workload::scene_from_seed(&be2d::workload::SceneConfig::default(), 1);
    assert_eq!(scene.len(), 8);
    let shared = be2d::db::ShardedImageDatabase::with_shards(2);
    shared.insert_scene("one", &fig).expect("insert");
    assert_eq!(shared.len(), 1);
    let replicated = be2d::ReplicatedImageDatabase::with_topology(2, 2);
    replicated.insert_scene("one", &fig).expect("insert");
    replicated.fail_replica(0, 1).expect("spare copy");
    replicated.rebuild_replica(0, 1).expect("rebuild");
    assert_eq!(replicated.len(), 1);
    be2d::Resharder::new(&replicated)
        .run(3)
        .expect("online reshard");
    assert_eq!(replicated.shard_count(), 3);
    assert_eq!(replicated.len(), 1);

    // Persistence across the facade: a JSON round-trip preserves search.
    let mut db = ImageDatabase::new();
    db.insert_scene("figure1", &fig).expect("insert");
    let json = db.to_json().expect("serialise");
    let restored = ImageDatabase::from_json(&json).expect("deserialise");
    let hits = restored.search_scene(&fig, &QueryOptions::default());
    assert_eq!(hits[0].name, "figure1");
}
