//! Cross-crate checks of the paper's headline claims, on randomised
//! inputs — the "does the reproduction actually behave like the paper
//! says" test suite.

use be2d::strings2d::{typed_similarity, BString, CString, GString, SimilarityType};
use be2d::workload::{scene_from_seed, SceneConfig};
use be2d::{be_lcs_length, convert_scene, similarity, SceneBuilder};

/// §3.1: the Figure 1 worked example, verbatim.
#[test]
fn figure1_strings_match_the_paper() {
    let scene = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()
        .unwrap();
    let s = convert_scene(&scene);
    assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");
    assert_eq!(s.y().to_string(), "E B_b E A_b E B_e C_b E C_e E A_e E");
}

/// §3.1: BE-string storage is Θ(n) with the exact bounds 2n+1..4n+1,
/// while the cutting models can exceed it arbitrarily.
#[test]
fn storage_claims_across_models() {
    for seed in 0..20u64 {
        for n in [2usize, 5, 10, 25] {
            let cfg = SceneConfig {
                objects: n,
                classes: 4,
                ..SceneConfig::default()
            };
            let scene = scene_from_seed(&cfg, seed);
            let be = convert_scene(&scene);
            for axis in [be.x(), be.y()] {
                assert!(axis.len() > 2 * n && axis.len() <= 4 * n + 1);
            }
            // B-string is 2n symbols + '=' markers per axis; never more
            // than the BE-string's boundary+dummy budget by much
            let b = BString::from_scene(&scene);
            assert!(b.symbol_count() >= 4 * n);
            // G cuts at least as much as C
            assert!(
                GString::from_scene(&scene).segment_count()
                    >= CString::from_scene(&scene).segment_count()
            );
        }
    }
}

/// §2: the cutting blow-up the BE-string avoids — an overlapping pile
/// makes the G-string quadratic while the BE-string stays ≤ 4n+1.
#[test]
fn cutting_blowup_vs_linear_bestring() {
    let n = 24i64;
    let mut scene = be2d::Scene::new(2000, 2000).unwrap();
    for i in 0..n {
        scene
            .add(
                be2d::ObjectClass::new("X"),
                be2d::Rect::new(i, 1000 + i, i, 1000 + i).unwrap(),
            )
            .unwrap();
    }
    let g = GString::from_scene(&scene).segment_count();
    let be = convert_scene(&scene).total_len();
    let n = n as usize;
    assert!(g >= n * n, "G-string blow-up: {g}");
    assert!(be <= 2 * (4 * n + 1), "BE-string stays linear: {be}");
}

/// §4: identical images score 1.0; sharing nothing scores near 0;
/// partial matches land strictly in between and grade monotonically
/// with how much was kept.
#[test]
fn similarity_grades_partial_matches() {
    let cfg = SceneConfig {
        objects: 8,
        classes: 8,
        ..SceneConfig::default()
    };
    let scene = scene_from_seed(&cfg, 5);
    let full = convert_scene(&scene);

    let mut last_score = 1.01;
    for keep in [8usize, 6, 4, 2] {
        let mut partial = be2d::Scene::new(scene.width(), scene.height()).unwrap();
        for o in scene.objects().iter().take(keep) {
            partial.add(o.class().clone(), o.mbr()).unwrap();
        }
        let score = similarity(&convert_scene(&partial), &full).score;
        assert!(score > 0.0 && score <= 1.0);
        assert!(
            score < last_score,
            "keeping fewer objects must not score higher: keep={keep} {score} vs {last_score}"
        );
        last_score = score;
    }
}

/// §4: the LCS grading is strictly more tolerant than the type-2
/// constraint when relations are perturbed: moving one object far enough
/// to change relations drops type-2 matches but keeps a high LCS score.
#[test]
fn lcs_tolerates_relation_changes_that_type2_rejects() {
    let scene = SceneBuilder::new(200, 200)
        .object("A", (10, 40, 10, 40))
        .object("B", (60, 90, 60, 90))
        .object("C", (120, 150, 120, 150))
        .build()
        .unwrap();
    // move C before A on x only: one relation pair changes
    let moved = SceneBuilder::new(200, 200)
        .object("A", (10, 40, 10, 40))
        .object("B", (60, 90, 60, 90))
        .object("C", (0, 8, 120, 150))
        .build()
        .unwrap();

    let t2 = typed_similarity(&moved, &scene, SimilarityType::Type2);
    assert!(t2.matched < 3, "type-2 must reject the moved object");
    let sim = similarity(&convert_scene(&moved), &convert_scene(&scene));
    assert!(sim.score > 0.6, "LCS keeps a graded score: {}", sim.score);
    assert!(sim.score < 1.0);
}

/// §4: LCS length between strings of an m- and an n-object image is
/// bounded by min(4m+1, 4n+1), and the table the DP fills is O(mn) —
/// spot-checked via the lengths.
#[test]
fn lcs_length_bounds_on_random_scenes() {
    for seed in 0..10u64 {
        let a = scene_from_seed(
            &SceneConfig {
                objects: 6,
                ..SceneConfig::default()
            },
            seed,
        );
        let b = scene_from_seed(
            &SceneConfig {
                objects: 9,
                ..SceneConfig::default()
            },
            seed + 100,
        );
        let (sa, sb) = (convert_scene(&a), convert_scene(&b));
        let len = be_lcs_length(sa.x(), sb.x());
        assert!(len <= sa.x().len().min(sb.x().len()));
        assert!(len >= 1, "two non-empty images always share a dummy");
    }
}

/// §2/§4: the type-i hierarchy — every type-2 match is a type-1 match is
/// a type-0 match — on random scene pairs.
#[test]
fn type_hierarchy_on_random_scenes() {
    for seed in 0..8u64 {
        let q = scene_from_seed(
            &SceneConfig {
                objects: 5,
                classes: 3,
                ..SceneConfig::default()
            },
            seed,
        );
        let d = scene_from_seed(
            &SceneConfig {
                objects: 7,
                classes: 3,
                ..SceneConfig::default()
            },
            seed + 50,
        );
        let t2 = typed_similarity(&q, &d, SimilarityType::Type2).matched;
        let t1 = typed_similarity(&q, &d, SimilarityType::Type1).matched;
        let t0 = typed_similarity(&q, &d, SimilarityType::Type0).matched;
        assert!(t2 <= t1 && t1 <= t0, "seed {seed}: {t2} {t1} {t0}");
    }
}
