//! Small-scale regression pin of experiment E4's headline: under relation
//! perturbation the graded LCS ranking keeps finding the source image,
//! while the all-or-nothing type-2 count degrades.

use be2d::strings2d::{typed_similarity, SimilarityType};
use be2d::workload::metrics::{mean, reciprocal_rank};
use be2d::workload::{derive_queries, Corpus, CorpusConfig, ImageId, QueryKind, SceneConfig};
use be2d::{ImageDatabase, QueryOptions};
use std::collections::HashSet;

fn rank_by_lcs(db: &ImageDatabase, scene: &be2d::Scene) -> Vec<ImageId> {
    db.search_scene(scene, &QueryOptions::default().with_top_k(None))
        .into_iter()
        .map(|h| ImageId(h.id.index()))
        .collect()
}

fn rank_by_type2(corpus: &Corpus, scene: &be2d::Scene) -> Vec<ImageId> {
    let mut scored: Vec<(ImageId, usize)> = corpus
        .iter()
        .map(|(id, s)| {
            (
                id,
                typed_similarity(scene, s, SimilarityType::Type2).matched,
            )
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().map(|(id, _)| id).collect()
}

#[test]
fn jittered_queries_favour_lcs_over_type2() {
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 60,
            scene: SceneConfig {
                objects: 6,
                classes: 5,
                ..SceneConfig::default()
            },
        },
        2024,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }

    let queries = derive_queries(&corpus, &[QueryKind::Jitter { max_delta: 40 }], 10, 7);
    let mut rr_lcs = Vec::new();
    let mut rr_t2 = Vec::new();
    for q in &queries {
        let relevant: HashSet<ImageId> = [q.target.expect("target")].into_iter().collect();
        rr_lcs.push(reciprocal_rank(&rank_by_lcs(&db, &q.scene), &relevant));
        rr_t2.push(reciprocal_rank(
            &rank_by_type2(&corpus, &q.scene),
            &relevant,
        ));
    }
    let (mrr_lcs, mrr_t2) = (mean(&rr_lcs), mean(&rr_t2));
    assert!(
        mrr_lcs > 0.85,
        "LCS keeps ranking the source high: {mrr_lcs:.3}"
    );
    assert!(
        mrr_lcs > mrr_t2,
        "graded LCS must beat the exact-relation count under jitter: {mrr_lcs:.3} vs {mrr_t2:.3}"
    );
}

#[test]
fn exact_queries_are_perfect_for_both() {
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 40,
            scene: SceneConfig {
                objects: 6,
                classes: 5,
                ..SceneConfig::default()
            },
        },
        11,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }
    let queries = derive_queries(&corpus, &[QueryKind::Exact], 8, 3);
    for q in &queries {
        let target = q.target.expect("target");
        assert_eq!(rank_by_lcs(&db, &q.scene).first(), Some(&target));
        assert_eq!(rank_by_type2(&corpus, &q.scene).first(), Some(&target));
    }
}
