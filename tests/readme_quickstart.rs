//! Guards the README quickstart snippet: if this test fails, the README
//! is lying to new users.

use be2d::{convert_scene, ImageDatabase, QueryOptions, SceneBuilder, Transform};

#[test]
fn readme_quickstart_compiles_and_behaves_as_documented() {
    // The paper's Figure 1: three objects, A/B overlapping, C touching both.
    let figure1 = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()
        .expect("valid scene");

    // Algorithm 1: the (u, v) string pair of §3.1, verbatim.
    let s = convert_scene(&figure1);
    assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");

    // Index and search.
    let mut db = ImageDatabase::new();
    db.insert_scene("figure1", &figure1).expect("insert");
    let hits = db.search_scene(&figure1, &QueryOptions::default());
    assert_eq!(hits[0].score, 1.0);

    // §4: retrieving a rotated copy needs only string reversals.
    let rotated = figure1.transformed(Transform::Rotate90);
    let hits = db.search_scene(&rotated, &QueryOptions::transform_invariant());
    assert_eq!(hits[0].name, "figure1");
}

#[test]
fn crate_doc_example_matches() {
    use be2d::similarity;
    let scene = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()
        .expect("valid scene");
    let s = convert_scene(&scene);
    assert!((similarity(&s, &s).score - 1.0).abs() < 1e-12);
}
