//! Inverted class index: exact candidate generation without scanning.
//!
//! The 64-bit [`ClassSignature`](crate::ClassSignature) is an O(1)
//! *per-record* filter applied during a scan; this index goes one step
//! further and produces the candidate set directly from the query's
//! classes — the textbook inverted-file layout of iconic indexing
//! systems. It is exact (no hash collisions) at the cost of a postings
//! map that must be maintained on every edit.

use crate::database::RecordId;
use be2d_geometry::ObjectClass;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Postings map from object class to the records containing it.
///
/// # Example
///
/// ```
/// use be2d_db::{ClassIndex, RecordId};
/// use be2d_geometry::ObjectClass;
///
/// let mut index = ClassIndex::new();
/// index.insert_record(RecordId(0), [ObjectClass::new("A"), ObjectClass::new("B")]);
/// index.insert_record(RecordId(1), [ObjectClass::new("B")]);
/// let b = [ObjectClass::new("B")];
/// assert_eq!(index.candidates_all(&b), vec![RecordId(0), RecordId(1)]);
/// let ab = [ObjectClass::new("A"), ObjectClass::new("B")];
/// assert_eq!(index.candidates_all(&ab), vec![RecordId(0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassIndex {
    postings: BTreeMap<ObjectClass, BTreeSet<RecordId>>,
}

impl ClassIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        ClassIndex::default()
    }

    /// Registers a record under every class it contains.
    pub fn insert_record<I: IntoIterator<Item = ObjectClass>>(&mut self, id: RecordId, classes: I) {
        for class in classes {
            self.postings.entry(class).or_default().insert(id);
        }
    }

    /// Removes a record from every posting list.
    pub fn remove_record(&mut self, id: RecordId) {
        self.postings.retain(|_, ids| {
            ids.remove(&id);
            !ids.is_empty()
        });
    }

    /// Adds one class occurrence for an existing record (object insert).
    pub fn add_class(&mut self, id: RecordId, class: ObjectClass) {
        self.postings.entry(class).or_default().insert(id);
    }

    /// Drops a record from one class's posting list (object removal) —
    /// call only when the record no longer holds *any* object of the
    /// class.
    pub fn remove_class(&mut self, id: RecordId, class: &ObjectClass) {
        if let Some(ids) = self.postings.get_mut(class) {
            ids.remove(&id);
            if ids.is_empty() {
                self.postings.remove(class);
            }
        }
    }

    /// Records containing at least one of the given classes, in id order.
    ///
    /// An empty query matches nothing (use a scan for class-free
    /// queries).
    #[must_use]
    pub fn candidates_any(&self, classes: &[ObjectClass]) -> Vec<RecordId> {
        let mut out = BTreeSet::new();
        for class in classes {
            if let Some(ids) = self.postings.get(class) {
                out.extend(ids.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Records containing *all* of the given classes, in id order.
    ///
    /// Intersects posting lists smallest-first. An empty query matches
    /// nothing.
    #[must_use]
    pub fn candidates_all(&self, classes: &[ObjectClass]) -> Vec<RecordId> {
        if classes.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&BTreeSet<RecordId>> = Vec::with_capacity(classes.len());
        for class in classes {
            match self.postings.get(class) {
                Some(ids) => lists.push(ids),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let (first, rest) = lists.split_first().expect("non-empty");
        first
            .iter()
            .copied()
            .filter(|id| rest.iter().all(|l| l.contains(id)))
            .collect()
    }

    /// Number of distinct indexed classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.postings.len()
    }

    /// The distinct indexed classes, in order — lets aggregators (e.g.
    /// the sharded database) union class sets across indexes.
    pub fn classes(&self) -> impl Iterator<Item = &ObjectClass> {
        self.postings.keys()
    }

    /// Posting-list length for one class (0 when absent).
    #[must_use]
    pub fn postings_len(&self, class: &ObjectClass) -> usize {
        self.postings.get(class).map_or(0, BTreeSet::len)
    }

    /// Whether `id` appears in `class`'s posting list — the exact
    /// per-record membership probe the planner's dense-scan candidate
    /// strategy filters with (no signature hash collisions).
    #[must_use]
    pub fn contains(&self, class: &ObjectClass, id: RecordId) -> bool {
        self.postings
            .get(class)
            .is_some_and(|ids| ids.contains(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(n: &str) -> ObjectClass {
        ObjectClass::new(n)
    }

    fn sample() -> ClassIndex {
        let mut idx = ClassIndex::new();
        idx.insert_record(RecordId(0), [class("A"), class("B")]);
        idx.insert_record(RecordId(1), [class("B"), class("C")]);
        idx.insert_record(RecordId(2), [class("C")]);
        idx
    }

    #[test]
    fn any_and_all_candidates() {
        let idx = sample();
        assert_eq!(
            idx.candidates_any(&[class("B")]),
            vec![RecordId(0), RecordId(1)]
        );
        assert_eq!(
            idx.candidates_any(&[class("A"), class("C")]),
            vec![RecordId(0), RecordId(1), RecordId(2)]
        );
        assert_eq!(
            idx.candidates_all(&[class("B"), class("C")]),
            vec![RecordId(1)]
        );
        assert_eq!(idx.candidates_all(&[class("A"), class("C")]), vec![]);
        assert!(idx.candidates_any(&[class("Z")]).is_empty());
        assert!(idx.candidates_all(&[class("Z")]).is_empty());
        assert!(idx.candidates_any(&[]).is_empty());
        assert!(idx.candidates_all(&[]).is_empty());
    }

    #[test]
    fn remove_record_cleans_postings() {
        let mut idx = sample();
        idx.remove_record(RecordId(1));
        assert_eq!(idx.candidates_any(&[class("B")]), vec![RecordId(0)]);
        assert_eq!(idx.candidates_any(&[class("C")]), vec![RecordId(2)]);
        idx.remove_record(RecordId(2));
        assert_eq!(idx.class_count(), 2, "empty posting lists dropped");
    }

    #[test]
    fn class_level_edits() {
        let mut idx = sample();
        idx.add_class(RecordId(2), class("A"));
        assert_eq!(
            idx.candidates_all(&[class("A"), class("C")]),
            vec![RecordId(2)]
        );
        idx.remove_class(RecordId(2), &class("A"));
        assert!(idx.candidates_all(&[class("A"), class("C")]).is_empty());
        // removing a class the record never had is a no-op
        idx.remove_class(RecordId(2), &class("Zed"));
        assert_eq!(idx.postings_len(&class("C")), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = ClassIndex::new();
        idx.insert_record(RecordId(0), [class("A"), class("A")]);
        idx.add_class(RecordId(0), class("A"));
        assert_eq!(idx.postings_len(&class("A")), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let idx = sample();
        let json = serde_json::to_string(&idx).unwrap();
        let back: ClassIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(idx, back);
    }
}
