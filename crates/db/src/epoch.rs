//! Routing-epoch arithmetic shared by online resharding and snapshot
//! restore.
//!
//! A record with global id `g` lives in shard `g % N` at local slot
//! `g / N`. Changing N online means that, mid-migration, *two* layouts
//! coexist; a [`RoutingEpoch`] says which layout owns each id:
//!
//! * **Steady** (`old_n == new_n`): one layout, the boundary is unused.
//! * **Growth** (`new_n > old_n`): records migrate in **ascending** id
//!   order; ids `< boundary` are already in the new layout, ids
//!   `>= boundary` still in the old one.
//! * **Shrink** (`new_n < old_n`): records migrate in **descending** id
//!   order; ids `>= boundary` are in the new layout, ids `< boundary`
//!   still in the old one.
//!
//! The sweep directions are not a stylistic choice — they are what keeps
//! one shard's local slots unambiguous. In shard `s`, slot `l` means
//! global id `l·new_n + s` under the new layout and `l·old_n + s` under
//! the old one. For growth, a slot's new-layout id is always ≥ its
//! old-layout id, so "new ids below the boundary, old ids at or above
//! it" can never both claim one slot — and migrating ascending means a
//! record's destination slot was always vacated (by a smaller id)
//! before it arrives. Shrink mirrors the argument with the inequalities
//! flipped, which is why it must sweep descending. The same reasoning
//! shows local-slot order maps monotonically to global-id order within
//! every shard, so per-shard ranked lists stay sorted by `(score desc,
//! id asc)` mid-migration and the scatter-gather top-k merge remains
//! bit-identical to an unsharded ranking.
//!
//! Snapshot manifests (version 3) persist the epoch, so a snapshot
//! taken mid-migration restores exactly (see
//! [`reroute_shards`](crate::shard)).

/// Which of two `id % n` layouts owns each global id (see the module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RoutingEpoch {
    /// The layout records start in.
    pub(crate) old_n: usize,
    /// The layout records migrate to (`== old_n` when steady).
    pub(crate) new_n: usize,
    /// The migration watermark; meaning depends on the sweep direction.
    pub(crate) boundary: usize,
}

impl RoutingEpoch {
    /// The steady epoch of an `n`-shard database.
    pub(crate) fn steady(n: usize) -> RoutingEpoch {
        RoutingEpoch {
            old_n: n,
            new_n: n,
            boundary: 0,
        }
    }

    /// Whether exactly one layout is live.
    pub(crate) fn is_steady(&self) -> bool {
        self.old_n == self.new_n
    }

    /// Physical shards both layouts need simultaneously.
    pub(crate) fn phys(&self) -> usize {
        self.old_n.max(self.new_n)
    }

    /// Whether `id` has already been migrated to the new layout.
    pub(crate) fn in_new_region(&self, id: usize) -> bool {
        if self.new_n >= self.old_n {
            id < self.boundary
        } else {
            id >= self.boundary
        }
    }

    /// The shard count of the layout owning `id`.
    pub(crate) fn layout_of(&self, id: usize) -> usize {
        if self.is_steady() || self.in_new_region(id) {
            self.new_n
        } else {
            self.old_n
        }
    }

    /// Global id → (owning shard, local slot).
    pub(crate) fn route(&self, id: usize) -> (usize, usize) {
        let n = self.layout_of(id);
        (id % n, id / n)
    }

    /// The global id of the record at `(shard, local)`, or `None` when
    /// no layout can own that slot under this epoch (possible only for
    /// corrupt snapshot manifests — a live database's occupied slots
    /// always resolve, see the module docs).
    pub(crate) fn global_of(&self, shard: usize, local: usize) -> Option<usize> {
        if self.is_steady() {
            return (shard < self.new_n).then(|| local * self.new_n + shard);
        }
        if shard < self.new_n {
            let id = local * self.new_n + shard;
            if self.in_new_region(id) {
                return Some(id);
            }
        }
        if shard < self.old_n {
            let id = local * self.old_n + shard;
            if !self.in_new_region(id) {
                return Some(id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epochs() -> Vec<RoutingEpoch> {
        let mut out = vec![RoutingEpoch::steady(1), RoutingEpoch::steady(4)];
        for (old_n, new_n) in [(2, 4), (4, 2), (4, 3), (3, 4), (1, 8), (8, 1), (4, 8)] {
            for boundary in [0usize, 1, 5, 17, 64, 1000] {
                out.push(RoutingEpoch {
                    old_n,
                    new_n,
                    boundary,
                });
            }
        }
        out
    }

    #[test]
    fn route_is_injective_and_inverts() {
        for epoch in epochs() {
            let mut seen = std::collections::HashMap::new();
            for id in 0..2000usize {
                let (shard, local) = epoch.route(id);
                assert!(shard < epoch.phys(), "{epoch:?} id {id}");
                if let Some(previous) = seen.insert((shard, local), id) {
                    panic!("{epoch:?}: ids {previous} and {id} share slot ({shard},{local})");
                }
                assert_eq!(
                    epoch.global_of(shard, local),
                    Some(id),
                    "{epoch:?} id {id} does not invert"
                );
            }
        }
    }

    #[test]
    fn local_order_maps_to_global_order_per_shard() {
        // The merge-correctness invariant: within one shard, ascending
        // local slots mean ascending global ids, mid-migration included.
        for epoch in epochs() {
            for shard in 0..epoch.phys() {
                let globals: Vec<usize> = (0..500)
                    .filter_map(|local| epoch.global_of(shard, local))
                    .collect();
                assert!(
                    globals.windows(2).all(|w| w[0] < w[1]),
                    "{epoch:?} shard {shard}: {globals:?}"
                );
            }
        }
    }

    #[test]
    fn steady_epoch_routes_classically() {
        let epoch = RoutingEpoch::steady(4);
        assert!(epoch.is_steady());
        assert_eq!(epoch.route(9), (1, 2));
        assert_eq!(epoch.global_of(1, 2), Some(9));
        assert_eq!(epoch.global_of(4, 0), None, "shard out of range");
        assert_eq!(epoch.layout_of(123), 4);
    }

    #[test]
    fn growth_and_shrink_regions() {
        let grow = RoutingEpoch {
            old_n: 2,
            new_n: 4,
            boundary: 10,
        };
        assert!(grow.in_new_region(9));
        assert!(!grow.in_new_region(10));
        assert_eq!(grow.layout_of(9), 4);
        assert_eq!(grow.layout_of(10), 2);
        assert_eq!(grow.phys(), 4);

        let shrink = RoutingEpoch {
            old_n: 4,
            new_n: 3,
            boundary: 10,
        };
        assert!(!shrink.in_new_region(9));
        assert!(shrink.in_new_region(10));
        assert_eq!(shrink.layout_of(9), 4);
        assert_eq!(shrink.layout_of(10), 3);
        assert_eq!(shrink.phys(), 4);
    }
}
