//! Online shard rebalancing: change a [`ReplicatedImageDatabase`]'s
//! shard count while it keeps serving reads and writes.
//!
//! # How a reshard runs
//!
//! 1. **Install** (topology write lock, no other lock): the target
//!    layout is recorded in the routing epoch. Growth appends fresh
//!    empty replica sets so both layouts' shards exist; the boundary
//!    starts at 0 (nothing migrated). Shrink keeps the physical shards
//!    and starts the boundary at the current id ceiling, so brand-new
//!    inserts route straight to the **new** layout while the sweep
//!    drains old ids downwards.
//! 2. **Batch moves**: each batch takes the migration gate exclusively,
//!    then every shard's write-order mutex, then every replica's write
//!    lock — a bounded stop-the-world per batch, with traffic flowing
//!    freely between batches. Records in the batch's id range are moved
//!    from their old slot to their new slot on every healthy replica,
//!    and only then does the boundary advance. Growth sweeps ascending,
//!    shrink descending — the directions that keep every shard's local
//!    slots unambiguous (see [`epoch`](crate::epoch)).
//! 3. **Finalise** (topology write lock): growth just flips the epoch
//!    steady; shrink additionally verifies the drained shards are empty
//!    and drops them.
//!
//! Because a batch owns every replica write lock before it mutates
//! anything, concurrent searches (which hold the gate shared for their
//! whole scatter) and point reads/writes (which re-validate their route
//! under a lock the batch also needs) never observe a half-moved
//! record: ranked results stay **bit-identical** to a never-resharded
//! database at every point of the migration
//! (`crates/db/tests/reshard.rs`).

use crate::events::EventKind;
use crate::replica::{drain_replica, ReplicaSet};
use crate::{DbError, ImageDatabase, RecordId, ReplicatedImageDatabase};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Progress of an online reshard, exposed via
/// [`ReplicatedImageDatabase::reshard_progress`] (and the server's
/// `/stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReshardProgress {
    /// Whether a reshard is currently running.
    pub active: bool,
    /// The shard count records migrate from.
    pub from: usize,
    /// The shard count records migrate to.
    pub to: usize,
    /// Global ids swept so far.
    pub migrated_ids: usize,
    /// Global ids to sweep in total (grows if inserts race a growth
    /// migration).
    pub total_ids: usize,
    /// Records physically moved between shards.
    pub moved_records: usize,
    /// Batches executed.
    pub batches: u64,
}

/// Streams records between shards to change a
/// [`ReplicatedImageDatabase`]'s shard count **while it serves**.
///
/// # Example
///
/// ```
/// use be2d_db::{QueryOptions, ReplicatedImageDatabase, Resharder};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = ReplicatedImageDatabase::with_topology(2, 1);
/// let scene = SceneBuilder::new(10, 10).object("A", (1, 5, 1, 5)).build()?;
/// for i in 0..10 {
///     db.insert_scene(&format!("img{i}"), &scene)?;
/// }
/// let report = Resharder::new(&db).run(4)?;
/// assert_eq!(db.shard_count(), 4);
/// assert_eq!(report.to, 4);
/// assert_eq!(db.search_scene(&scene, &QueryOptions::default())?.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Resharder {
    db: ReplicatedImageDatabase,
    batch: usize,
}

impl Resharder {
    /// A resharder over `db` with the default batch size (128 ids per
    /// stop-the-world batch).
    #[must_use]
    pub fn new(db: &ReplicatedImageDatabase) -> Resharder {
        Resharder {
            db: db.clone(),
            batch: 128,
        }
    }

    /// Sets how many global ids one batch sweeps (clamped to ≥ 1).
    /// Smaller batches mean shorter per-batch write pauses and more
    /// lock churn.
    #[must_use]
    pub fn batch_ids(mut self, batch: usize) -> Resharder {
        self.batch = batch.max(1);
        self
    }

    /// Runs the reshard to `to` shards, blocking until every record is
    /// on the new layout. Reads and writes keep flowing throughout.
    ///
    /// Should a run ever abort on an internal error, the epoch stays
    /// consistent (the boundary advances per moved id) and a rerun to
    /// the **same** target resumes the sweep where it stopped.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] when another reshard is already
    /// running or an aborted migration to a *different* target awaits
    /// resume, and propagates internal consistency failures (which
    /// would indicate a bug, not an operational condition).
    pub fn run(&self, to: usize) -> Result<ReshardProgress, DbError> {
        self.run_with_checkpoints(to, |_| {})
    }

    /// Like [`run`](Self::run), calling `checkpoint` after every batch
    /// (with **no** lock held) — the hook the migration test harness
    /// uses to assert mid-migration invariants, and a natural place to
    /// throttle.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_with_checkpoints(
        &self,
        to: usize,
        mut checkpoint: impl FnMut(&ReshardProgress),
    ) -> Result<ReshardProgress, DbError> {
        let to = to.max(1);
        let inner = &self.db.inner;
        // A concurrent *reshard* is rejected; a concurrent *restore*
        // (which holds the same lock, but only for its bounded
        // duration) is waited out — otherwise a migration accepted by
        // the server's admin endpoint could silently never run.
        let _reshard = loop {
            if let Some(guard) = inner.reshard_lock.try_lock() {
                break guard;
            }
            if self.db.resharding() {
                return Err(DbError::Replica {
                    reason: "a reshard is already in progress".into(),
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };

        // Install the migration epoch (or adopt an aborted one). The
        // active progress is published while the topology write lock is
        // still held: otherwise a /stats in the gap would see the
        // target shard count with `reshard_active` still false and
        // conclude a just-started migration already finished.
        let mut progress = {
            let mut top = inner.topology.write();
            let from = top.old_n;
            let progress = if !top.is_steady() {
                // A previous run aborted on an internal error. The
                // epoch is still consistent — the boundary advances
                // per moved id — so a rerun to the *same* target
                // resumes the sweep; any other target must wait.
                if top.new_n != to {
                    return Err(DbError::Replica {
                        reason: format!(
                            "an aborted reshard to {} shards must be resumed (requested {to})",
                            top.new_n
                        ),
                    });
                }
                ReshardProgress {
                    active: true,
                    from,
                    to,
                    migrated_ids: 0,
                    total_ids: inner.next_id.load(Ordering::SeqCst),
                    moved_records: 0,
                    batches: 0,
                }
            } else {
                if from == to {
                    let progress = ReshardProgress {
                        from,
                        to,
                        ..ReshardProgress::default()
                    };
                    *inner.progress.lock() = progress.clone();
                    return Ok(progress);
                }
                let replicas = top.sets[0].replicas.len();
                while top.sets.len() < to {
                    top.sets
                        .push(Arc::new(ReplicaSet::new(replicas, inner.oplog_window)));
                }
                let ceiling = inner.next_id.load(Ordering::SeqCst);
                // Growth sweeps ids ascending from 0; shrink descending
                // from the id ceiling (ids above it route new-layout
                // from the start, so racing inserts land correctly).
                let start = if to > from { 0 } else { ceiling };
                top.boundary.store(start, Ordering::SeqCst);
                top.old_n = from;
                top.new_n = to;
                // Fence every shard's op log at the epoch change
                // (defence in depth — install itself re-routes no
                // existing id — skipped on resume, where the original
                // install already fenced). Writers are excluded: they
                // need the topology read lock this block holds
                // exclusively. The barrier stamps healthy replicas
                // applied-to-head, so every lagging follower must be
                // drained *first* (the async pump may be mid-gap):
                // stamping an undrained follower would silently skip
                // its pending ops, and the very first batch that moves
                // one of those never-applied records would fail it out
                // of rotation. The just-installed epoch routes every
                // existing id exactly as the steady epoch the ops were
                // logged under, so the replay is route-stable. A
                // follower whose gap cannot be replayed leaves rotation
                // defensively rather than be stamped into divergence.
                for (shard, set) in top.sets.iter().enumerate() {
                    let _order = set.write_order.lock();
                    for r in 0..set.replicas.len() {
                        if set.health[r].load(Ordering::SeqCst)
                            && !drain_replica(&top, set, shard, r)
                        {
                            set.health[r].store(false, Ordering::SeqCst);
                        }
                    }
                    inner.log_barrier(set);
                }
                ReshardProgress {
                    active: true,
                    from,
                    to,
                    migrated_ids: 0,
                    total_ids: ceiling,
                    moved_records: 0,
                    batches: 0,
                }
            };
            // Nobody takes the topology lock while holding the progress
            // lock, so this nesting cannot deadlock.
            *inner.progress.lock() = progress.clone();
            progress
        };
        inner.events.record(EventKind::ReshardStarted {
            from: progress.from,
            to: progress.to,
        });

        // Sweep in bounded batches until the watermark covers all ids.
        //
        // Growth chases a moving target: concurrent inserts keep raising
        // the id ceiling between batches, and a fixed batch size could
        // chase it forever under a hot write storm. Whenever a batch
        // fails to shrink the remaining distance, the effective batch
        // doubles — inserts are frozen *during* a batch, so a large
        // enough final batch always closes the gap (shrink's target is
        // fixed at install, so its batches never grow).
        let mut effective_batch = self.batch;
        let mut last_remaining = usize::MAX;
        loop {
            let batch = self.step(effective_batch)?;
            progress.migrated_ids += batch.swept;
            progress.total_ids = progress.total_ids.max(batch.total);
            progress.moved_records += batch.moved;
            progress.batches += 1;
            *inner.progress.lock() = progress.clone();
            checkpoint(&progress);
            if batch.done {
                break;
            }
            if batch.remaining >= last_remaining {
                effective_batch = effective_batch.saturating_mul(2);
            }
            last_remaining = batch.remaining;
        }

        // Finalise: flip the epoch steady; shrink drops drained shards.
        {
            let mut top = inner.topology.write();
            if to < progress.from {
                for (shard, set) in top.sets.iter().enumerate().skip(to) {
                    // A drained shard's leftover check is diagnostic: a
                    // (vanishingly rare) all-failed set reads replica 0,
                    // which the sweep kept draining like every other copy.
                    let leader = set.first_healthy().unwrap_or(0);
                    let leftover = set.replicas[leader].read().len();
                    if leftover != 0 {
                        return Err(DbError::Persist {
                            reason: format!(
                                "reshard sweep left {leftover} records on drained shard {shard}"
                            ),
                        });
                    }
                }
                top.sets.truncate(to);
            }
            top.old_n = to;
            top.boundary.store(0, Ordering::SeqCst);
        }
        progress.active = false;
        *inner.progress.lock() = progress.clone();
        inner.events.record(EventKind::ReshardFinished {
            from: progress.from,
            to: progress.to,
            moved_records: progress.moved_records,
            batches: progress.batches,
        });
        checkpoint(&progress);
        Ok(progress)
    }

    /// One stop-the-world batch: move up to `batch` ids, advance the
    /// boundary, release everything.
    fn step(&self, batch: usize) -> Result<BatchOutcome, DbError> {
        let inner = &self.db.inner;
        let top = inner.topology.read();
        let (from_n, to_n) = (top.old_n, top.new_n);
        // Exclusive gate first: in-flight scatters drain, new ones wait.
        let _gate = inner.search_gate.write();
        // Then every shard's write-order mutex (shard order) and every
        // replica's write lock (shard, replica order) — the same global
        // order every other multi-lock path uses, so no deadlock.
        let _orders: Vec<_> = top.sets.iter().map(|set| set.write_order.lock()).collect();
        let mut locks: Vec<Vec<_>> = top
            .sets
            .iter()
            .map(|set| set.replicas.iter().map(|r| r.write()).collect())
            .collect();

        // Before anything moves, bring every healthy lagging replica to
        // its shard head through the already-held write guards (Quorum/
        // Async followers the pump has not reached yet). The barrier
        // stamped after the moves marks every healthy replica applied;
        // draining first keeps that truthful and preserves the
        // "healthy ⇒ replayable gap" invariant. A healthy replica whose
        // gap turns out unreplayable has diverged from the invariant and
        // leaves rotation defensively.
        let pre_epoch = top.epoch();
        for (shard, set) in top.sets.iter().enumerate() {
            for (replica, guard) in locks[shard].iter_mut().enumerate() {
                if !set.health[replica].load(Ordering::SeqCst) {
                    continue;
                }
                let applied = set.applied[replica].load(Ordering::SeqCst);
                if applied >= set.head.load(Ordering::SeqCst) {
                    continue;
                }
                let pending = set.log.lock().collect_since(applied);
                let drained = pending.is_some_and(|pending| {
                    pending.into_iter().all(|(seq, op)| {
                        let ok = op.apply_local(guard, &pre_epoch, shard).is_ok();
                        if ok {
                            set.applied[replica].store(seq, Ordering::SeqCst);
                        }
                        ok
                    })
                });
                if !drained {
                    set.health[replica].store(false, Ordering::SeqCst);
                }
            }
        }

        let boundary = top.boundary.load(Ordering::SeqCst);
        let mut moved = 0usize;
        if to_n > from_n {
            // Growth: ascending sweep towards the id ceiling. The
            // ceiling is re-read under all the locks: any insert that
            // *completed* bumped `next_id` before releasing its
            // write-order mutex, so every live record is below it; ids
            // allocated but not yet inserted re-validate their route
            // and land on the new layout once the boundary passes them.
            let ceiling = inner.next_id.load(Ordering::SeqCst);
            if boundary >= ceiling {
                // Nothing left below the ceiling — including a resumed
                // run whose predecessor already parked the boundary at
                // usize::MAX before aborting short of finalise.
                top.boundary.store(usize::MAX, Ordering::SeqCst);
                return Ok(BatchOutcome {
                    done: true,
                    swept: 0,
                    total: ceiling,
                    moved: 0,
                    remaining: 0,
                });
            }
            let end = (boundary.saturating_add(batch)).min(ceiling);
            for id in boundary..end {
                moved += move_record(&top.sets, &mut locks, id, from_n, to_n)?;
                // Advanced per id, not per batch: no observer can see it
                // mid-batch (all locks are held), but an *aborting*
                // error between moves then leaves the epoch consistent
                // — every id below the boundary moved, none above it —
                // so the migration can be resumed.
                top.boundary.store(id + 1, Ordering::SeqCst);
            }
            if end >= ceiling {
                // Every *completed* insert bumped `next_id` before
                // releasing its write-order mutex, so under all the
                // locks no live record sits at or above `ceiling`. Park
                // the boundary above any future id: pending allocations
                // re-validate their route and land on the new layout,
                // and finalise flips the epoch steady.
                top.boundary.store(usize::MAX, Ordering::SeqCst);
            } else {
                top.boundary.store(end, Ordering::SeqCst);
            }
            // The boundary moved: ops logged before this batch route
            // differently from here on, so no gap may ever be replayed
            // across it. Fence every shard's log (all replicas were
            // drained above and moved identically, so marking healthy
            // replicas applied is truthful).
            if end > boundary {
                for set in top.sets.iter() {
                    inner.log_barrier(set);
                }
            }
            Ok(BatchOutcome {
                done: end >= ceiling,
                swept: end - boundary,
                total: ceiling,
                moved,
                remaining: ceiling - end,
            })
        } else {
            // Shrink: descending sweep towards 0 (the target is fixed —
            // ids allocated after install route new-layout already).
            if boundary == 0 {
                return Ok(BatchOutcome {
                    done: true,
                    swept: 0,
                    total: 0,
                    moved: 0,
                    remaining: 0,
                });
            }
            let start = boundary.saturating_sub(batch);
            for id in (start..boundary).rev() {
                moved += move_record(&top.sets, &mut locks, id, from_n, to_n)?;
                // Per-id advance, for the same abort-consistency reason
                // as the growth sweep.
                top.boundary.store(id, Ordering::SeqCst);
            }
            // Same replay fence as the growth sweep.
            if boundary > start {
                for set in top.sets.iter() {
                    inner.log_barrier(set);
                }
            }
            Ok(BatchOutcome {
                done: start == 0,
                swept: boundary - start,
                total: 0,
                moved,
                remaining: start,
            })
        }
    }
}

struct BatchOutcome {
    done: bool,
    swept: usize,
    total: usize,
    moved: usize,
    /// Ids left to sweep at batch end (the adaptive-batch signal).
    remaining: usize,
}

/// Moves one global id from its old-layout slot to its new-layout slot
/// on every healthy replica. The caller holds every write-order mutex
/// and every replica write lock (`locks` mirrors `sets`). Ids with no
/// live record (removed, or allocated-but-uninserted) move nothing.
///
/// Error policy mirrors the write fan-out: the first healthy replica is
/// authoritative — if *it* fails nothing has been touched and the error
/// propagates cleanly; a later replica that disagrees has diverged and
/// is taken out of rotation rather than abort the move. Should the
/// authoritative destination insert fail, the source removals are
/// undone first, so even that abort leaves every record in place.
fn move_record(
    sets: &[Arc<ReplicaSet>],
    locks: &mut [Vec<parking_lot::RwLockWriteGuard<'_, ImageDatabase>>],
    id: usize,
    from_n: usize,
    to_n: usize,
) -> Result<usize, DbError> {
    let (old_shard, old_local) = (id % from_n, RecordId(id / from_n));
    let (new_shard, new_local) = (id % to_n, RecordId(id / to_n));
    if old_shard == new_shard && old_local == new_local {
        return Ok(0);
    }
    let Some(source) = sets[old_shard].first_healthy() else {
        return Err(ReplicaSet::no_healthy(old_shard));
    };
    let Some(record) = locks[old_shard][source].get(old_local) else {
        return Ok(0);
    };
    let (name, symbolic) = (record.name.clone(), record.symbolic.clone());
    let mut removed_from: Vec<usize> = Vec::new();
    for (replica, guard) in locks[old_shard].iter_mut().enumerate() {
        if !sets[old_shard].health[replica].load(Ordering::SeqCst) {
            continue;
        }
        // Present on every healthy replica by the fan-out invariant.
        match guard.remove(old_local) {
            Ok(_) => removed_from.push(replica),
            Err(e) if replica == source => return Err(e),
            Err(_) => sets[old_shard].health[replica].store(false, Ordering::SeqCst),
        }
    }
    let mut inserted = false;
    for (replica, guard) in locks[new_shard].iter_mut().enumerate() {
        if !sets[new_shard].health[replica].load(Ordering::SeqCst) {
            continue;
        }
        // The destination slot is always vacant: its old-layout
        // occupant (a smaller id under growth, larger under shrink)
        // was swept out earlier in the migration (see `epoch.rs`).
        match guard.insert_symbolic_with_id(new_local, &name, symbolic.clone()) {
            Ok(()) => inserted = true,
            Err(e) if !inserted => {
                // Authoritative destination refused: undo the source
                // removals (their slots were just vacated, so this
                // cannot fail) and abort with the record intact.
                for &replica in &removed_from {
                    let _ = locks[old_shard][replica].insert_symbolic_with_id(
                        old_local,
                        &name,
                        symbolic.clone(),
                    );
                }
                return Err(e);
            }
            Err(_) => sets[new_shard].health[replica].store(false, Ordering::SeqCst),
        }
    }
    sets[old_shard].edits.fetch_add(1, Ordering::SeqCst);
    sets[new_shard].edits.fetch_add(1, Ordering::SeqCst);
    Ok(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryOptions;
    use be2d_geometry::{Scene, SceneBuilder};

    fn scene(x: i64) -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (x, x + 10, 10, 20))
            .object("B", (50, 90, 50, 90))
            .build()
            .unwrap()
    }

    #[test]
    fn grow_and_shrink_preserve_every_record() {
        let db = ReplicatedImageDatabase::with_topology(2, 2);
        for i in 0..23 {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        db.remove(RecordId(5)).unwrap();

        let report = Resharder::new(&db).batch_ids(4).run(5).unwrap();
        assert_eq!(db.shard_count(), 5);
        assert!(!db.resharding());
        assert_eq!(report.from, 2);
        assert_eq!(report.to, 5);
        assert!(report.moved_records > 0, "{report:?}");
        assert_eq!(db.len(), 22);
        for i in 0..23usize {
            match (i, db.get(RecordId(i)).unwrap()) {
                (5, found) => assert!(found.is_none()),
                (_, Some(record)) => assert_eq!(record.name, format!("img{i}")),
                (_, None) => panic!("record {i} lost in growth"),
            }
        }
        // Ids keep the global sequence across the topology change.
        assert_eq!(db.insert_scene("next", &scene(1)).unwrap(), RecordId(23));

        let report = Resharder::new(&db).batch_ids(7).run(3).unwrap();
        assert_eq!(db.shard_count(), 3);
        assert_eq!(report.from, 5);
        assert_eq!(db.len(), 23);
        assert_eq!(db.get(RecordId(23)).unwrap().unwrap().name, "next");
        assert_eq!(db.replica_health(), vec![vec![true, true]; 3]);
        assert_eq!(db.insert_scene("after", &scene(2)).unwrap(), RecordId(24));
    }

    #[test]
    fn reshard_to_same_count_is_a_noop() {
        let db = ReplicatedImageDatabase::with_topology(3, 1);
        db.insert_scene("one", &scene(1)).unwrap();
        let report = Resharder::new(&db).run(3).unwrap();
        assert_eq!(report.batches, 0);
        assert!(!report.active);
        assert_eq!(db.shard_count(), 3);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn reshard_progress_is_observable_at_checkpoints() {
        let db = ReplicatedImageDatabase::with_topology(1, 1);
        for i in 0..40 {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        let mut checkpoints = Vec::new();
        Resharder::new(&db)
            .batch_ids(8)
            .run_with_checkpoints(4, |p| checkpoints.push(p.clone()))
            .unwrap();
        assert!(checkpoints.len() >= 5, "{checkpoints:?}");
        assert!(checkpoints.iter().rev().skip(1).all(|p| p.active));
        let last = checkpoints.last().unwrap();
        assert!(!last.active);
        assert_eq!(last.migrated_ids, 40);
        assert_eq!(last.total_ids, 40);
        assert_eq!(db.reshard_progress(), *last);
        // Watermarks are monotone.
        assert!(checkpoints
            .windows(2)
            .all(|w| w[0].migrated_ids <= w[1].migrated_ids));
    }

    #[test]
    fn restore_is_rejected_mid_reshard() {
        let dir = std::env::temp_dir().join(format!("be2d_reshard_restore_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let db = ReplicatedImageDatabase::with_topology(2, 1);
        for i in 0..30 {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        db.save_snapshot(&path).unwrap();

        let mut restore_errors = 0;
        Resharder::new(&db)
            .batch_ids(4)
            .run_with_checkpoints(4, |p| {
                if p.active {
                    // Mid-migration, a restore must refuse rather than
                    // fight the sweep over the topology.
                    match db.restore_from(&path) {
                        Err(DbError::Replica { reason }) => {
                            assert!(reason.contains("reshard"), "{reason}");
                            restore_errors += 1;
                        }
                        other => panic!("restore mid-reshard must fail: {other:?}"),
                    }
                }
            })
            .unwrap();
        assert!(restore_errors > 0);
        // Afterwards the restore works again.
        assert_eq!(db.restore_from(&path).unwrap(), 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_reshards_are_rejected() {
        let db = ReplicatedImageDatabase::with_topology(2, 1);
        for i in 0..20 {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        let mut nested = None;
        Resharder::new(&db)
            .batch_ids(2)
            .run_with_checkpoints(4, |p| {
                if p.active && nested.is_none() {
                    nested = Some(Resharder::new(&db).run(8));
                }
            })
            .unwrap();
        match nested {
            Some(Err(DbError::Replica { reason })) => {
                assert!(reason.contains("already in progress"), "{reason}");
            }
            other => panic!("nested reshard must be rejected: {other:?}"),
        }
        assert_eq!(db.shard_count(), 4);
    }

    #[test]
    fn aborted_reshard_resumes_to_the_same_target() {
        let db = ReplicatedImageDatabase::with_topology(2, 1);
        for i in 0..30 {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        let reference: Vec<String> = (0..30).map(|i| format!("img{i}")).collect();

        // Abort mid-sweep (checkpoints run with no lock held, so a
        // panicking hook models any internal abort).
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Resharder::new(&db)
                .batch_ids(4)
                .run_with_checkpoints(5, |p| {
                    if p.active && p.migrated_ids >= 8 {
                        panic!("injected abort");
                    }
                })
        }));
        assert!(aborted.is_err());
        assert!(db.resharding(), "epoch still mid-migration");

        // Every record stays reachable under the abandoned epoch, but
        // bulk operations that assume a steady layout are refused.
        for (i, name) in reference.iter().enumerate() {
            assert_eq!(&db.get(RecordId(i)).unwrap().unwrap().name, name);
        }
        let err = Resharder::new(&db).run(3).unwrap_err();
        assert!(err.to_string().contains("resumed"), "{err}");
        let dir = std::env::temp_dir().join(format!("be2d_resume_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        std::fs::write(&path, "{}").unwrap();
        let err = db.restore_from(&path).unwrap_err();
        assert!(err.to_string().contains("resume"), "{err}");
        std::fs::remove_dir_all(&dir).ok();

        // Rerunning to the same target resumes and completes.
        Resharder::new(&db).batch_ids(4).run(5).unwrap();
        assert!(!db.resharding());
        assert_eq!(db.shard_count(), 5);
        for (i, name) in reference.iter().enumerate() {
            assert_eq!(&db.get(RecordId(i)).unwrap().unwrap().name, name);
        }

        // Abort in the narrowest window — after the final batch parked
        // the boundary at usize::MAX, before finalise — then resume.
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Resharder::new(&db)
                .batch_ids(64)
                .run_with_checkpoints(2, |p| {
                    if p.active && p.migrated_ids >= p.total_ids {
                        panic!("abort at the parked boundary");
                    }
                })
        }));
        assert!(aborted.is_err());
        assert!(db.resharding());
        Resharder::new(&db).run(2).unwrap();
        assert_eq!(db.shard_count(), 2);
        assert_eq!(db.len(), 30);
    }

    #[test]
    fn search_is_bit_identical_at_every_checkpoint() {
        let reference = {
            let mut db = ImageDatabase::new();
            for i in 0..60 {
                db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
            }
            db
        };
        let db = ReplicatedImageDatabase::with_topology(3, 1);
        for i in 0..60 {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        let queries: Vec<Scene> = (0..6).map(|i| scene(i * 7)).collect();
        let options = QueryOptions::default();
        let mut compared = 0;
        Resharder::new(&db)
            .batch_ids(5)
            .run_with_checkpoints(7, |_| {
                for query in &queries {
                    let expect = reference.search_scene(query, &options);
                    let hits = db.search_scene(query, &options).unwrap();
                    assert_eq!(expect.len(), hits.len());
                    for (a, b) in expect.iter().zip(&hits) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.score.to_bits(), b.score.to_bits());
                    }
                    compared += 1;
                }
            })
            .unwrap();
        assert!(compared >= 60, "checkpoints actually compared: {compared}");
    }
}
