//! Always-on database instrumentation and per-query tracing.
//!
//! [`DbMetrics`] bundles the lock-free handles
//! ([`be2d_metrics::Histogram`] / [`Counter`] / [`Gauge`]) the replicated
//! database records into on every search and write — per-shard scatter
//! timings, gather/merge time, oplog append and WAL fsync latency,
//! replica picks, outstanding reads, and checkpoint duration. The server
//! registers the same handles with its Prometheus registry, so recording
//! here is a handful of relaxed atomic adds and never takes a lock.
//!
//! [`QueryTrace`] is the per-query view of the same stages: every search
//! produces one (the cost is reading a monotonic clock a few times), and
//! callers that set the `trace` flag get it back verbatim.

use std::sync::Arc;
use std::time::Instant;

use crate::CandidateStrategy;
use be2d_metrics::{Counter, Gauge, Histogram, HistogramPool};

/// Slots in the per-shard scatter histogram pool. Shard indices at or
/// beyond the last slot share it (the exposition labels it `"31+"`), so
/// live resharding past 32 shards never reallocates metric storage.
pub const SCATTER_POOL_SLOTS: usize = 32;

/// Elapsed nanoseconds since `start`, saturating at `u64::MAX`.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The database's shared metric handles. Cloning shares the underlying
/// atomics; a [`ReplicatedImageDatabase`](crate::ReplicatedImageDatabase)
/// creates one set at construction and exposes it via
/// [`metrics()`](crate::ReplicatedImageDatabase::metrics).
#[derive(Debug, Clone)]
pub struct DbMetrics {
    /// Per-shard scatter scan duration (index = shard, clamped to the
    /// pool's last slot).
    pub scatter: HistogramPool,
    /// Gather/merge (`merge_top_k`) duration per multi-shard search.
    pub gather: Arc<Histogram>,
    /// End-to-end search duration (entry to exit, all stages included).
    pub search_total: Arc<Histogram>,
    /// Duration of one logged mutation through the op log (leader apply,
    /// sequencing, WAL append, follower acks).
    pub oplog_append: Arc<Histogram>,
    /// Duration of each WAL `sync_data` call (batched appends that skip
    /// the fsync record nothing).
    pub wal_fsync: Arc<Histogram>,
    /// Duration of each WAL checkpoint (anchor snapshot + truncation).
    pub checkpoint: Arc<Histogram>,
    /// Replica read-routing decisions taken (one per shard touched).
    pub replica_picks: Arc<Counter>,
    /// Bounded-lag reads that found no in-sync follower and fell back
    /// to the leader — a sustained rise means followers cannot keep up
    /// with the configured lag bound.
    pub replica_fallback_reads: Arc<Counter>,
    /// Reads currently holding a replica read lock.
    pub outstanding_reads: Arc<Gauge>,
    /// Multi-shard searches planner v2 ran with a selectivity-ordered
    /// scatter (first wave sequenced, remainder riding its threshold).
    pub planner_ordered_scatters: Arc<Counter>,
    /// Per-shard scans where planner v2 chose the dense-scan candidate
    /// strategy over the posting walk.
    pub planner_dense_scans: Arc<Counter>,
    /// Candidates exactly scored (stage-2 survivors of two-stage
    /// retrieval; every scored candidate in exhaustive mode).
    pub stage2_scored: Arc<Counter>,
    /// Candidates two-stage retrieval skipped because their admissible
    /// score bound proved they cannot enter the result.
    pub bound_pruned: Arc<Counter>,
}

impl Default for DbMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl DbMetrics {
    /// Fresh, all-zero metric handles.
    pub fn new() -> Self {
        DbMetrics {
            scatter: HistogramPool::new(SCATTER_POOL_SLOTS),
            gather: Arc::new(Histogram::new()),
            search_total: Arc::new(Histogram::new()),
            oplog_append: Arc::new(Histogram::new()),
            wal_fsync: Arc::new(Histogram::new()),
            checkpoint: Arc::new(Histogram::new()),
            replica_picks: Arc::new(Counter::new()),
            replica_fallback_reads: Arc::new(Counter::new()),
            outstanding_reads: Arc::new(Gauge::new()),
            planner_ordered_scatters: Arc::new(Counter::new()),
            planner_dense_scans: Arc::new(Counter::new()),
            stage2_scored: Arc::new(Counter::new()),
            bound_pruned: Arc::new(Counter::new()),
        }
    }
}

/// Per-stage timing breakdown of one scatter-gather search, in
/// nanoseconds. Stages are measured disjointly inside the total, so
/// `planner_ns + scatter_ns + gather_ns <= total_ns` always holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Query-class extraction and epoch snapshot (the scatter plan).
    pub planner_ns: u64,
    /// Wall time of the whole scatter (shards may run in parallel, so
    /// this is the max-ish envelope, not the sum of shard times).
    pub scatter_ns: u64,
    /// K-way merge of the per-shard ranked lists.
    pub gather_ns: u64,
    /// End-to-end search duration.
    pub total_ns: u64,
    /// Whether planner v2 ordered this scatter by per-shard selectivity
    /// (sequencing the most selective shard first). `false` for naive
    /// index-order scatters, single-shard searches, and searches whose
    /// options engage no cross-shard threshold.
    pub ordered: bool,
    /// One entry per shard scanned (or skipped by the planner), in
    /// shard-index order regardless of the visit order (each entry's
    /// [`order`](ShardTrace::order) records its position in the plan).
    pub shards: Vec<ShardTrace>,
}

impl QueryTrace {
    /// Sum of the measured stages, in nanoseconds — always at most
    /// [`total_ns`](Self::total_ns).
    #[must_use]
    pub fn stage_sum_ns(&self) -> u64 {
        self.planner_ns + self.scatter_ns + self.gather_ns
    }
}

/// One shard's slice of a [`QueryTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTrace {
    /// Physical shard index.
    pub shard: usize,
    /// Replica the read picker routed this scan to.
    pub replica: usize,
    /// This shard's position in the planner's visit order (0 = scanned
    /// first). Equal to `shard` under the naive index-order scatter.
    pub order: usize,
    /// Whether this shard formed the sequenced first wave of an ordered
    /// scatter — its k-th exact score seeds the cross-shard threshold
    /// before the remaining shards run.
    pub first_wave: bool,
    /// Candidate strategy the planner executed on this shard (only ever
    /// [`CandidateStrategy::DenseScan`] when planner v2 measured the
    /// shard's postings as covering most of it).
    pub strategy: CandidateStrategy,
    /// The planner's candidate-count estimate for this shard (posting
    /// sizes under the query's prefilter; record count when the options
    /// bypass the inverted index). 0 for skipped shards.
    pub est_candidates: usize,
    /// Whether the scatter planner proved the shard empty and skipped
    /// the scan.
    pub skipped: bool,
    /// Hits this shard contributed before the global merge.
    pub hits: usize,
    /// Candidates this shard exactly scored (stage-2 survivors).
    pub scored: usize,
    /// Candidates this shard's two-stage scan pruned by bound.
    pub bound_pruned: usize,
    /// Scan duration for this shard, in nanoseconds.
    pub elapsed_ns: u64,
}
