//! Always-on database instrumentation and per-query tracing.
//!
//! [`DbMetrics`] bundles the lock-free handles
//! ([`be2d_metrics::Histogram`] / [`Counter`] / [`Gauge`]) the replicated
//! database records into on every search and write — per-shard scatter
//! timings, gather/merge time, oplog append and WAL fsync latency,
//! replica picks, outstanding reads, and checkpoint duration. The server
//! registers the same handles with its Prometheus registry, so recording
//! here is a handful of relaxed atomic adds and never takes a lock.
//!
//! [`QueryTrace`] is the per-query view of the same stages: every search
//! produces one (the cost is reading a monotonic clock a few times), and
//! callers that set the `trace` flag get it back verbatim.

use std::sync::Arc;
use std::time::Instant;

use be2d_metrics::{Counter, Gauge, Histogram, HistogramPool};

/// Slots in the per-shard scatter histogram pool. Shard indices at or
/// beyond the last slot share it (the exposition labels it `"31+"`), so
/// live resharding past 32 shards never reallocates metric storage.
pub const SCATTER_POOL_SLOTS: usize = 32;

/// Elapsed nanoseconds since `start`, saturating at `u64::MAX`.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The database's shared metric handles. Cloning shares the underlying
/// atomics; a [`ReplicatedImageDatabase`](crate::ReplicatedImageDatabase)
/// creates one set at construction and exposes it via
/// [`metrics()`](crate::ReplicatedImageDatabase::metrics).
#[derive(Debug, Clone)]
pub struct DbMetrics {
    /// Per-shard scatter scan duration (index = shard, clamped to the
    /// pool's last slot).
    pub scatter: HistogramPool,
    /// Gather/merge (`merge_top_k`) duration per multi-shard search.
    pub gather: Arc<Histogram>,
    /// End-to-end search duration (entry to exit, all stages included).
    pub search_total: Arc<Histogram>,
    /// Duration of one logged mutation through the op log (leader apply,
    /// sequencing, WAL append, follower acks).
    pub oplog_append: Arc<Histogram>,
    /// Duration of each WAL `sync_data` call (batched appends that skip
    /// the fsync record nothing).
    pub wal_fsync: Arc<Histogram>,
    /// Duration of each WAL checkpoint (anchor snapshot + truncation).
    pub checkpoint: Arc<Histogram>,
    /// Replica read-routing decisions taken (one per shard touched).
    pub replica_picks: Arc<Counter>,
    /// Reads currently holding a replica read lock.
    pub outstanding_reads: Arc<Gauge>,
    /// Candidates exactly scored (stage-2 survivors of two-stage
    /// retrieval; every scored candidate in exhaustive mode).
    pub stage2_scored: Arc<Counter>,
    /// Candidates two-stage retrieval skipped because their admissible
    /// score bound proved they cannot enter the result.
    pub bound_pruned: Arc<Counter>,
}

impl Default for DbMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl DbMetrics {
    /// Fresh, all-zero metric handles.
    pub fn new() -> Self {
        DbMetrics {
            scatter: HistogramPool::new(SCATTER_POOL_SLOTS),
            gather: Arc::new(Histogram::new()),
            search_total: Arc::new(Histogram::new()),
            oplog_append: Arc::new(Histogram::new()),
            wal_fsync: Arc::new(Histogram::new()),
            checkpoint: Arc::new(Histogram::new()),
            replica_picks: Arc::new(Counter::new()),
            outstanding_reads: Arc::new(Gauge::new()),
            stage2_scored: Arc::new(Counter::new()),
            bound_pruned: Arc::new(Counter::new()),
        }
    }
}

/// Per-stage timing breakdown of one scatter-gather search, in
/// nanoseconds. Stages are measured disjointly inside the total, so
/// `planner_ns + scatter_ns + gather_ns <= total_ns` always holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Query-class extraction and epoch snapshot (the scatter plan).
    pub planner_ns: u64,
    /// Wall time of the whole scatter (shards may run in parallel, so
    /// this is the max-ish envelope, not the sum of shard times).
    pub scatter_ns: u64,
    /// K-way merge of the per-shard ranked lists.
    pub gather_ns: u64,
    /// End-to-end search duration.
    pub total_ns: u64,
    /// One entry per shard scanned (or skipped by the planner).
    pub shards: Vec<ShardTrace>,
}

impl QueryTrace {
    /// Sum of the measured stages, in nanoseconds — always at most
    /// [`total_ns`](Self::total_ns).
    #[must_use]
    pub fn stage_sum_ns(&self) -> u64 {
        self.planner_ns + self.scatter_ns + self.gather_ns
    }
}

/// One shard's slice of a [`QueryTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTrace {
    /// Physical shard index.
    pub shard: usize,
    /// Replica the read picker routed this scan to.
    pub replica: usize,
    /// Whether the scatter planner proved the shard empty and skipped
    /// the scan.
    pub skipped: bool,
    /// Hits this shard contributed before the global merge.
    pub hits: usize,
    /// Candidates this shard exactly scored (stage-2 survivors).
    pub scored: usize,
    /// Candidates this shard's two-stage scan pruned by bound.
    pub bound_pruned: usize,
    /// Scan duration for this shard, in nanoseconds.
    pub elapsed_ns: u64,
}
