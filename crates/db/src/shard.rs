//! A horizontally sharded image database with scatter-gather search.
//!
//! The paper's retrieval model is embarrassingly partitionable: every
//! record scores independently against the query, so the corpus can be
//! split into N independent shards — each a plain [`ImageDatabase`]
//! behind its **own** reader-writer lock — and searched in parallel.
//! Writes touch only the owning shard, so the reader/writer contention
//! of a single-lock deployment collapses by roughly the shard count.
//!
//! # Routing
//!
//! Ids are assigned from one global monotonic counter (never reused,
//! like the single-shard database). A record with global id `g` lives in
//! shard `g % N` at local slot `g / N`; both directions of the mapping
//! are O(1) and need no routing table. Because the counter is
//! sequential, inserts round-robin across shards and each shard stays
//! dense.
//!
//! # Ranking equivalence
//!
//! Search scatters the query to every shard (scoped threads), lets each
//! shard produce and score its own candidates with the existing
//! [`ImageDatabase::search`] logic, then performs a top-k heap merge of
//! the per-shard ranked lists. Scores depend only on the record and the
//! query — never on co-resident records — and the global tie-break
//! (score desc, id asc) is preserved by the merge, so the ranked result
//! is **bit-identical** to a single-shard database holding the same
//! records (see `crates/db/tests/sharded.rs`).

use crate::database::write_atomic;
use crate::epoch::RoutingEpoch;
use crate::{
    CandidateSource, DbError, ImageDatabase, ImageRecord, PrefilterMode, QueryOptions, RecordId,
    SearchHit,
};
use be2d_core::{BeString2D, SymbolicImage};
use be2d_geometry::{ObjectClass, Rect, Scene};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cheaply clonable, thread-safe, horizontally sharded image
/// database.
///
/// With `shards = 1` it behaves exactly like one [`ImageDatabase`]
/// behind a single reader-writer lock: one record table, identical
/// ids. With more shards, searches scatter-gather across all shards
/// and writes lock only the owning shard.
///
/// # Example
///
/// ```
/// use be2d_db::{ShardedImageDatabase, QueryOptions};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = ShardedImageDatabase::with_shards(4);
/// let scene = SceneBuilder::new(10, 10).object("A", (1, 5, 1, 5)).build()?;
/// let id = db.insert_scene("one", &scene)?;
/// let hits = db.search_scene(&scene, &QueryOptions::default());
/// assert_eq!(hits[0].id, id);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedImageDatabase {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<RwLock<ImageDatabase>>,
    /// The next global id; increments on every insert, never reused.
    next_id: AtomicUsize,
    /// Per-shard edit counters, bumped under the owning shard's write
    /// lock on every successful mutation. Recorded in the snapshot
    /// manifest so [`save_snapshot`](ShardedImageDatabase::save_snapshot)
    /// can skip rewriting shards untouched since the last generation.
    edits: Vec<AtomicU64>,
    /// Stable id of this database *instance* (shared by clones). Edit
    /// counters are only comparable within one instance, so the
    /// manifest records the writer and incremental saves never trust
    /// counters written by a different process or database.
    instance: u64,
    /// Shards the scatter planner skipped because their class postings
    /// provably cannot contribute a candidate (see `/stats`).
    planner_skipped: AtomicU64,
    /// Serialises snapshot/restore **file I/O** (not regular traffic):
    /// two concurrent saves to one path could otherwise delete each
    /// other's generation files during cleanup, and a save racing a
    /// restore could delete shard files mid-read. Always acquired
    /// before any shard lock, so it cannot deadlock with them.
    snapshot_io: parking_lot::Mutex<()>,
}

/// Aggregate statistics of a [`ShardedImageDatabase`], taken atomically
/// across all shards (see [`ShardedImageDatabase::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Live records per shard, in shard order.
    pub shard_records: Vec<usize>,
    /// Distinct object classes across all shards (union).
    pub classes: usize,
    /// Total objects across all records.
    pub objects: usize,
}

impl Default for ShardedImageDatabase {
    fn default() -> Self {
        ShardedImageDatabase::with_shards(1)
    }
}

impl ShardedImageDatabase {
    /// A single-shard database (drop-in for the unsharded deployment).
    #[must_use]
    pub fn new() -> Self {
        ShardedImageDatabase::default()
    }

    /// A database split over `shards` partitions (0 is clamped to 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedImageDatabase {
            inner: Arc::new(Inner {
                shards: (0..shards)
                    .map(|_| RwLock::new(ImageDatabase::new()))
                    .collect(),
                next_id: AtomicUsize::new(0),
                edits: (0..shards).map(|_| AtomicU64::new(0)).collect(),
                instance: fresh_snapshot_id(),
                planner_skipped: AtomicU64::new(0),
                snapshot_io: parking_lot::Mutex::new(()),
            }),
        }
    }

    /// Re-routes an existing single-shard database into `shards`
    /// partitions, preserving every record's global id.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] when the source holds duplicate ids
    /// (impossible for a well-formed [`ImageDatabase`]).
    pub fn from_database(db: ImageDatabase, shards: usize) -> Result<Self, DbError> {
        let sharded = ShardedImageDatabase::with_shards(shards);
        {
            let inner = &sharded.inner;
            for record in db.iter() {
                let (shard, local) = inner.route(record.id);
                inner.shards[shard].write().insert_symbolic_with_id(
                    local,
                    &record.name,
                    record.symbolic.clone(),
                )?;
            }
            inner.next_id.store(db.next_id(), Ordering::SeqCst);
        }
        Ok(sharded)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Live records per shard, in shard order (for `/stats` and
    /// imbalance monitoring).
    #[must_use]
    pub fn shard_lens(&self) -> Vec<usize> {
        self.inner.shards.iter().map(|s| s.read().len()).collect()
    }

    /// Total live records across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shard_lens().iter().sum()
    }

    /// Whether no shard holds a record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct object classes across all shards (union, not sum).
    #[must_use]
    pub fn class_count(&self) -> usize {
        let mut classes: BTreeSet<ObjectClass> = BTreeSet::new();
        for shard in &self.inner.shards {
            let guard = shard.read();
            classes.extend(guard.class_index().classes().cloned());
        }
        classes.len()
    }

    /// Total objects across all records in all shards.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().object_count())
            .sum()
    }

    /// All aggregate statistics observed under **one** simultaneous
    /// read lock over every shard, so the combination is never torn by
    /// a concurrent write (unlike calling [`shard_lens`](Self::shard_lens),
    /// [`class_count`](Self::class_count) and
    /// [`object_count`](Self::object_count) back to back).
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        let guards: Vec<_> = self.inner.shards.iter().map(RwLock::read).collect();
        let mut classes: BTreeSet<ObjectClass> = BTreeSet::new();
        for guard in &guards {
            classes.extend(guard.class_index().classes().cloned());
        }
        ShardStats {
            shard_records: guards.iter().map(|g| g.len()).collect(),
            classes: classes.len(),
            objects: guards.iter().map(|g| g.object_count()).sum(),
        }
    }

    /// Indexes a scene. The Algorithm-1 conversion runs **outside** any
    /// lock; only the owning shard is locked, briefly, for the actual
    /// insert.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_scene(&self, name: &str, scene: &Scene) -> Result<RecordId, DbError> {
        self.insert_symbolic(name, SymbolicImage::from_scene(scene))
    }

    /// Stores a pre-converted symbolic picture in the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_symbolic(
        &self,
        name: &str,
        symbolic: SymbolicImage,
    ) -> Result<RecordId, DbError> {
        // An id is allocated before the shard lock is taken, so a
        // concurrent restore can swap in a corpus that already occupies
        // the allocated slot. Occupied slots are skipped with a fresh
        // id: the restore healed the counter above every restored slot
        // (see `restore_from`), so a retry finds a free one. The bound
        // only guards against a pathological stream of racing restores.
        for _ in 0..64 {
            let id = RecordId(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
            let (shard, local) = self.inner.route(id);
            let mut guard = self.inner.shards[shard].write();
            if guard.get(local).is_some() {
                continue;
            }
            guard.insert_symbolic_with_id(local, name, symbolic)?;
            // Bumped before the write lock drops, so a snapshot reading
            // counters under read locks always pairs state with counter.
            self.inner.edits[shard].fetch_add(1, Ordering::SeqCst);
            return Ok(id);
        }
        Err(DbError::Persist {
            reason: "insert kept colliding with concurrently restored records".into(),
        })
    }

    /// Removes a record from its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] (with the global id) for dead
    /// or unassigned ids.
    pub fn remove(&self, id: RecordId) -> Result<(), DbError> {
        let (shard, local) = self.inner.route(id);
        let mut guard = self.inner.shards[shard].write();
        let removed = guard
            .remove(local)
            .map(|_| ())
            .map_err(|e| self.inner.globalise_error(e, id));
        if removed.is_ok() {
            self.inner.edits[shard].fetch_add(1, Ordering::SeqCst);
        }
        removed
    }

    /// Looks a record up, returning a clone with its **global** id.
    #[must_use]
    pub fn get(&self, id: RecordId) -> Option<ImageRecord> {
        let (shard, local) = self.inner.route(id);
        let record = self.inner.shards[shard].read().get(local).cloned();
        record.map(|mut r| {
            r.id = id;
            r
        })
    }

    /// Incremental §3.2 object insertion (locks only the owning shard).
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn add_object(&self, id: RecordId, class: &ObjectClass, mbr: Rect) -> Result<(), DbError> {
        let (shard, local) = self.inner.route(id);
        let mut guard = self.inner.shards[shard].write();
        let edited = guard
            .add_object(local, class, mbr)
            .map_err(|e| self.inner.globalise_error(e, id));
        if edited.is_ok() {
            self.inner.edits[shard].fetch_add(1, Ordering::SeqCst);
        }
        edited
    }

    /// Incremental §3.2 object removal (locks only the owning shard).
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn remove_object(
        &self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        let (shard, local) = self.inner.route(id);
        let mut guard = self.inner.shards[shard].write();
        let edited = guard
            .remove_object(local, class, mbr)
            .map_err(|e| self.inner.globalise_error(e, id));
        if edited.is_ok() {
            self.inner.edits[shard].fetch_add(1, Ordering::SeqCst);
        }
        edited
    }

    /// Scatter-gather ranked search: every shard scores its own
    /// candidates concurrently (scoped threads, one per shard, plus the
    /// per-shard [`Parallelism`](crate::Parallelism) policy within each),
    /// then the per-shard ranked lists are merged with a top-k heap.
    ///
    /// When the query's options use exact inverted-index candidates, the
    /// scatter *planner* skips shards whose class postings provably
    /// cannot contribute a candidate (empty posting intersection) —
    /// counted in [`planner_skipped`](Self::planner_skipped).
    ///
    /// Ranking — ids, scores, and tie-breaks — is bit-identical to a
    /// single-shard [`ImageDatabase::search`] over the same records.
    ///
    /// With [`two_stage`](crate::QueryOptions::two_stage) set, the
    /// shards share a [`ScoreThreshold`](crate::ScoreThreshold): each
    /// shard publishes its k-th exact score as it scans, so a shard
    /// whose remaining bounds fall below another shard's k-th score
    /// stops scoring early — without changing the merged top-k.
    #[must_use]
    pub fn search(&self, query: &BeString2D, options: &QueryOptions) -> Vec<SearchHit> {
        let n = self.inner.shards.len();
        if n == 1 {
            // Local ids == global ids: no remap, no merge, no threads.
            return self.inner.shards[0].read().search(query, options);
        }
        let query_classes: Vec<ObjectClass> = query.class_counts().into_keys().collect();
        // A shared score floor only helps (and is only valid) when
        // two-stage pruning is on and a top-k bounds the result.
        let threshold = (options.two_stage.is_some() && options.top_k.is_some())
            .then(crate::ScoreThreshold::new);
        let per_shard = scatter_scan(
            n,
            // next_id is a cheap upper bound on the total record count.
            self.inner.next_id.load(Ordering::Relaxed),
            |shard| {
                let guard = self.inner.shards[shard].read();
                if shard_cannot_contribute(&guard, &query_classes, options) {
                    self.inner.planner_skipped.fetch_add(1, Ordering::Relaxed);
                    return Vec::new();
                }
                let (mut hits, _stats) = guard.search_bounded(query, options, threshold.as_ref());
                // Local slot l in shard s is global id l·N + s; the map
                // is monotonic, so each list stays sorted.
                for hit in &mut hits {
                    hit.id = RecordId(hit.id.index() * n + shard);
                }
                hits
            },
        );
        merge_top_k(per_shard, options.top_k)
    }

    /// Scatter-gather search with a scene query (converted once, outside
    /// all locks).
    #[must_use]
    pub fn search_scene(&self, query: &Scene, options: &QueryOptions) -> Vec<SearchHit> {
        self.search(&be2d_core::convert_scene(query), options)
    }

    /// Scatter-gather search with textual BE-strings (parsed once).
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the query strings.
    pub fn search_text(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        let query = BeString2D::parse(u, v).map_err(DbError::from)?;
        Ok(self.search(&query, options))
    }

    /// Cumulative count of shards the scatter planner skipped because
    /// their class postings could not contribute a candidate.
    #[must_use]
    pub fn planner_skipped(&self) -> u64 {
        self.inner.planner_skipped.load(Ordering::Relaxed)
    }

    /// Posting-list sizes per shard for the given classes
    /// (`result[shard][i]` is the posting length of `classes[i]` in that
    /// shard) — the raw signal the scatter planner prunes on.
    #[must_use]
    pub fn class_posting_sizes(&self, classes: &[ObjectClass]) -> Vec<Vec<usize>> {
        self.inner
            .shards
            .iter()
            .map(|shard| {
                let guard = shard.read();
                classes
                    .iter()
                    .map(|c| guard.class_index().postings_len(c))
                    .collect()
            })
            .collect()
    }

    /// Clones a consistent point-in-time copy of every shard.
    ///
    /// Read locks are taken on **all** shards before the first clone (in
    /// shard order — writers hold at most one lock, so this cannot
    /// deadlock), so the copies observe one global state.
    #[must_use]
    pub fn snapshot_shards(&self) -> (Vec<ImageDatabase>, usize) {
        let guards: Vec<_> = self.inner.shards.iter().map(RwLock::read).collect();
        let next_id = self.inner.next_id.load(Ordering::SeqCst);
        (guards.iter().map(|g| (**g).clone()).collect(), next_id)
    }

    /// Saves a consistent snapshot: one manifest at `path` plus one
    /// `<path>.g<snapshot-id>.shardK` file per shard, every file written
    /// crash-safely (temp + `sync_all` + rename, like
    /// [`ImageDatabase::save`]). Shard file names embed the snapshot
    /// generation, so a failed or crashed save never disturbs the
    /// previous generation's files — the old manifest keeps pointing at
    /// a complete, restorable snapshot. The manifest is written last and
    /// carries the generation every shard file must echo, so a mixed
    /// state can never restore silently. After a successful save, shard
    /// files of superseded generations are cleaned up best-effort.
    ///
    /// Saves are **incremental**: the manifest records each shard's edit
    /// counter, and a shard whose counter is unchanged since the
    /// previous snapshot by this same database instance is *not*
    /// rewritten — the new manifest re-references the previous
    /// generation's file, so snapshot cost is proportional to write
    /// traffic instead of corpus size.
    ///
    /// Locks are held only while cloning; serialisation and I/O happen
    /// outside them.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from serialisation or file I/O.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, DbError> {
        // One snapshot/restore at a time per database: concurrent saves
        // to the same path must not garbage-collect each other's shard
        // files (see `cleanup_stale_generations`).
        let _io = self.inner.snapshot_io.lock();
        // Parsed before any shard lock, so deciding what to skip costs
        // no lock time.
        let previous = PreviousSnapshot::load(path, self.inner.instance, self.inner.shards.len());
        let payload = {
            let guards: Vec<_> = self.inner.shards.iter().map(RwLock::read).collect();
            let edits: Vec<u64> = self
                .inner
                .edits
                .iter()
                .map(|e| e.load(Ordering::SeqCst))
                .collect();
            // Only shards dirtied since the previous snapshot are
            // cloned at all: snapshot cost is proportional to write
            // traffic, not corpus size.
            let shards: Vec<Option<ImageDatabase>> = guards
                .iter()
                .enumerate()
                .map(|(shard, guard)| {
                    (!previous.reusable(path, shard, edits[shard])).then(|| (**guard).clone())
                })
                .collect();
            SnapshotPayload {
                records: guards.iter().map(|g| g.len()).sum(),
                shards,
                next_id: self.inner.next_id.load(Ordering::SeqCst),
                edits,
                writer: self.inner.instance,
                epoch: RoutingEpoch::steady(self.inner.shards.len()),
                log_heads: vec![0; self.inner.shards.len()],
                wal_seq: 0,
            }
        };
        save_snapshot_at(path, payload, &previous)
    }

    /// Restores the database from `path`, replacing all current
    /// contents.
    ///
    /// Accepts either a sharded manifest written by
    /// [`save_snapshot`](Self::save_snapshot) or a plain
    /// [`ImageDatabase::save`] file (backwards compatibility). When the
    /// snapshot's shard count differs from this database's, every record
    /// is **re-routed** to its new owning shard by global id; ids are
    /// preserved either way. Shard files are validated against the
    /// manifest (snapshot id, shard index, shard count) before anything
    /// is replaced.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] for malformed or inconsistent
    /// snapshot files and propagates I/O errors. On error the in-memory
    /// database is untouched.
    pub fn restore_from(&self, path: &Path) -> Result<usize, DbError> {
        // Excludes concurrent saves, whose generation cleanup could
        // otherwise delete the shard files this restore is mid-reading.
        let _io = self.inner.snapshot_io.lock();
        let saved = load_snapshot_at(path)?;
        let next_id = saved.next_id;
        let n = self.inner.shards.len();

        // Build the complete new topology outside the locks.
        let rebuilt = reroute_shards(saved, n)?;
        let records = rebuilt.iter().map(ImageDatabase::len).sum();
        let required = heal_next_id(&rebuilt, next_id);

        // Swap everything in under all write locks (taken in shard
        // order) so readers never observe a half-restored state.
        let mut guards: Vec<_> = self.inner.shards.iter().map(RwLock::write).collect();
        for (shard, (guard, db)) in guards.iter_mut().zip(rebuilt).enumerate() {
            **guard = db;
            // A restore rewrites the shard's contents, so the next save
            // must not reuse pre-restore generation files.
            self.inner.edits[shard].fetch_add(1, Ordering::SeqCst);
        }
        // `fetch_max`, never `store`: an insert racing this restore may
        // have allocated a high id before we took the write locks. If
        // its shard insert lands after the swap on a free slot, that
        // insert linearises *after* the restore and its record
        // legitimately survives — its id must never be re-issued, so the
        // counter cannot move backwards past it. If its slot is occupied
        // by a restored record instead, `insert_symbolic` skips to a
        // fresh id (see the retry loop there).
        self.inner.next_id.fetch_max(required, Ordering::SeqCst);
        Ok(records)
    }

    /// Runs a closure with shared read access to one shard — for
    /// shard-local multi-call read sequences (tests, diagnostics).
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shard_count()`.
    pub fn with_shard_read<R>(&self, shard: usize, f: impl FnOnce(&ImageDatabase) -> R) -> R {
        f(&self.inner.shards[shard].read())
    }
}

impl Inner {
    /// Global id → (owning shard, local id inside it).
    fn route(&self, id: RecordId) -> (usize, RecordId) {
        let n = self.shards.len();
        (id.index() % n, RecordId(id.index() / n))
    }

    /// Rewrites shard-local [`DbError::UnknownRecord`] ids back to the
    /// global id the caller used.
    fn globalise_error(&self, e: DbError, global: RecordId) -> DbError {
        match e {
            DbError::UnknownRecord { .. } => DbError::UnknownRecord { id: global.index() },
            other => other,
        }
    }
}

// ---------------------------------------------------------------------------
// Top-k heap merge
// ---------------------------------------------------------------------------

/// One head-of-list entry in the merge heap; ordered like the global
/// ranking (higher score wins, ties to the smaller id).
struct Head {
    hit: SearchHit,
    list: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: greatest = best (score desc, id asc).
        self.hit
            .score
            .total_cmp(&other.hit.score)
            .then_with(|| other.hit.id.cmp(&self.hit.id))
    }
}

/// K-way merges per-shard ranked lists (each already sorted by score
/// desc, id asc) into one global ranking, stopping after `top_k` hits.
/// Shared with the replicated database
/// ([`ReplicatedImageDatabase`](crate::ReplicatedImageDatabase)).
pub(crate) fn merge_top_k(lists: Vec<Vec<SearchHit>>, top_k: Option<usize>) -> Vec<SearchHit> {
    use std::collections::BinaryHeap;

    let cap = top_k.unwrap_or(usize::MAX);
    let mut cursors: Vec<std::vec::IntoIter<SearchHit>> =
        lists.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Head> = BinaryHeap::with_capacity(cursors.len());
    for (list, cursor) in cursors.iter_mut().enumerate() {
        if let Some(hit) = cursor.next() {
            heap.push(Head { hit, list });
        }
    }
    let mut out = Vec::new();
    while out.len() < cap {
        let Some(Head { hit, list }) = heap.pop() else {
            break;
        };
        out.push(hit);
        if let Some(next) = cursors[list].next() {
            heap.push(Head { hit: next, list });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Scatter dispatch
// ---------------------------------------------------------------------------

/// Runs one scan per shard and collects the per-shard ranked lists —
/// the shared scatter dispatch of the sharded and replicated
/// databases. Scatter threads only pay off when there is real scoring
/// work to split: on a single-core host, or below `SCATTER_MIN_RECORDS`
/// total records (the caller passes a cheap upper bound), per-query
/// thread spawns would dominate the microsecond-scale scans, so the
/// shards are scanned sequentially instead (results are identical
/// either way).
pub(crate) fn scatter_scan<T, F>(shards: usize, approx_records: usize, scan: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Copy + Send + Sync,
{
    let order: Vec<usize> = (0..shards).collect();
    scatter_scan_list(&order, approx_records, scan)
}

/// [`scatter_scan`] over an explicit shard list — the planner's ordered
/// scatter dispatches the post-first-wave remainder through this.
/// Results come back in `shards` order.
pub(crate) fn scatter_scan_list<T, F>(shards: &[usize], approx_records: usize, scan: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Copy + Send + Sync,
{
    const SCATTER_MIN_RECORDS: usize = 64;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores == 1 || approx_records < SCATTER_MIN_RECORDS {
        shards.iter().map(|&shard| scan(shard)).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|&shard| scope.spawn(move || scan(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard search panicked"))
                .collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Scatter planner
// ---------------------------------------------------------------------------

/// Whether one shard provably cannot contribute a candidate to the
/// query — the cross-shard planning primitive both the sharded and the
/// replicated database prune scatter fan-out with.
///
/// The pruning is **exact only** for inverted-index candidates
/// ([`CandidateSource::ClassIndex`]): the 64-bit signature used by the
/// scan path can admit extra candidates through hash collisions, so a
/// scan-mode shard is never skipped (results must stay bit-identical).
pub(crate) fn shard_cannot_contribute(
    db: &ImageDatabase,
    query_classes: &[ObjectClass],
    options: &QueryOptions,
) -> bool {
    if options.candidates != CandidateSource::ClassIndex || query_classes.is_empty() {
        return false;
    }
    let index = db.class_index();
    match options.prefilter {
        // No prefilter means a full scan regardless of postings.
        PrefilterMode::None => false,
        // The candidate set is the posting intersection: one absent
        // class empties it for this shard.
        PrefilterMode::AllClasses => query_classes.iter().any(|c| index.postings_len(c) == 0),
        // The candidate set is the posting union: every class must be
        // absent for the shard to contribute nothing.
        PrefilterMode::AnyClass => query_classes.iter().all(|c| index.postings_len(c) == 0),
    }
}

// ---------------------------------------------------------------------------
// Snapshot format
// ---------------------------------------------------------------------------

const MANIFEST_FORMAT: &str = "be2d-shard-manifest";
const SHARD_FORMAT: &str = "be2d-shard";

/// Everything a sharded snapshot writes: a consistent clone of every
/// *dirtied* shard plus the id counter and per-shard edit counters at
/// clone time. Shared by the sharded and the replicated database.
pub(crate) struct SnapshotPayload {
    /// Consistent point-in-time clone per shard; `None` means the shard
    /// is untouched since the previous snapshot (the caller checked
    /// [`PreviousSnapshot::reusable`]) and was deliberately **not**
    /// cloned — its previous generation file is re-referenced instead,
    /// keeping snapshot cost proportional to write traffic.
    pub shards: Vec<Option<ImageDatabase>>,
    /// Total live records across all shards at clone time.
    pub records: usize,
    /// The global id counter at clone time.
    pub next_id: usize,
    /// Per-shard edit counters at clone time (incremental-save key).
    pub edits: Vec<u64>,
    /// The owning database instance's stable id.
    pub writer: u64,
    /// The routing epoch at clone time. Steady for the sharded
    /// database; a replicated database mid-reshard records the
    /// in-flight migration so the snapshot restores exactly.
    pub epoch: RoutingEpoch,
    /// Per-shard op-log head sequences at clone time (all zero for the
    /// sharded database, which has no op log).
    pub log_heads: Vec<u64>,
    /// The global sequence watermark: every op at or below it is
    /// contained in this snapshot. WAL recovery replays only above it.
    pub wal_seq: u64,
}

/// A snapshot loaded back from disk: the per-shard databases in their
/// saved physical layout plus everything needed to re-route them.
pub(crate) struct LoadedSnapshot {
    /// One database per saved physical shard.
    pub shards: Vec<ImageDatabase>,
    /// The saved global id counter.
    pub next_id: usize,
    /// The routing epoch the shards were saved under.
    pub epoch: RoutingEpoch,
}

/// The manifest currently at a snapshot path, pre-validated for
/// incremental reuse. Loaded *before* any shard lock is taken, so the
/// reuse decision (and the skipped clones it buys) costs no lock time.
pub(crate) struct PreviousSnapshot {
    manifest: Option<ShardManifest>,
}

impl PreviousSnapshot {
    /// A previous snapshot that reuses nothing (every shard rewritten).
    pub(crate) fn none() -> PreviousSnapshot {
        PreviousSnapshot { manifest: None }
    }

    /// Reads and validates the manifest at `path`. Only a **steady**
    /// manifest written by this very database instance (`writer`) over
    /// the same topology is trusted — edit counters from another
    /// process (or another instance in this process) are meaningless
    /// here, and a mid-migration manifest's shard files never line up
    /// with a steady topology.
    pub(crate) fn load(path: &Path, writer: u64, shard_count: usize) -> PreviousSnapshot {
        let manifest = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| parse_manifest(&text))
            .filter(|m| {
                m.format == MANIFEST_FORMAT
                    && m.writer == writer
                    && m.writer != 0
                    && m.shards == shard_count
                    && m.old_shards == shard_count
                    && m.new_shards == shard_count
                    && m.files.len() == shard_count
                    && m.file_snapshots.len() == shard_count
                    && m.edits.len() == shard_count
                    && m.log_heads.len() == shard_count
            });
        PreviousSnapshot { manifest }
    }

    /// Whether shard `shard` need not be cloned or rewritten: its edit
    /// counter still equals the previous snapshot's and the previous
    /// generation file is still on disk.
    pub(crate) fn reusable(&self, path: &Path, shard: usize, edits: u64) -> bool {
        self.manifest
            .as_ref()
            .is_some_and(|m| m.edits[shard] == edits && sibling(path, &m.files[shard]).is_file())
    }

    /// The previous generation reference (file name, generation id) for
    /// one shard.
    fn reference(&self, shard: usize) -> Option<(String, u64)> {
        self.manifest
            .as_ref()
            .map(|m| (m.files[shard].clone(), m.file_snapshots[shard]))
    }
}

/// The manifest written at the snapshot path proper (version 4).
///
/// `shards` counts **physical** shard files; `old_shards` /
/// `new_shards` / `boundary` persist the routing epoch, so a snapshot
/// taken during an online reshard records exactly which layout owns
/// each id. Steady snapshots have `old_shards == new_shards == shards`.
/// `log_heads` / `wal_seq` persist the op-log positions, anchoring
/// write-ahead-log recovery (see `oplog.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardManifest {
    format: String,
    version: u32,
    /// The generation this save created (fresh shard files use it).
    snapshot_id: u64,
    /// Stable id of the database instance that wrote the manifest; edit
    /// counters are only comparable within one instance.
    writer: u64,
    shards: usize,
    next_id: usize,
    records: usize,
    /// Plain file names next to the manifest (no directories).
    files: Vec<String>,
    /// The generation each file in `files` belongs to — files of
    /// shards untouched since the previous snapshot are re-referenced
    /// from their old generation instead of rewritten.
    file_snapshots: Vec<u64>,
    /// Per-shard edit counters at snapshot time.
    edits: Vec<u64>,
    /// Routing epoch: the layout records migrate from.
    old_shards: usize,
    /// Routing epoch: the layout records migrate to.
    new_shards: usize,
    /// Routing epoch: the migration watermark (see
    /// [`RoutingEpoch`](crate::epoch::RoutingEpoch)).
    boundary: usize,
    /// Per-shard op-log head sequences at snapshot time (all zero when
    /// the writer has no op log).
    log_heads: Vec<u64>,
    /// The global sequence watermark this snapshot contains; WAL
    /// recovery replays only records above it.
    wal_seq: u64,
}

impl ShardManifest {
    /// The persisted routing epoch.
    fn epoch(&self) -> RoutingEpoch {
        RoutingEpoch {
            old_n: self.old_shards,
            new_n: self.new_shards,
            boundary: self.boundary,
        }
    }
}

/// The version-3 manifest (routing epoch, no op-log positions), still
/// accepted on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardManifestV3 {
    format: String,
    version: u32,
    snapshot_id: u64,
    writer: u64,
    shards: usize,
    next_id: usize,
    records: usize,
    files: Vec<String>,
    file_snapshots: Vec<u64>,
    edits: Vec<u64>,
    old_shards: usize,
    new_shards: usize,
    boundary: usize,
}

impl ShardManifestV3 {
    /// Lifts a v3 manifest into the v4 shape: pre-op-log snapshots
    /// carry no replayable positions, so recovery starts from scratch.
    fn upgrade(self) -> ShardManifest {
        ShardManifest {
            format: self.format,
            version: self.version,
            snapshot_id: self.snapshot_id,
            writer: self.writer,
            shards: self.shards,
            next_id: self.next_id,
            records: self.records,
            file_snapshots: self.file_snapshots,
            edits: self.edits,
            old_shards: self.old_shards,
            new_shards: self.new_shards,
            boundary: self.boundary,
            log_heads: vec![0; self.files.len()],
            wal_seq: 0,
            files: self.files,
        }
    }
}

/// The version-2 manifest (incremental saves, no routing epoch), still
/// accepted on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardManifestV2 {
    format: String,
    version: u32,
    snapshot_id: u64,
    writer: u64,
    shards: usize,
    next_id: usize,
    records: usize,
    files: Vec<String>,
    file_snapshots: Vec<u64>,
    edits: Vec<u64>,
}

impl ShardManifestV2 {
    /// Lifts a v2 manifest into the v3 shape: pre-epoch snapshots were
    /// always steady.
    fn upgrade(self) -> ShardManifestV3 {
        ShardManifestV3 {
            format: self.format,
            version: self.version,
            snapshot_id: self.snapshot_id,
            writer: self.writer,
            shards: self.shards,
            next_id: self.next_id,
            records: self.records,
            file_snapshots: self.file_snapshots,
            edits: self.edits,
            old_shards: self.shards,
            new_shards: self.shards,
            boundary: 0,
            files: self.files,
        }
    }
}

/// The version-1 manifest (every shard file rewritten per save), still
/// accepted on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardManifestV1 {
    format: String,
    version: u32,
    snapshot_id: u64,
    shards: usize,
    next_id: usize,
    records: usize,
    files: Vec<String>,
}

impl ShardManifestV1 {
    /// Lifts a v1 manifest into the v2 shape: every file belongs to the
    /// manifest's own generation, and the unknown writer/edits make any
    /// incremental-save comparison fail (full rewrite next save).
    fn upgrade(self) -> ShardManifestV2 {
        let files = self.files;
        ShardManifestV2 {
            format: self.format,
            version: self.version,
            snapshot_id: self.snapshot_id,
            writer: 0,
            shards: self.shards,
            next_id: self.next_id,
            records: self.records,
            file_snapshots: vec![self.snapshot_id; files.len()],
            edits: vec![0; files.len()],
            files,
        }
    }
}

/// Parses a manifest, accepting the current, the v3, the v2, and the
/// v1 layouts. Tried newest first: the shim deserialiser ignores
/// unknown fields, so a newer document would also "parse" as an older
/// version (dropping bookkeeping), while an older document fails the
/// newer parse on its missing fields.
fn parse_manifest(text: &str) -> Option<ShardManifest> {
    serde_json::from_str::<ShardManifest>(text)
        .ok()
        .or_else(|| {
            serde_json::from_str::<ShardManifestV3>(text)
                .ok()
                .map(ShardManifestV3::upgrade)
        })
        .or_else(|| {
            serde_json::from_str::<ShardManifestV2>(text)
                .ok()
                .map(|v2| v2.upgrade().upgrade())
        })
        .or_else(|| {
            serde_json::from_str::<ShardManifestV1>(text)
                .ok()
                .map(|v1| v1.upgrade().upgrade().upgrade())
        })
}

/// The sequence watermark recorded in the manifest at `path` (0 when
/// the file is missing or not a parseable manifest — recovery then
/// replays the whole WAL from scratch).
pub(crate) fn wal_floor_of(path: &Path) -> u64 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| parse_manifest(&text))
        .map_or(0, |m| m.wal_seq)
}

/// One per-shard snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardFile {
    format: String,
    snapshot_id: u64,
    shard: usize,
    of: usize,
    db: ImageDatabase,
}

/// Writes a sharded snapshot (manifest + per-shard generation files) at
/// `path`. Shards the caller marked reusable (`None` clones) are not
/// rewritten: the new manifest re-references their previous generation
/// files from `previous`. Returns the number of live records saved.
///
/// The caller must already hold its snapshot-I/O lock, and `previous`
/// must be the [`PreviousSnapshot`] its reuse decisions were made
/// against.
pub(crate) fn save_snapshot_at(
    path: &Path,
    payload: SnapshotPayload,
    previous: &PreviousSnapshot,
) -> Result<usize, DbError> {
    let records = payload.records;
    let snapshot_id = fresh_snapshot_id();
    let manifest_name = file_name_of(path)?;
    let shard_count = payload.shards.len();

    let mut files = Vec::with_capacity(shard_count);
    let mut file_snapshots = Vec::with_capacity(shard_count);
    for (shard, db) in payload.shards.into_iter().enumerate() {
        let Some(db) = db else {
            // Untouched since the previous generation: re-reference the
            // existing file instead of rewriting it.
            let Some((name, generation)) = previous.reference(shard) else {
                return Err(DbError::Persist {
                    reason: format!(
                        "shard {shard} was marked reusable but no previous manifest is available"
                    ),
                });
            };
            files.push(name);
            file_snapshots.push(generation);
            continue;
        };
        let name = shard_file_name(&manifest_name, snapshot_id, shard);
        let shard_file = ShardFile {
            format: SHARD_FORMAT.to_owned(),
            snapshot_id,
            shard,
            of: shard_count,
            db,
        };
        let json = serde_json::to_string(&shard_file).map_err(|e| DbError::Persist {
            reason: e.to_string(),
        })?;
        write_atomic(&sibling(path, &name), &json)?;
        files.push(name);
        file_snapshots.push(snapshot_id);
    }
    let manifest = ShardManifest {
        format: MANIFEST_FORMAT.to_owned(),
        version: 4,
        snapshot_id,
        writer: payload.writer,
        shards: shard_count,
        next_id: payload.next_id,
        records,
        files,
        file_snapshots,
        edits: payload.edits,
        old_shards: payload.epoch.old_n,
        new_shards: payload.epoch.new_n,
        boundary: payload.epoch.boundary,
        log_heads: payload.log_heads,
        wal_seq: payload.wal_seq,
    };
    let json = serde_json::to_string(&manifest).map_err(|e| DbError::Persist {
        reason: e.to_string(),
    })?;
    write_atomic(path, &json)?;
    cleanup_stale_generations(path, &manifest_name);
    Ok(records)
}

/// Loads a snapshot from `path`: either a sharded manifest (v1–v4) or
/// a plain [`ImageDatabase::save`] file, returning the per-shard
/// databases in their saved physical layout plus id counter and epoch.
///
/// The caller must already hold its snapshot-I/O lock.
pub(crate) fn load_snapshot_at(path: &Path) -> Result<LoadedSnapshot, DbError> {
    let text = std::fs::read_to_string(path)?;
    if let Some(manifest) = parse_manifest(&text) {
        let shards = load_manifest_shards(path, &manifest)?;
        Ok(LoadedSnapshot {
            shards,
            next_id: manifest.next_id,
            epoch: manifest.epoch(),
        })
    } else {
        // Plain single-shard snapshot: treat it as a 1-shard save.
        let db = ImageDatabase::from_json(&text)?;
        let next_id = db.next_id();
        Ok(LoadedSnapshot {
            shards: vec![db],
            next_id,
            epoch: RoutingEpoch::steady(1),
        })
    }
}

/// Re-routes a loaded snapshot into `n` steady shards, preserving every
/// record's global id. A steady same-count restore is a move, not a
/// replay; anything else — topology change or a snapshot taken
/// mid-reshard — is replayed record by record through the saved
/// [`RoutingEpoch`].
pub(crate) fn reroute_shards(
    saved: LoadedSnapshot,
    n: usize,
) -> Result<Vec<ImageDatabase>, DbError> {
    let epoch = saved.epoch;
    if epoch.is_steady() && epoch.new_n == n && saved.shards.len() == n {
        return Ok(saved.shards);
    }
    let mut rebuilt: Vec<ImageDatabase> = (0..n).map(|_| ImageDatabase::new()).collect();
    for (old_shard, db) in saved.shards.into_iter().enumerate() {
        for record in db.iter() {
            let global = epoch
                .global_of(old_shard, record.id.index())
                .ok_or_else(|| DbError::Persist {
                    reason: format!(
                        "snapshot shard {old_shard} slot {} resolves to no global id under \
                             epoch {} -> {} @ {} (corrupt manifest)",
                        record.id.index(),
                        epoch.old_n,
                        epoch.new_n,
                        epoch.boundary
                    ),
                })?;
            let (shard, local) = (global % n, RecordId(global / n));
            rebuilt[shard].insert_symbolic_with_id(local, &record.name, record.symbolic.clone())?;
        }
    }
    Ok(rebuilt)
}

/// The id-counter value a restore must raise the allocator to: strictly
/// above every slot the rebuilt shards occupy, even when a corrupt
/// manifest understates `next_id` (which would otherwise poison all
/// future inserts with slot-occupied errors).
pub(crate) fn heal_next_id(rebuilt: &[ImageDatabase], manifest_next_id: usize) -> usize {
    let n = rebuilt.len();
    let mut required = manifest_next_id;
    for (shard, db) in rebuilt.iter().enumerate() {
        if db.next_id() > 0 {
            required = required.max((db.next_id() - 1) * n + shard + 1);
        }
    }
    required
}

/// A practically unique snapshot id: wall-clock nanos mixed with a
/// process-local counter and the pid, so two snapshots — even in the
/// same nanosecond or from two processes — get distinct generations.
/// Also used as the per-instance writer id of each database.
pub(crate) fn fresh_snapshot_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
        });
    nanos ^ SEQ.fetch_add(1, Ordering::Relaxed).rotate_left(32) ^ u64::from(std::process::id())
}

fn file_name_of(path: &Path) -> Result<String, DbError> {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| DbError::Persist {
            reason: format!("snapshot path {} has no file name", path.display()),
        })
}

/// `manifest.json` → `manifest.json.g1f3a.shard3`. The generation in
/// the name keeps every snapshot's files disjoint from its
/// predecessors'.
fn shard_file_name(manifest_name: &str, snapshot_id: u64, shard: usize) -> String {
    format!("{manifest_name}.g{snapshot_id:x}.shard{shard}")
}

/// Best-effort removal of shard files from superseded snapshot
/// generations: everything shaped `<manifest>.g*.shard*` that the
/// manifest **currently on disk** does not reference. The manifest is
/// re-read (instead of trusting the one just written) so a concurrent
/// save that won the manifest race does not get its files deleted.
fn cleanup_stale_generations(manifest_path: &Path, manifest_name: &str) {
    let Some(dir) = manifest_path.parent().filter(|d| !d.as_os_str().is_empty()) else {
        return;
    };
    let referenced: Vec<String> = std::fs::read_to_string(manifest_path)
        .ok()
        .and_then(|text| parse_manifest(&text))
        .map(|manifest| manifest.files)
        .unwrap_or_default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("{manifest_name}.g");
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(&prefix)
            && name.contains(".shard")
            && !referenced.iter().any(|f| f == &name)
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// A path next to `path` with the given file name.
fn sibling(path: &Path, name: &str) -> PathBuf {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(name),
        _ => PathBuf::from(name),
    }
}

/// Loads and validates every shard file a manifest names.
fn load_manifest_shards(
    manifest_path: &Path,
    manifest: &ShardManifest,
) -> Result<Vec<ImageDatabase>, DbError> {
    let invalid = |reason: String| DbError::Persist { reason };
    if manifest.format != MANIFEST_FORMAT {
        return Err(invalid(format!(
            "unknown manifest format {:?}",
            manifest.format
        )));
    }
    if manifest.shards == 0
        || manifest.files.len() != manifest.shards
        || manifest.file_snapshots.len() != manifest.shards
    {
        return Err(invalid(format!(
            "manifest names {} files for {} shards",
            manifest.files.len(),
            manifest.shards
        )));
    }
    if manifest.old_shards == 0
        || manifest.new_shards == 0
        || manifest.epoch().phys() != manifest.shards
    {
        return Err(invalid(format!(
            "manifest epoch {} -> {} does not fit its {} physical shards",
            manifest.old_shards, manifest.new_shards, manifest.shards
        )));
    }
    let mut out = Vec::with_capacity(manifest.shards);
    for (shard, name) in manifest.files.iter().enumerate() {
        // The manifest may come from an untrusted snapshot directory:
        // never let it name files outside the manifest's own directory.
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(invalid(format!("manifest names an unsafe file {name:?}")));
        }
        let path = sibling(manifest_path, name);
        let text = std::fs::read_to_string(&path)?;
        let file: ShardFile = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("shard file {} is malformed: {e}", path.display())))?;
        if file.format != SHARD_FORMAT {
            return Err(invalid(format!(
                "shard file {} has unknown format {:?}",
                path.display(),
                file.format
            )));
        }
        if file.snapshot_id != manifest.file_snapshots[shard] {
            return Err(invalid(format!(
                "shard file {} belongs to snapshot {} but the manifest expects snapshot {} \
                 (torn or mixed snapshot generations)",
                path.display(),
                file.snapshot_id,
                manifest.file_snapshots[shard]
            )));
        }
        if file.shard != shard || file.of != manifest.shards {
            return Err(invalid(format!(
                "shard file {} claims shard {}/{} but the manifest expects {}/{}",
                path.display(),
                file.shard,
                file.of,
                shard,
                manifest.shards
            )));
        }
        out.push(file.db);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefilterMode;
    use be2d_geometry::SceneBuilder;

    fn scene(x: i64) -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (x, x + 10, 10, 20))
            .object("B", (50, 90, 50, 90))
            .build()
            .unwrap()
    }

    fn filled(shards: usize, n: i64) -> ShardedImageDatabase {
        let db = ShardedImageDatabase::with_shards(shards);
        for i in 0..n {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        db
    }

    #[test]
    fn ids_are_global_and_sequential() {
        let db = filled(4, 10);
        assert_eq!(db.len(), 10);
        assert_eq!(db.shard_count(), 4);
        assert_eq!(db.shard_lens(), vec![3, 3, 2, 2], "round-robin routing");
        for i in 0..10 {
            let record = db.get(RecordId(i)).expect("live record");
            assert_eq!(record.id, RecordId(i));
            assert_eq!(record.name, format!("img{i}"));
        }
        assert!(db.get(RecordId(10)).is_none());
    }

    #[test]
    fn remove_and_edit_route_to_owner() {
        let db = filled(3, 9);
        db.remove(RecordId(4)).unwrap();
        assert!(db.get(RecordId(4)).is_none());
        assert_eq!(db.len(), 8);
        assert!(matches!(
            db.remove(RecordId(4)),
            Err(DbError::UnknownRecord { id: 4 })
        ));
        // ids are never reused after removal
        let next = db.insert_scene("late", &scene(1)).unwrap();
        assert_eq!(next, RecordId(9));

        db.add_object(
            RecordId(5),
            &ObjectClass::new("X"),
            Rect::new(0, 5, 0, 5).unwrap(),
        )
        .unwrap();
        assert_eq!(db.get(RecordId(5)).unwrap().symbolic.object_count(), 3);
        db.remove_object(
            RecordId(5),
            &ObjectClass::new("X"),
            Rect::new(0, 5, 0, 5).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            db.add_object(
                RecordId(77),
                &ObjectClass::new("X"),
                Rect::new(0, 5, 0, 5).unwrap()
            ),
            Err(DbError::UnknownRecord { id: 77 })
        ));
    }

    #[test]
    fn aggregate_counters() {
        let db = filled(4, 12);
        assert_eq!(db.object_count(), 24);
        assert_eq!(db.class_count(), 2, "classes are a union, not a sum");
        assert!(!db.is_empty());
        assert!(ShardedImageDatabase::with_shards(0).shard_count() == 1);
    }

    #[test]
    fn merge_top_k_orders_and_truncates() {
        let q = be2d_core::convert_scene(&scene(0));
        let sim = be2d_core::similarity(&q, &q);
        let hit = move |id: usize, score: f64| SearchHit {
            id: RecordId(id),
            name: format!("r{id}"),
            score,
            transform: be2d_geometry::Transform::Identity,
            similarity: be2d_core::Similarity { score, ..sim },
        };
        let lists = vec![
            vec![hit(0, 0.9), hit(2, 0.5)],
            vec![hit(3, 0.9), hit(1, 0.7)],
            vec![],
        ];
        let merged = merge_top_k(lists.clone(), None);
        let ids: Vec<usize> = merged.iter().map(|h| h.id.index()).collect();
        // 0.9 tie broken by id asc, then 0.7, then 0.5
        assert_eq!(ids, vec![0, 3, 1, 2]);
        let top2 = merge_top_k(lists, Some(2));
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[1].id, RecordId(3));
    }

    #[test]
    fn search_matches_across_shard_counts() {
        let query = scene(7);
        let single = filled(1, 30);
        let expect = single.search_scene(&query, &QueryOptions::default());
        for shards in [2, 4, 8] {
            let db = filled(shards, 30);
            let hits = db.search_scene(&query, &QueryOptions::default());
            assert_eq!(hits.len(), expect.len());
            for (a, b) in expect.iter().zip(&hits) {
                assert_eq!(a.id, b.id, "{shards} shards");
                assert!((a.score - b.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn search_text_and_prefilter_options() {
        let db = filled(4, 20);
        let target = db.get(RecordId(3)).unwrap().symbolic.to_be_string_2d();
        let hits = db
            .search_text(
                &target.x().to_string(),
                &target.y().to_string(),
                &QueryOptions {
                    prefilter: PrefilterMode::AllClasses,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        // Every scene(x) with x >= 1 shares one BE-string (translation
        // preserves boundary order; x = 0 touches the frame edge), so
        // those records tie at 1.0 and the global tie-break (id asc)
        // must hold across shard boundaries.
        assert_eq!(hits[0].id, RecordId(1));
        assert!((hits[0].score - 1.0).abs() < 1e-12);
        assert!(hits.iter().any(|h| h.id == RecordId(3)));
        assert!(hits.windows(2).all(|w| w[0].id < w[1].id), "tie order");
        assert!(db
            .search_text("broken", "E", &QueryOptions::default())
            .is_err());
    }

    #[test]
    fn snapshot_roundtrip_same_topology() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(4, 11);
        db.remove(RecordId(6)).unwrap();
        assert_eq!(db.save_snapshot(&path).unwrap(), 10);
        let manifest: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(manifest.files.len(), 4);
        for name in &manifest.files {
            assert!(dir.join(name).is_file(), "{name}");
        }

        // A second save with no edits in between is fully incremental:
        // every shard file is re-referenced, none rewritten.
        assert_eq!(db.save_snapshot(&path).unwrap(), 10);
        let second: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(second.files, manifest.files, "unchanged shards reused");

        // An edit dirties exactly one shard; the next save rewrites that
        // shard only and cleans its superseded generation file up.
        db.remove(RecordId(8)).unwrap(); // 8 % 4 = shard 0
        assert_eq!(db.save_snapshot(&path).unwrap(), 9);
        let third: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_ne!(third.files[0], manifest.files[0], "dirty shard rewritten");
        assert_eq!(third.files[1..], manifest.files[1..], "clean shards kept");
        assert!(!dir.join(&manifest.files[0]).exists(), "stale file cleaned");
        for name in &third.files {
            assert!(dir.join(name).is_file(), "{name}");
        }

        let back = ShardedImageDatabase::with_shards(4);
        assert_eq!(back.restore_from(&path).unwrap(), 9);
        assert_eq!(back.len(), 9);
        assert_eq!(back.shard_lens(), db.shard_lens());
        assert!(back.get(RecordId(6)).is_none());
        assert!(back.get(RecordId(8)).is_none());
        assert_eq!(back.get(RecordId(7)).unwrap().name, "img7");
        // the id counter survives: the next insert continues the sequence
        assert_eq!(back.insert_scene("next", &scene(2)).unwrap(), RecordId(11));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_reroutes_on_shard_count_change() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_reroute_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(4, 13);
        db.remove(RecordId(2)).unwrap();
        db.save_snapshot(&path).unwrap();

        for target in [1usize, 2, 8] {
            let back = ShardedImageDatabase::with_shards(target);
            assert_eq!(back.restore_from(&path).unwrap(), 12, "{target} shards");
            for i in 0..13usize {
                match (i, back.get(RecordId(i))) {
                    (2, found) => assert!(found.is_none()),
                    (_, Some(record)) => {
                        assert_eq!(record.name, format!("img{i}"));
                        assert_eq!(
                            record.symbolic,
                            db.get(RecordId(i)).unwrap().symbolic,
                            "content survives re-routing"
                        );
                    }
                    (_, None) => panic!("record {i} lost in {target}-shard restore"),
                }
            }
            assert_eq!(back.insert_scene("next", &scene(0)).unwrap(), RecordId(13));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_heals_understated_manifest_next_id() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_nextid_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 9);
        db.save_snapshot(&path).unwrap();
        // Corrupt the manifest: claim the id counter is far below the
        // ids the shard files actually hold.
        let manifest = std::fs::read_to_string(&path).unwrap();
        assert!(manifest.contains("\"next_id\":9"), "{manifest}");
        std::fs::write(&path, manifest.replace("\"next_id\":9", "\"next_id\":1")).unwrap();

        let back = ShardedImageDatabase::with_shards(2);
        assert_eq!(back.restore_from(&path).unwrap(), 9);
        // The counter is healed from the occupied slots: the next insert
        // must not collide with a restored record.
        assert_eq!(back.insert_scene("next", &scene(1)).unwrap(), RecordId(9));
        assert_eq!(back.len(), 10);

        // Restoring into a database whose counter is already higher
        // never moves the counter backwards (ids are never reused).
        let busy = filled(2, 20);
        assert_eq!(busy.restore_from(&path).unwrap(), 9);
        assert_eq!(busy.insert_scene("after", &scene(1)).unwrap(), RecordId(20));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_aggregates_consistently() {
        let db = filled(3, 10);
        let stats = db.stats();
        assert_eq!(stats.shard_records, db.shard_lens());
        assert_eq!(stats.shard_records.iter().sum::<usize>(), 10);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.objects, 20);
    }

    #[test]
    fn restore_accepts_plain_database_files() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_plain_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.json");

        let mut plain = ImageDatabase::new();
        for i in 0..5i64 {
            plain.insert_scene(&format!("img{i}"), &scene(i)).unwrap();
        }
        plain.remove(RecordId(1)).unwrap();
        plain.save(&path).unwrap();

        let db = ShardedImageDatabase::with_shards(3);
        assert_eq!(db.restore_from(&path).unwrap(), 4);
        assert!(db.get(RecordId(1)).is_none());
        assert_eq!(db.get(RecordId(4)).unwrap().name, "img4");
        assert_eq!(db.insert_scene("next", &scene(0)).unwrap(), RecordId(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_torn_snapshots() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 6);
        db.save_snapshot(&path).unwrap();
        let manifest: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // Overwrite shard 1 with a file from a *different* snapshot
        // generation — the mixed state must be rejected.
        let other = filled(2, 3);
        let other_path = dir.join("other.json");
        other.save_snapshot(&other_path).unwrap();
        let other_manifest: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&other_path).unwrap()).unwrap();
        std::fs::copy(
            dir.join(&other_manifest.files[1]),
            dir.join(&manifest.files[1]),
        )
        .unwrap();

        let back = ShardedImageDatabase::with_shards(2);
        let err = back.restore_from(&path).unwrap_err();
        assert!(
            err.to_string().contains("snapshot"),
            "torn snapshot must fail loudly: {err}"
        );
        assert!(back.is_empty(), "failed restore must not mutate");

        // a missing shard file is also loud
        std::fs::remove_file(dir.join(&manifest.files[0])).unwrap();
        assert!(back.restore_from(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_database_preserves_ids() {
        let mut plain = ImageDatabase::new();
        for i in 0..7i64 {
            plain.insert_scene(&format!("img{i}"), &scene(i)).unwrap();
        }
        plain.remove(RecordId(3)).unwrap();
        let query = scene(4);
        let expect = plain.search_scene(&query, &QueryOptions::default());

        let db = ShardedImageDatabase::from_database(plain, 4).unwrap();
        assert_eq!(db.len(), 6);
        assert!(db.get(RecordId(3)).is_none());
        let hits = db.search_scene(&query, &QueryOptions::default());
        assert_eq!(
            expect.iter().map(|h| h.id).collect::<Vec<_>>(),
            hits.iter().map(|h| h.id).collect::<Vec<_>>()
        );
        assert_eq!(db.insert_scene("next", &scene(0)).unwrap(), RecordId(7));
    }

    #[test]
    fn clones_share_state() {
        let db = ShardedImageDatabase::with_shards(2);
        let other = db.clone();
        db.insert_scene("one", &scene(0)).unwrap();
        assert_eq!(other.len(), 1);
        assert_eq!(other.with_shard_read(0, ImageDatabase::len), 1);
    }

    #[test]
    fn planner_skips_shards_without_query_classes() {
        let db = filled(4, 12);
        // Class Q exists only in record 0 → shard 0; the other three
        // shards provably cannot contribute to a Q-only query.
        db.add_object(
            RecordId(0),
            &ObjectClass::new("Q"),
            Rect::new(0, 5, 0, 5).unwrap(),
        )
        .unwrap();
        let query = SceneBuilder::new(100, 100)
            .object("Q", (0, 5, 0, 5))
            .build()
            .unwrap();
        let options = QueryOptions {
            prefilter: PrefilterMode::AllClasses,
            candidates: crate::CandidateSource::ClassIndex,
            top_k: None,
            ..QueryOptions::default()
        };
        assert_eq!(db.planner_skipped(), 0);
        let hits = db.search_scene(&query, &options);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, RecordId(0));
        assert_eq!(db.planner_skipped(), 3, "three Q-free shards skipped");

        // The pruning signal itself is observable per shard.
        let sizes = db.class_posting_sizes(&[ObjectClass::new("Q"), ObjectClass::new("A")]);
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[0][0], 1, "shard 0 holds the only Q posting");
        assert!(sizes[1..].iter().all(|s| s[0] == 0));
        assert!(sizes.iter().all(|s| s[1] > 0), "class A is everywhere");

        // Scan-mode candidates are never pruned (signature collisions
        // could admit extra candidates, so skipping would be unsound).
        let scan = QueryOptions {
            candidates: crate::CandidateSource::Scan,
            ..options
        };
        let _ = db.search_scene(&query, &scan);
        assert_eq!(db.planner_skipped(), 3, "scan mode never skips");
    }

    #[test]
    fn incremental_save_distrusts_foreign_manifests() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_foreign_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 6);
        db.save_snapshot(&path).unwrap();
        let first: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();

        // A *different* database instance with coincidentally equal edit
        // counters must not reuse the other instance's files.
        let other = filled(2, 6);
        other.save_snapshot(&path).unwrap();
        let second: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(
            first.files.iter().zip(&second.files).all(|(a, b)| a != b),
            "foreign manifest reused: {:?} vs {:?}",
            first.files,
            second.files
        );

        // Restoring bumps edit counters, so the next save rewrites the
        // restored shards instead of trusting pre-restore generations.
        other.restore_from(&path).unwrap();
        other.save_snapshot(&path).unwrap();
        let third: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(
            second.files.iter().zip(&third.files).all(|(a, b)| a != b),
            "post-restore save must rewrite"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_accepts_v1_manifests() {
        let dir = std::env::temp_dir().join(format!("be2d_shard_v1_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 5);
        db.save_snapshot(&path).unwrap();
        let m: ShardManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // Rewrite the manifest in the version-1 layout (no writer /
        // file_snapshots / edits fields) — older deployments' snapshots.
        let v1 = ShardManifestV1 {
            format: m.format.clone(),
            version: 1,
            snapshot_id: m.snapshot_id,
            shards: m.shards,
            next_id: m.next_id,
            records: m.records,
            files: m.files.clone(),
        };
        std::fs::write(&path, serde_json::to_string(&v1).unwrap()).unwrap();

        let back = ShardedImageDatabase::with_shards(2);
        assert_eq!(back.restore_from(&path).unwrap(), 5);
        assert_eq!(back.get(RecordId(4)).unwrap().name, "img4");
        assert_eq!(back.insert_scene("next", &scene(1)).unwrap(), RecordId(5));
        std::fs::remove_dir_all(&dir).ok();
    }
}
