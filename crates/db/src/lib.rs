//! # be2d-db — the image database
//!
//! The storage and retrieval layer the paper's §3.2/§4 describe: images
//! are stored as coordinate-annotated 2D BE-strings
//! ([`SymbolicImage`](be2d_core::SymbolicImage)), maintained
//! incrementally, and queried by the modified-LCS similarity with
//! optional rotation/reflection invariance.
//!
//! * [`ImageDatabase`] — insert/remove images, add/drop single objects in
//!   place (§3.2), ranked [`search`](ImageDatabase::search);
//! * [`QueryOptions`] — top-k, score floor, candidate prefiltering by
//!   64-bit class signatures, D4 transform set, parallel scan, and
//!   two-stage retrieval (rank by admissible [`ScoreBound`], exact-score
//!   a frontier, stop early — bit-identical results);
//! * [`SearchHit`] — per-result score, best transform and the full
//!   per-axis similarity breakdown;
//! * [`ShardedImageDatabase`] — N independently locked shards with
//!   scatter-gather search and incremental per-shard snapshots;
//! * [`ReplicatedImageDatabase`] — N shards × R replicas: round-robin
//!   reads, synchronous write fan-out, replica fault injection and
//!   rebuild-then-rejoin recovery;
//! * [`Resharder`] — online shard rebalancing: streams records between
//!   shards in bounded batches while the database keeps serving, with
//!   rankings bit-identical throughout (progress in
//!   [`ReshardProgress`]);
//! * [`EventJournal`] — a bounded, sequence-numbered ring of typed
//!   cluster events ([`EventKind`]): replica fail/heal, reshard
//!   start/finish, WAL checkpoints, SLO burns, advisor
//!   recommendations — polled incrementally by cursor;
//! * JSON persistence ([`ImageDatabase::to_json`] /
//!   [`ImageDatabase::from_json`]).
//!
//! # Example
//!
//! ```
//! use be2d_db::{ImageDatabase, QueryOptions};
//! use be2d_geometry::SceneBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut db = ImageDatabase::new();
//! let a = SceneBuilder::new(100, 100)
//!     .object("A", (10, 40, 10, 40))
//!     .object("B", (50, 90, 50, 90))
//!     .build()?;
//! let b = SceneBuilder::new(100, 100).object("Z", (0, 50, 0, 50)).build()?;
//! db.insert_scene("two-objects", &a)?;
//! db.insert_scene("other", &b)?;
//!
//! let hits = db.search_scene(&a, &QueryOptions::default());
//! assert_eq!(hits[0].name, "two-objects");
//! assert!((hits[0].score - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod epoch;
mod error;
mod events;
mod index;
mod metrics;
mod oplog;
mod query;
mod replica;
mod reshard;
mod shard;
mod signature;
/// Spatial-pattern sketches: textual queries compiled to scenes.
pub mod sketch;

pub use database::{ImageDatabase, ImageRecord, RecordId, ScoreThreshold, SearchStats};
pub use error::DbError;
pub use events::{Event, EventJournal, EventKind, DEFAULT_EVENT_CAPACITY};
pub use index::ClassIndex;
pub use metrics::{DbMetrics, QueryTrace, ShardTrace, SCATTER_POOL_SLOTS};
pub use oplog::{
    OplogStats, ReplicaLag, ReplicationMode, ReplicationStats, ShardReplication, WalConfig,
    WalStats,
};
pub use query::{
    CandidateSource, CandidateStrategy, Parallelism, PrefilterMode, QueryOptions, SearchHit,
    TwoStage,
};
pub use replica::{PlannerMode, ReplicaConfig, ReplicaStats, ReplicatedImageDatabase};
pub use reshard::{ReshardProgress, Resharder};
pub use shard::{ShardStats, ShardedImageDatabase};
pub use signature::{ClassSignature, QuerySketch, ScoreBound, ScoreSketch, SKETCH_BUCKETS};
