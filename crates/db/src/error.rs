//! Error type for the image database.

use be2d_core::BeStringError;
use std::error::Error;
use std::fmt;

/// Errors produced by database operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum DbError {
    /// A record id did not resolve to a live record.
    UnknownRecord {
        /// The raw id value.
        id: usize,
    },
    /// A BE-string operation failed (propagated from `be2d-core`).
    BeString(BeStringError),
    /// Persistence (de)serialisation failed.
    Persist {
        /// Human-readable reason.
        reason: String,
    },
    /// A spatial-pattern sketch failed to parse or compile (see
    /// [`sketch`](crate::sketch)).
    Sketch {
        /// Human-readable reason.
        reason: String,
    },
    /// File I/O failed during save/load.
    Io(std::io::Error),
    /// A replica-health operation was rejected (unknown replica, or it
    /// would leave a shard with no healthy copy).
    Replica {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownRecord { id } => write!(f, "unknown record id {id}"),
            DbError::BeString(e) => write!(f, "BE-string error: {e}"),
            DbError::Persist { reason } => write!(f, "persistence error: {reason}"),
            DbError::Sketch { reason } => write!(f, "sketch error: {reason}"),
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Replica { reason } => write!(f, "replica error: {reason}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::BeString(e) => Some(e),
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BeStringError> for DbError {
    fn from(e: BeStringError) -> Self {
        DbError::BeString(e)
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = DbError::UnknownRecord { id: 3 };
        assert_eq!(e.to_string(), "unknown record id 3");
        assert!(e.source().is_none());

        let e = DbError::from(BeStringError::OutOfExtent {
            coord: 5,
            extent: 3,
        });
        assert!(e.to_string().contains("BE-string"));
        assert!(e.source().is_some());

        let e = DbError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());

        let e = DbError::Persist {
            reason: "bad json".into(),
        };
        assert!(e.to_string().contains("bad json"));
    }
}
