//! Query options and search results.

use be2d_core::{Similarity, SimilarityConfig};
use be2d_geometry::Transform;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::database::RecordId;

/// Candidate prefiltering policy applied before scoring (see
/// [`ClassSignature`](crate::ClassSignature)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PrefilterMode {
    /// Score every record.
    None,
    /// Keep records that (may) share at least one class with the query.
    /// Default: a record sharing no class can only score via free-space
    /// dummies, which is never a useful hit.
    #[default]
    AnyClass,
    /// Keep records whose class set (likely) covers the whole query class
    /// set — for "find images containing all of these icons" queries.
    AllClasses,
}

impl fmt::Display for PrefilterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefilterMode::None => f.write_str("none"),
            PrefilterMode::AnyClass => f.write_str("any-class"),
            PrefilterMode::AllClasses => f.write_str("all-classes"),
        }
    }
}

/// How the candidate set for a search is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CandidateSource {
    /// Scan all records, applying the [`PrefilterMode`] via the per-record
    /// 64-bit class signature (O(records) with a tiny constant). Default.
    #[default]
    Scan,
    /// Generate candidates from the inverted
    /// [`ClassIndex`](crate::ClassIndex) posting lists — exact and
    /// sub-linear when the query classes are selective. Falls back to a
    /// full scan for class-free queries.
    ClassIndex,
}

impl fmt::Display for CandidateSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateSource::Scan => f.write_str("scan"),
            CandidateSource::ClassIndex => f.write_str("class-index"),
        }
    }
}

/// How one shard *executes* its candidate generation — the per-shard
/// decision planner v2 takes from measured selectivity. Every strategy
/// produces the **same candidate set** for the same
/// [`CandidateSource`]/[`PrefilterMode`] pair (that is what keeps
/// rankings bit-identical); they differ only in how the set is walked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CandidateStrategy {
    /// Materialise candidate ids from the inverted-index posting lists
    /// (union or intersection), then fetch each record — sub-linear when
    /// the query classes are selective. Default, and the only strategy
    /// the scan-based [`CandidateSource::Scan`] path can report.
    #[default]
    IndexWalk,
    /// Iterate every record in id order and keep the ones whose exact
    /// posting membership passes the prefilter — cheaper than building
    /// a near-corpus-sized id union when the postings cover most of the
    /// shard. Same exact candidate set as [`IndexWalk`](Self::IndexWalk).
    DenseScan,
}

impl CandidateStrategy {
    /// Stable lower-case label (`"index-walk"` / `"dense-scan"`), used
    /// by traces and the server DTOs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CandidateStrategy::IndexWalk => "index-walk",
            CandidateStrategy::DenseScan => "dense-scan",
        }
    }
}

impl fmt::Display for CandidateStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether candidate scoring runs on multiple threads.
///
/// The scan chunks the candidate set across scoped threads (see
/// [`ImageDatabase::search`](crate::ImageDatabase::search)). Spawning
/// threads is only worth it when there is enough scoring work to
/// amortise it, so the recommended production setting is [`Auto`]:
/// serial for small candidate sets, threaded beyond
/// [`AUTO_THRESHOLD`](Parallelism::AUTO_THRESHOLD) candidates.
///
/// [`Auto`]: Parallelism::Auto
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Single-threaded scoring. Default.
    #[default]
    Off,
    /// Multi-threaded scoring whenever the candidate set is non-trivial
    /// (at least [`MIN_CANDIDATES`](Parallelism::MIN_CANDIDATES)).
    On,
    /// Multi-threaded scoring only when the candidate set reaches
    /// [`AUTO_THRESHOLD`](Parallelism::AUTO_THRESHOLD) — the sweet spot
    /// for servers that see both tiny and huge candidate sets.
    Auto,
}

impl Parallelism {
    /// Below this many candidates the scan never goes multi-threaded:
    /// thread spawning would dominate the scoring work.
    pub const MIN_CANDIDATES: usize = 32;

    /// The candidate count at which [`Auto`](Parallelism::Auto) switches
    /// to the multi-threaded scan.
    pub const AUTO_THRESHOLD: usize = 192;

    /// Decides whether a scan over `candidates` records should use the
    /// multi-threaded path.
    #[must_use]
    pub fn enabled_for(self, candidates: usize) -> bool {
        match self {
            Parallelism::Off => false,
            Parallelism::On => candidates >= Parallelism::MIN_CANDIDATES,
            Parallelism::Auto => candidates >= Parallelism::AUTO_THRESHOLD,
        }
    }
}

impl From<bool> for Parallelism {
    fn from(on: bool) -> Self {
        if on {
            Parallelism::On
        } else {
            Parallelism::Off
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Off => f.write_str("off"),
            Parallelism::On => f.write_str("on"),
            Parallelism::Auto => f.write_str("auto"),
        }
    }
}

/// Configuration of two-stage retrieval: rank candidates by an
/// admissible score bound ([`QuerySketch`](crate::QuerySketch)), run
/// exact §3 scoring in `frontier`-sized batches from the best bound
/// down, and stop once the k-th exact score strictly dominates every
/// remaining bound.
///
/// Because the bound is admissible, the results — ids, scores,
/// tie-breaks — are bit-identical to the exhaustive scan; only the
/// number of exact scoring calls changes. See
/// [`QueryOptions::two_stage`] for a worked example and
/// `docs/ARCHITECTURE.md` for where the stage sits in the query
/// lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TwoStage {
    /// Candidates exactly scored per batch. Smaller frontiers
    /// terminate earlier but synchronise more often; zero is treated
    /// as one.
    pub frontier: usize,
}

impl TwoStage {
    /// Default frontier batch size: large enough to amortise a batch's
    /// bookkeeping, small enough that selective queries stop after one
    /// or two batches.
    pub const DEFAULT_FRONTIER: usize = 64;
}

impl Default for TwoStage {
    fn default() -> Self {
        TwoStage {
            frontier: TwoStage::DEFAULT_FRONTIER,
        }
    }
}

impl fmt::Display for TwoStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontier={}", self.frontier)
    }
}

/// Parameters of one similarity search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Keep at most this many results (`None` = all).
    pub top_k: Option<usize>,
    /// Drop results scoring below this floor.
    pub min_score: f64,
    /// Transforms to try for each record; the best-scoring one wins. Use
    /// [`Transform::ALL`] (or [`Transform::PAPER_SET`]) for
    /// rotation/reflection-invariant retrieval (§4).
    pub transforms: Vec<Transform>,
    /// Similarity evaluation configuration.
    pub config: SimilarityConfig,
    /// Candidate prefiltering policy.
    pub prefilter: PrefilterMode,
    /// How candidates are produced (signature scan vs inverted index).
    pub candidates: CandidateSource,
    /// Scan record chunks on multiple threads (see [`Parallelism`]).
    pub parallel: Parallelism,
    /// Two-stage retrieval: rank candidates by an admissible score
    /// bound and exact-score only a frontier (`None` = score every
    /// candidate). Results are bit-identical either way.
    ///
    /// # Example
    ///
    /// ```
    /// use be2d_db::{ImageDatabase, QueryOptions};
    /// use be2d_geometry::SceneBuilder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut db = ImageDatabase::new();
    /// for i in 0..50i64 {
    ///     let scene = SceneBuilder::new(100, 100)
    ///         .object("A", (i % 7, i % 7 + 20, 0, 30))
    ///         .object("B", (40, 90, i % 11 + 5, i % 11 + 40))
    ///         .build()?;
    ///     db.insert_scene(&format!("img{i}"), &scene)?;
    /// }
    /// let query = SceneBuilder::new(100, 100)
    ///     .object("A", (3, 23, 0, 30))
    ///     .object("B", (40, 90, 10, 45))
    ///     .build()?;
    /// let exhaustive = db.search_scene(&query, &QueryOptions::default());
    /// let two_stage = db.search_scene(&query, &QueryOptions::default().with_two_stage(16));
    /// // The admissible bound makes the rankings bit-identical:
    /// assert_eq!(exhaustive.len(), two_stage.len());
    /// for (a, b) in exhaustive.iter().zip(&two_stage) {
    ///     assert_eq!(a.id, b.id);
    ///     assert_eq!(a.score.to_bits(), b.score.to_bits());
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub two_stage: Option<TwoStage>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            top_k: Some(10),
            min_score: 0.0,
            transforms: vec![Transform::Identity],
            config: SimilarityConfig::default(),
            prefilter: PrefilterMode::default(),
            candidates: CandidateSource::default(),
            parallel: Parallelism::Off,
            two_stage: None,
        }
    }
}

impl QueryOptions {
    /// Preset for rotation/reflection-invariant retrieval over the
    /// paper's transform set.
    #[must_use]
    pub fn transform_invariant() -> Self {
        QueryOptions {
            transforms: Transform::PAPER_SET.to_vec(),
            ..QueryOptions::default()
        }
    }

    /// Returns a copy with a different `top_k`.
    #[must_use]
    pub fn with_top_k(mut self, k: Option<usize>) -> Self {
        self.top_k = k;
        self
    }

    /// Preset for online serving: candidates from the inverted class
    /// index and [`Parallelism::Auto`] scoring, so small queries stay
    /// cheap while large candidate sets use every core.
    #[must_use]
    pub fn serving() -> Self {
        QueryOptions {
            candidates: CandidateSource::ClassIndex,
            parallel: Parallelism::Auto,
            ..QueryOptions::default()
        }
    }

    /// Returns a copy with two-stage retrieval enabled at the given
    /// frontier batch size (see [`TwoStage`]; zero is treated as one).
    #[must_use]
    pub fn with_two_stage(mut self, frontier: usize) -> Self {
        self.two_stage = Some(TwoStage { frontier });
        self
    }
}

/// One ranked search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Stable record id.
    pub id: RecordId,
    /// The record's user-assigned name.
    pub name: String,
    /// Combined similarity score in `[0, 1]`.
    pub score: f64,
    /// The query transform that achieved the score.
    pub transform: Transform,
    /// Full per-axis evaluation breakdown.
    pub similarity: Similarity,
}

impl fmt::Display for SearchHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {:.4} via {}",
            self.name, self.id, self.score, self.transform
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = QueryOptions::default();
        assert_eq!(o.top_k, Some(10));
        assert_eq!(o.transforms, vec![Transform::Identity]);
        assert_eq!(o.prefilter, PrefilterMode::AnyClass);
        assert_eq!(o.parallel, Parallelism::Off);
    }

    #[test]
    fn serving_preset() {
        let o = QueryOptions::serving();
        assert_eq!(o.candidates, CandidateSource::ClassIndex);
        assert_eq!(o.parallel, Parallelism::Auto);
        assert_eq!(o.top_k, Some(10), "rest stays at the defaults");
    }

    #[test]
    fn parallelism_policy() {
        assert!(!Parallelism::Off.enabled_for(usize::MAX));
        assert!(!Parallelism::On.enabled_for(Parallelism::MIN_CANDIDATES - 1));
        assert!(Parallelism::On.enabled_for(Parallelism::MIN_CANDIDATES));
        assert!(!Parallelism::Auto.enabled_for(Parallelism::AUTO_THRESHOLD - 1));
        assert!(Parallelism::Auto.enabled_for(Parallelism::AUTO_THRESHOLD));
        assert_eq!(Parallelism::from(true), Parallelism::On);
        assert_eq!(Parallelism::from(false), Parallelism::Off);
        assert_eq!(Parallelism::Auto.to_string(), "auto");
        assert_eq!(Parallelism::default(), Parallelism::Off);
    }

    #[test]
    fn transform_invariant_preset() {
        let o = QueryOptions::transform_invariant();
        assert_eq!(o.transforms.len(), 6);
        assert!(o.transforms.contains(&Transform::Rotate180));
    }

    #[test]
    fn with_top_k() {
        let o = QueryOptions::default().with_top_k(None);
        assert_eq!(o.top_k, None);
    }

    #[test]
    fn prefilter_display() {
        assert_eq!(PrefilterMode::None.to_string(), "none");
        assert_eq!(PrefilterMode::AnyClass.to_string(), "any-class");
        assert_eq!(PrefilterMode::AllClasses.to_string(), "all-classes");
        assert_eq!(CandidateSource::Scan.to_string(), "scan");
        assert_eq!(CandidateSource::ClassIndex.to_string(), "class-index");
        assert_eq!(CandidateSource::default(), CandidateSource::Scan);
    }
}
