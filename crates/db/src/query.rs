//! Query options and search results.

use be2d_core::{Similarity, SimilarityConfig};
use be2d_geometry::Transform;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::database::RecordId;

/// Candidate prefiltering policy applied before scoring (see
/// [`ClassSignature`](crate::ClassSignature)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PrefilterMode {
    /// Score every record.
    None,
    /// Keep records that (may) share at least one class with the query.
    /// Default: a record sharing no class can only score via free-space
    /// dummies, which is never a useful hit.
    #[default]
    AnyClass,
    /// Keep records whose class set (likely) covers the whole query class
    /// set — for "find images containing all of these icons" queries.
    AllClasses,
}

impl fmt::Display for PrefilterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefilterMode::None => f.write_str("none"),
            PrefilterMode::AnyClass => f.write_str("any-class"),
            PrefilterMode::AllClasses => f.write_str("all-classes"),
        }
    }
}

/// How the candidate set for a search is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CandidateSource {
    /// Scan all records, applying the [`PrefilterMode`] via the per-record
    /// 64-bit class signature (O(records) with a tiny constant). Default.
    #[default]
    Scan,
    /// Generate candidates from the inverted
    /// [`ClassIndex`](crate::ClassIndex) posting lists — exact and
    /// sub-linear when the query classes are selective. Falls back to a
    /// full scan for class-free queries.
    ClassIndex,
}

impl fmt::Display for CandidateSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateSource::Scan => f.write_str("scan"),
            CandidateSource::ClassIndex => f.write_str("class-index"),
        }
    }
}

/// Parameters of one similarity search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Keep at most this many results (`None` = all).
    pub top_k: Option<usize>,
    /// Drop results scoring below this floor.
    pub min_score: f64,
    /// Transforms to try for each record; the best-scoring one wins. Use
    /// [`Transform::ALL`] (or [`Transform::PAPER_SET`]) for
    /// rotation/reflection-invariant retrieval (§4).
    pub transforms: Vec<Transform>,
    /// Similarity evaluation configuration.
    pub config: SimilarityConfig,
    /// Candidate prefiltering policy.
    pub prefilter: PrefilterMode,
    /// How candidates are produced (signature scan vs inverted index).
    pub candidates: CandidateSource,
    /// Scan record chunks on multiple threads.
    pub parallel: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            top_k: Some(10),
            min_score: 0.0,
            transforms: vec![Transform::Identity],
            config: SimilarityConfig::default(),
            prefilter: PrefilterMode::default(),
            candidates: CandidateSource::default(),
            parallel: false,
        }
    }
}

impl QueryOptions {
    /// Preset for rotation/reflection-invariant retrieval over the
    /// paper's transform set.
    #[must_use]
    pub fn transform_invariant() -> Self {
        QueryOptions {
            transforms: Transform::PAPER_SET.to_vec(),
            ..QueryOptions::default()
        }
    }

    /// Returns a copy with a different `top_k`.
    #[must_use]
    pub fn with_top_k(mut self, k: Option<usize>) -> Self {
        self.top_k = k;
        self
    }
}

/// One ranked search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Stable record id.
    pub id: RecordId,
    /// The record's user-assigned name.
    pub name: String,
    /// Combined similarity score in `[0, 1]`.
    pub score: f64,
    /// The query transform that achieved the score.
    pub transform: Transform,
    /// Full per-axis evaluation breakdown.
    pub similarity: Similarity,
}

impl fmt::Display for SearchHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {:.4} via {}",
            self.name, self.id, self.score, self.transform
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = QueryOptions::default();
        assert_eq!(o.top_k, Some(10));
        assert_eq!(o.transforms, vec![Transform::Identity]);
        assert_eq!(o.prefilter, PrefilterMode::AnyClass);
        assert!(!o.parallel);
    }

    #[test]
    fn transform_invariant_preset() {
        let o = QueryOptions::transform_invariant();
        assert_eq!(o.transforms.len(), 6);
        assert!(o.transforms.contains(&Transform::Rotate180));
    }

    #[test]
    fn with_top_k() {
        let o = QueryOptions::default().with_top_k(None);
        assert_eq!(o.top_k, None);
    }

    #[test]
    fn prefilter_display() {
        assert_eq!(PrefilterMode::None.to_string(), "none");
        assert_eq!(PrefilterMode::AnyClass.to_string(), "any-class");
        assert_eq!(PrefilterMode::AllClasses.to_string(), "all-classes");
        assert_eq!(CandidateSource::Scan.to_string(), "scan");
        assert_eq!(CandidateSource::ClassIndex.to_string(), "class-index");
        assert_eq!(CandidateSource::default(), CandidateSource::Scan);
    }
}
