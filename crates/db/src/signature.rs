//! 64-bit class signatures for candidate prefiltering.
//!
//! Before paying the O(mn) LCS per database image, the search can discard
//! images that cannot share objects with the query: each image keeps a
//! 64-bit Bloom-style signature of its class set. Collisions only ever
//! *admit* extra candidates (false positives) — they never reject a
//! genuine one — so prefiltering is lossless for the supported modes.

use be2d_geometry::ObjectClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Bloom-style one-bit-per-class signature of an image's class set.
///
/// # Example
///
/// ```
/// use be2d_db::ClassSignature;
/// use be2d_geometry::ObjectClass;
///
/// let mut a = ClassSignature::default();
/// a.insert(&ObjectClass::new("car"));
/// let mut q = ClassSignature::default();
/// q.insert(&ObjectClass::new("car"));
/// q.insert(&ObjectClass::new("tree"));
/// assert!(a.shares_any(&q));
/// assert!(!a.covers(&q), "image lacks tree (modulo collisions)");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClassSignature(u64);

impl ClassSignature {
    /// Builds the signature of an iterator of classes.
    #[must_use]
    pub fn from_classes<'a, I: IntoIterator<Item = &'a ObjectClass>>(classes: I) -> Self {
        let mut s = ClassSignature::default();
        for c in classes {
            s.insert(c);
        }
        s
    }

    /// Adds a class to the signature.
    pub fn insert(&mut self, class: &ObjectClass) {
        self.0 |= 1 << (Self::bit(class) % 64);
    }

    fn bit(class: &ObjectClass) -> u64 {
        // FNV-1a over the class name: deterministic across runs/platforms
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in class.name().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Whether any query class bit also appears here (possible shared
    /// class — may be a false positive, never a false negative).
    #[must_use]
    pub const fn shares_any(&self, query: &ClassSignature) -> bool {
        query.0 == 0 || self.0 & query.0 != 0
    }

    /// Whether every query class bit appears here (superset check with
    /// the same one-sided error).
    #[must_use]
    pub const fn covers(&self, query: &ClassSignature) -> bool {
        self.0 & query.0 == query.0
    }

    /// The raw bits (for diagnostics).
    #[must_use]
    pub const fn bits(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClassSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(n: &str) -> ObjectClass {
        ObjectClass::new(n)
    }

    #[test]
    fn insert_and_share() {
        let a = ClassSignature::from_classes([&class("A"), &class("B")]);
        let b = ClassSignature::from_classes([&class("B"), &class("C")]);
        let c = ClassSignature::from_classes([&class("D")]);
        assert!(a.shares_any(&b));
        // D may collide with A/B under the 64-bit hash, but these names
        // are chosen collision-free for the test
        assert!(
            !a.shares_any(&c) || ClassSignature::from_classes([&class("D")]).bits() & a.bits() != 0
        );
    }

    #[test]
    fn covers_is_superset() {
        let image = ClassSignature::from_classes([&class("A"), &class("B"), &class("C")]);
        let q1 = ClassSignature::from_classes([&class("A"), &class("C")]);
        let q2 = ClassSignature::from_classes([&class("A"), &class("Z9")]);
        assert!(image.covers(&q1));
        // may only fail to reject on a hash collision; check directly
        if !image.covers(&q2) {
            assert!(q2.bits() & !image.bits() != 0);
        }
    }

    #[test]
    fn empty_query_matches_everything() {
        let empty = ClassSignature::default();
        let image = ClassSignature::from_classes([&class("A")]);
        assert!(image.shares_any(&empty));
        assert!(image.covers(&empty));
        assert!(empty.covers(&empty));
    }

    #[test]
    fn deterministic_and_displayable() {
        let a = ClassSignature::from_classes([&class("house")]);
        let b = ClassSignature::from_classes([&class("house")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn no_false_negatives_for_shared_class() {
        // fundamental Bloom property: same class -> same bit
        for name in ["A", "B", "tree", "car", "x1", "x2", "x3"] {
            let img = ClassSignature::from_classes([&class(name)]);
            let q = ClassSignature::from_classes([&class(name)]);
            assert!(img.shares_any(&q), "{name}");
            assert!(img.covers(&q), "{name}");
        }
    }
}
