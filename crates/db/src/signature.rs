//! Candidate prefiltering and stage-1 score bounds.
//!
//! Two layers of "cheap math before the expensive LCS" live here:
//!
//! 1. [`ClassSignature`] — a boolean 64-bit Bloom filter over the class
//!    set. Collisions only ever *admit* extra candidates (false
//!    positives) — they never reject a genuine one — so prefiltering is
//!    lossless for the supported modes.
//! 2. [`ScoreSketch`] / [`QuerySketch`] / [`ScoreBound`] — the
//!    quantised per-image spatial sketch behind two-stage retrieval
//!    ([`QueryOptions::two_stage`](crate::QueryOptions::two_stage)): a
//!    saturating per-bucket histogram of `(class, boundary)` symbols
//!    plus a coarse relation-pair summary (quantised first/last
//!    position intervals per bucket), per axis. From a query sketch and
//!    a stored sketch the database computes an **admissible upper
//!    bound** on the §3/§4 similarity score in O(buckets²), without
//!    touching the O(mn) LCS.
//!
//! # The admissibility contract
//!
//! For every query `Q`, stored image `D`, and
//! [`SimilarityConfig`](be2d_core::SimilarityConfig):
//!
//! ```text
//! QuerySketch::of(Q).bound(&ScoreSketch::of(D), cfg)  >=  similarity_with(Q, D, cfg).score
//! ```
//!
//! The bound is built from quantities that can only over-count what any
//! common subsequence of the two BE-strings may contain:
//!
//! * per bucket `b`, an LCS holds at most `min(count_Q(b), count_D(b))`
//!   boundary symbols of `b` (bucketing merges colliding classes, and
//!   `Σ min ≤ min(Σ, Σ)` keeps the merge admissible; saturated stored
//!   counts are treated as unbounded);
//! * if *all* bucket-`i` symbols precede *all* bucket-`j` symbols in
//!   `Q` but follow them in `D`, no common subsequence contains symbols
//!   of both buckets — a greedy vertex-disjoint matching of such
//!   conflicting pairs subtracts `min(overlap_i, overlap_j)` per
//!   matched pair (per-pair subtraction without the matching would
//!   over-subtract and break admissibility);
//! * the modified LCS of Algorithm 2 never holds two adjacent dummies,
//!   so its dummy count is at most `boundary_matches + 1` (and at most
//!   `min(dummies_Q, dummies_D)`, since a dummy only matches a dummy).
//!
//! The resulting per-axis length bounds feed the exact normalisation
//! formulas (the stored sketch carries the *exact* per-axis boundary
//! and dummy totals, so denominators are exact), and every
//! normalisation/axis-combine option is monotone in the LCS length —
//! so the score bound is admissible for every configuration, in `f64`
//! arithmetic (same divisors, monotone rounding). The two-stage search
//! relies on exactly this contract to stay bit-identical to the
//! exhaustive scan; the full pipeline is documented in
//! `docs/ARCHITECTURE.md` (query lifecycle → stage-1 bound ranking).

use be2d_core::{BeString, BeString2D, SimilarityConfig};
use be2d_geometry::ObjectClass;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A Bloom-style one-bit-per-class signature of an image's class set.
///
/// # Example
///
/// ```
/// use be2d_db::ClassSignature;
/// use be2d_geometry::ObjectClass;
///
/// let mut a = ClassSignature::default();
/// a.insert(&ObjectClass::new("car"));
/// let mut q = ClassSignature::default();
/// q.insert(&ObjectClass::new("car"));
/// q.insert(&ObjectClass::new("tree"));
/// assert!(a.shares_any(&q));
/// assert!(!a.covers(&q), "image lacks tree (modulo collisions)");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClassSignature(u64);

impl ClassSignature {
    /// Builds the signature of an iterator of classes.
    #[must_use]
    pub fn from_classes<'a, I: IntoIterator<Item = &'a ObjectClass>>(classes: I) -> Self {
        let mut s = ClassSignature::default();
        for c in classes {
            s.insert(c);
        }
        s
    }

    /// Adds a class to the signature.
    pub fn insert(&mut self, class: &ObjectClass) {
        self.0 |= 1 << (fnv1a(class.name().bytes()) % 64);
    }

    /// Whether any query class bit also appears here (possible shared
    /// class — may be a false positive, never a false negative).
    #[must_use]
    pub const fn shares_any(&self, query: &ClassSignature) -> bool {
        query.0 == 0 || self.0 & query.0 != 0
    }

    /// Whether every query class bit appears here (superset check with
    /// the same one-sided error).
    #[must_use]
    pub const fn covers(&self, query: &ClassSignature) -> bool {
        self.0 & query.0 == query.0
    }

    /// The raw bits (for diagnostics).
    #[must_use]
    pub const fn bits(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClassSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over a byte stream: deterministic across runs/platforms.
fn fnv1a<I: IntoIterator<Item = u8>>(bytes: I) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Score-bound sketches (stage 1 of two-stage retrieval)
// ---------------------------------------------------------------------------

/// Buckets per axis in a [`ScoreSketch`] histogram. Distinct
/// `(class, boundary)` symbols hashing to the same bucket merge their
/// counts and position intervals, which loosens but never invalidates
/// the bound.
pub const SKETCH_BUCKETS: usize = 32;

/// Quantisation levels for the per-bucket position intervals.
const POS_QUANTA: u64 = 64;

/// Version marker stored with every serialised sketch. Records restored
/// from snapshots written before this sketch (or by a build with a
/// different sketch layout) recompute it from the symbolic picture.
pub(crate) const SKETCH_VERSION: i128 = 1;

/// One axis of a [`ScoreSketch`]: a saturating bucket histogram of the
/// boundary symbols with quantised first/last position intervals, plus
/// the exact boundary and dummy totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
struct AxisSketch {
    /// Boundary symbols per bucket, saturating at `u16::MAX` (a
    /// saturated count means "at least this many" and is treated as
    /// unbounded by the overlap math).
    counts: [u16; SKETCH_BUCKETS],
    /// Quantised (floor) position of the bucket's first symbol.
    first: [u8; SKETCH_BUCKETS],
    /// Quantised (ceil) position of the bucket's last symbol.
    last: [u8; SKETCH_BUCKETS],
    /// Exact boundary-symbol count of the axis string.
    boundaries: u32,
    /// Exact dummy count of the axis string.
    dummies: u32,
}

/// Quantises position `pos` of a length-`len` string into
/// `0..POS_QUANTA`, rounding down. Monotone in `pos`.
fn quant_floor(pos: usize, len: usize) -> u8 {
    if len <= 1 {
        return 0;
    }
    (pos as u64 * (POS_QUANTA - 1) / (len as u64 - 1)) as u8
}

/// Same quantisation rounding up, so `[first, last]` stored intervals
/// always contain the true positions.
fn quant_ceil(pos: usize, len: usize) -> u8 {
    if len <= 1 {
        return 0;
    }
    ((pos as u64 * (POS_QUANTA - 1)).div_ceil(len as u64 - 1)) as u8
}

impl AxisSketch {
    fn of(axis: &BeString) -> AxisSketch {
        let mut s = AxisSketch {
            counts: [0; SKETCH_BUCKETS],
            first: [0; SKETCH_BUCKETS],
            last: [0; SKETCH_BUCKETS],
            boundaries: 0,
            dummies: 0,
        };
        let len = axis.len();
        for (pos, sym) in axis.symbols().iter().enumerate() {
            let (Some(class), Some(boundary)) = (sym.class(), sym.boundary()) else {
                s.dummies += 1;
                continue;
            };
            s.boundaries += 1;
            let b = (fnv1a(class.name().bytes().chain([boundary as u8 + 1]))
                % SKETCH_BUCKETS as u64) as usize;
            let lo = quant_floor(pos, len);
            let hi = quant_ceil(pos, len);
            if s.counts[b] == 0 {
                s.first[b] = lo;
                s.last[b] = hi;
            } else {
                s.first[b] = s.first[b].min(lo);
                s.last[b] = s.last[b].max(hi);
            }
            s.counts[b] = s.counts[b].saturating_add(1);
        }
        s
    }

    /// Total symbol count of the axis string.
    fn total(&self) -> u64 {
        u64::from(self.boundaries) + u64::from(self.dummies)
    }
}

/// Upper bounds on the modified-LCS length of two axis strings, from
/// their sketches alone: `(full, boundary_only)` under the two counting
/// rules of [`SimilarityConfig::count_dummies`].
fn lcs_upper_bounds(q: &AxisSketch, t: &AxisSketch) -> (u64, u64) {
    // Exact totals cap everything: a common subsequence never exceeds
    // either string's boundary count.
    let cap = u64::from(q.boundaries.min(t.boundaries));
    let mut ov = [0u64; SKETCH_BUCKETS];
    for (b, slot) in ov.iter_mut().enumerate() {
        if q.counts[b] == 0 || t.counts[b] == 0 {
            continue;
        }
        // Saturated counts mean "at least 65535": fall back to the
        // other side (or the exact cap) so the bound stays admissible.
        let m = match (q.counts[b], t.counts[b]) {
            (u16::MAX, u16::MAX) => cap,
            (u16::MAX, c) | (c, u16::MAX) => u64::from(c),
            (a, b) => u64::from(a.min(b)),
        };
        *slot = m.min(cap);
    }
    let mut sum: u64 = ov.iter().sum();
    // Relation-pair tightening: if every bucket-i symbol precedes every
    // bucket-j symbol in the query but follows them in the target (or
    // vice versa), no common subsequence holds symbols of both buckets,
    // so the pair contributes at most max(ov_i, ov_j). Subtracting the
    // min over a vertex-disjoint matching keeps the sum admissible.
    let mut used = [false; SKETCH_BUCKETS];
    for i in 0..SKETCH_BUCKETS {
        if used[i] || ov[i] == 0 {
            continue;
        }
        for j in (i + 1)..SKETCH_BUCKETS {
            if used[j] || ov[j] == 0 {
                continue;
            }
            let q_ij = q.last[i] < q.first[j];
            let q_ji = q.last[j] < q.first[i];
            let t_ij = t.last[i] < t.first[j];
            let t_ji = t.last[j] < t.first[i];
            if (q_ij && t_ji) || (q_ji && t_ij) {
                used[i] = true;
                used[j] = true;
                sum -= ov[i].min(ov[j]);
                break;
            }
        }
    }
    let boundary_ub = sum.min(cap);
    // A dummy only matches a dummy, and Algorithm 2 never keeps two
    // adjacent dummies, so the LCS holds at most boundary_ub + 1 of
    // them.
    let dummy_ub = u64::from(q.dummies.min(t.dummies)).min(boundary_ub + 1);
    let full_ub = (boundary_ub + dummy_ub).min(q.total()).min(t.total());
    (full_ub, boundary_ub)
}

/// `a / b` with the same `0 / 0 = 1` convention the exact scorer uses.
#[allow(clippy::cast_precision_loss)] // lengths are far below 2^52
fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        a as f64 / b as f64
    }
}

/// Admissible upper bound on one axis score. Mirrors
/// `AxisSimilarity::evaluate` exactly, with the LCS length replaced by
/// its upper bound — same divisors, so `f64` rounding stays monotone.
#[allow(clippy::cast_precision_loss)]
fn axis_bound(q: &AxisSketch, t: &AxisSketch, cfg: &SimilarityConfig) -> f64 {
    use be2d_core::Normalization;
    let (full_ub, boundary_ub) = lcs_upper_bounds(q, t);
    let (lub, qlen, tlen) = if cfg.count_dummies {
        (full_ub, q.total(), t.total())
    } else {
        (
            boundary_ub,
            u64::from(q.boundaries),
            u64::from(t.boundaries),
        )
    };
    match cfg.normalization {
        Normalization::QueryCoverage => ratio(lub, qlen),
        Normalization::TargetCoverage => ratio(lub, tlen),
        Normalization::Dice => {
            if qlen + tlen == 0 {
                1.0
            } else {
                2.0 * lub as f64 / (qlen + tlen) as f64
            }
        }
    }
}

/// The quantised per-image spatial sketch stored with every record:
/// one axis sketch (bucketed symbol histogram + coarse position
/// intervals) per axis.
///
/// A sketch is derived data — recomputable from the symbolic picture at
/// any time — and is kept in sync by every §3.2 edit. Snapshots persist
/// it with a version marker; restoring a snapshot written before the
/// sketch existed (or with a different layout) silently recomputes it.
///
/// # Example
///
/// ```
/// use be2d_core::{convert_scene, similarity_with, SimilarityConfig};
/// use be2d_db::{QuerySketch, ScoreSketch};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stored = convert_scene(
///     &SceneBuilder::new(100, 100)
///         .object("A", (10, 40, 10, 40))
///         .object("B", (50, 90, 50, 90))
///         .build()?,
/// );
/// let query = convert_scene(
///     &SceneBuilder::new(100, 100).object("A", (20, 50, 20, 50)).build()?,
/// );
/// let cfg = SimilarityConfig::default();
/// let bound = QuerySketch::of(&query).bound(&ScoreSketch::of(&stored), &cfg);
/// let exact = similarity_with(&query, &stored, &cfg).score;
/// assert!(bound.value() >= exact, "the bound is admissible");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ScoreSketch {
    x: AxisSketch,
    y: AxisSketch,
}

impl ScoreSketch {
    /// Builds the sketch of a 2D BE-string.
    #[must_use]
    pub fn of(image: &BeString2D) -> ScoreSketch {
        ScoreSketch {
            x: AxisSketch::of(image.x()),
            y: AxisSketch::of(image.y()),
        }
    }
}

/// The query-side half of the bound: one [`ScoreSketch`] per query
/// transform, built once per search.
///
/// [`bound`](Self::bound) returns the maximum per-transform bound,
/// matching the best-transform-wins exact score.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySketch {
    variants: Vec<ScoreSketch>,
}

impl QuerySketch {
    /// Builds the sketch of a single (identity-transform) query.
    #[must_use]
    pub fn of(query: &BeString2D) -> QuerySketch {
        QuerySketch {
            variants: vec![ScoreSketch::of(query)],
        }
    }

    /// Builds the sketches of all transformed query variants. Falls
    /// back to an empty variant set bounding every score by 1.0 when
    /// the iterator is empty (searches always have at least one
    /// variant).
    pub fn of_variants<'a, I: IntoIterator<Item = &'a BeString2D>>(variants: I) -> QuerySketch {
        QuerySketch {
            variants: variants.into_iter().map(ScoreSketch::of).collect(),
        }
    }

    /// Admissible upper bound on the best-transform §3 similarity score
    /// between this query and an image with the given stored sketch.
    #[must_use]
    pub fn bound(&self, target: &ScoreSketch, cfg: &SimilarityConfig) -> ScoreBound {
        use be2d_core::AxisCombine;
        let mut best: f64 = if self.variants.is_empty() { 1.0 } else { 0.0 };
        for q in &self.variants {
            let bx = axis_bound(&q.x, &target.x, cfg);
            let by = axis_bound(&q.y, &target.y, cfg);
            let b = match cfg.axis_combine {
                AxisCombine::Mean => (bx + by) / 2.0,
                AxisCombine::Product => bx * by,
                AxisCombine::Min => bx.min(by),
            };
            best = best.max(b);
        }
        ScoreBound(best)
    }
}

/// An admissible upper bound on a similarity score: for the query and
/// stored image it was computed from, the exact
/// [`similarity_with`](be2d_core::similarity_with) score under the same
/// [`SimilarityConfig`](be2d_core::SimilarityConfig) never exceeds
/// [`value()`](Self::value).
///
/// Two-stage retrieval sorts candidates by this bound and stops scoring
/// once the k-th exact score strictly dominates every remaining bound —
/// admissibility is what makes that early exit lossless.
///
/// # Example
///
/// ```
/// use be2d_core::{convert_scene, similarity, SimilarityConfig};
/// use be2d_db::{QuerySketch, ScoreSketch};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(50, 50).object("A", (5, 20, 5, 20)).build()?;
/// let image = convert_scene(&scene);
/// let bound = QuerySketch::of(&image)
///     .bound(&ScoreSketch::of(&image), &SimilarityConfig::default());
/// // A self-match scores 1.0, so its admissible bound is exactly 1.0.
/// assert!(bound.admits(1.0));
/// assert!(bound.value() <= 1.0);
/// assert_eq!(similarity(&image, &image).score, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ScoreBound(f64);

impl ScoreBound {
    /// The bound as a plain score in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Whether a candidate with this bound could still reach `floor` —
    /// `false` means the exact score is provably below `floor` and the
    /// candidate can be skipped without scoring.
    #[must_use]
    pub fn admits(self, floor: f64) -> bool {
        self.0 >= floor
    }
}

impl fmt::Display for ScoreBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<= {:.4}", self.0)
    }
}

// Hand-written serde: the sketch is persisted inside every record with
// a version marker, and arrays/versioning sit outside the derive shim's
// vocabulary. `ImageRecord`'s deserializer treats *any* sketch parse
// failure as "stale format, recompute from the symbolic picture".
impl Serialize for AxisSketch {
    fn to_value(&self) -> Value {
        let ints = |it: &mut dyn Iterator<Item = i128>| Value::Seq(it.map(Value::Int).collect());
        Value::Map(vec![
            (
                "counts".to_owned(),
                ints(&mut self.counts.iter().map(|&c| i128::from(c))),
            ),
            (
                "first".to_owned(),
                ints(&mut self.first.iter().map(|&c| i128::from(c))),
            ),
            (
                "last".to_owned(),
                ints(&mut self.last.iter().map(|&c| i128::from(c))),
            ),
            ("boundaries".to_owned(), self.boundaries.to_value()),
            ("dummies".to_owned(), self.dummies.to_value()),
        ])
    }
}

impl Deserialize for AxisSketch {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Map(entries) = v else {
            return Err(serde::Error::expected("AxisSketch", "map"));
        };
        fn ints<T, const N: usize>(v: &Value, field: &str) -> Result<[T; N], serde::Error>
        where
            T: TryFrom<i128> + Copy + Default,
        {
            let Value::Seq(items) = v else {
                return Err(serde::Error::expected("AxisSketch", "sequence"));
            };
            if items.len() != N {
                return Err(serde::Error::custom(format!(
                    "AxisSketch.{field}: expected {N} entries, got {}",
                    items.len()
                )));
            }
            let mut out = [T::default(); N];
            for (slot, item) in out.iter_mut().zip(items) {
                let Value::Int(i) = item else {
                    return Err(serde::Error::expected("AxisSketch", "integer"));
                };
                *slot = T::try_from(*i)
                    .map_err(|_| serde::Error::custom("AxisSketch: count out of range"))?;
            }
            Ok(out)
        }
        Ok(AxisSketch {
            counts: ints(serde::get_field(entries, "AxisSketch", "counts")?, "counts")?,
            first: ints(serde::get_field(entries, "AxisSketch", "first")?, "first")?,
            last: ints(serde::get_field(entries, "AxisSketch", "last")?, "last")?,
            boundaries: u32::from_value(serde::get_field(entries, "AxisSketch", "boundaries")?)?,
            dummies: u32::from_value(serde::get_field(entries, "AxisSketch", "dummies")?)?,
        })
    }
}

impl Serialize for ScoreSketch {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("v".to_owned(), Value::Int(SKETCH_VERSION)),
            ("x".to_owned(), self.x.to_value()),
            ("y".to_owned(), self.y.to_value()),
        ])
    }
}

impl Deserialize for ScoreSketch {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Map(entries) = v else {
            return Err(serde::Error::expected("ScoreSketch", "map"));
        };
        match serde::get_field(entries, "ScoreSketch", "v")? {
            Value::Int(i) if *i == SKETCH_VERSION => {}
            other => {
                return Err(serde::Error::custom(format!(
                    "ScoreSketch: unsupported version {other:?}"
                )))
            }
        }
        Ok(ScoreSketch {
            x: AxisSketch::from_value(serde::get_field(entries, "ScoreSketch", "x")?)?,
            y: AxisSketch::from_value(serde::get_field(entries, "ScoreSketch", "y")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_core::{convert_scene, similarity_with, transformed, AxisCombine, Normalization};
    use be2d_geometry::{Scene, SceneBuilder, Transform};

    fn class(n: &str) -> ObjectClass {
        ObjectClass::new(n)
    }

    #[test]
    fn insert_and_share() {
        let a = ClassSignature::from_classes([&class("A"), &class("B")]);
        let b = ClassSignature::from_classes([&class("B"), &class("C")]);
        let c = ClassSignature::from_classes([&class("D")]);
        assert!(a.shares_any(&b));
        // D may collide with A/B under the 64-bit hash, but these names
        // are chosen collision-free for the test
        assert!(
            !a.shares_any(&c) || ClassSignature::from_classes([&class("D")]).bits() & a.bits() != 0
        );
    }

    #[test]
    fn covers_is_superset() {
        let image = ClassSignature::from_classes([&class("A"), &class("B"), &class("C")]);
        let q1 = ClassSignature::from_classes([&class("A"), &class("C")]);
        let q2 = ClassSignature::from_classes([&class("A"), &class("Z9")]);
        assert!(image.covers(&q1));
        // may only fail to reject on a hash collision; check directly
        if !image.covers(&q2) {
            assert!(q2.bits() & !image.bits() != 0);
        }
    }

    #[test]
    fn empty_query_matches_everything() {
        let empty = ClassSignature::default();
        let image = ClassSignature::from_classes([&class("A")]);
        assert!(image.shares_any(&empty));
        assert!(image.covers(&empty));
        assert!(empty.covers(&empty));
    }

    #[test]
    fn deterministic_and_displayable() {
        let a = ClassSignature::from_classes([&class("house")]);
        let b = ClassSignature::from_classes([&class("house")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn no_false_negatives_for_shared_class() {
        // fundamental Bloom property: same class -> same bit
        for name in ["A", "B", "tree", "car", "x1", "x2", "x3"] {
            let img = ClassSignature::from_classes([&class(name)]);
            let q = ClassSignature::from_classes([&class(name)]);
            assert!(img.shares_any(&q), "{name}");
            assert!(img.covers(&q), "{name}");
        }
    }

    // ---- score-bound sketches ----

    fn all_configs() -> Vec<SimilarityConfig> {
        let mut out = Vec::new();
        for normalization in [
            Normalization::QueryCoverage,
            Normalization::TargetCoverage,
            Normalization::Dice,
        ] {
            for axis_combine in [AxisCombine::Mean, AxisCombine::Product, AxisCombine::Min] {
                for count_dummies in [false, true] {
                    out.push(SimilarityConfig {
                        normalization,
                        axis_combine,
                        count_dummies,
                    });
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random scene built from a seed.
    fn pseudo_scene(seed: u64, objects: usize) -> Scene {
        let mut b = SceneBuilder::new(200, 200);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let classes = ["A", "B", "C", "tree", "car", "E9"];
        for _ in 0..objects {
            let c = classes[(next() % classes.len() as u64) as usize];
            let x0 = (next() % 150) as i64;
            let y0 = (next() % 150) as i64;
            let w = (next() % 40) as i64 + 2;
            let h = (next() % 40) as i64 + 2;
            b = b.object(c, (x0, x0 + w, y0, y0 + h));
        }
        b.build().unwrap()
    }

    #[test]
    fn bound_is_admissible_for_every_config_and_transform() {
        let cfgs = all_configs();
        for qi in 0..8u64 {
            let query = convert_scene(&pseudo_scene(qi + 1, (qi % 5) as usize + 1));
            let variants: Vec<BeString2D> = Transform::ALL
                .iter()
                .map(|&t| transformed(&query, t))
                .collect();
            let qsketch = QuerySketch::of_variants(variants.iter());
            for ti in 0..8u64 {
                let target = convert_scene(&pseudo_scene(ti + 100, (ti % 6) as usize));
                let tsketch = ScoreSketch::of(&target);
                for cfg in &cfgs {
                    let exact = variants
                        .iter()
                        .map(|q| similarity_with(q, &target, cfg).score)
                        .fold(0.0f64, f64::max);
                    let bound = qsketch.bound(&tsketch, cfg).value();
                    assert!(
                        bound >= exact,
                        "inadmissible bound {bound} < {exact} (q={qi} t={ti} cfg={cfg:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn self_match_bound_is_tight_at_one() {
        let image = convert_scene(&pseudo_scene(7, 4));
        let sketch = ScoreSketch::of(&image);
        for cfg in all_configs() {
            let bound = QuerySketch::of(&image).bound(&sketch, &cfg);
            assert!(bound.admits(1.0), "self-match must stay reachable");
            assert!(bound.value() <= 1.0 + 1e-12, "scores live in [0, 1]");
        }
    }

    #[test]
    fn disjoint_relation_order_tightens_bound() {
        // A strictly left of B in one image, strictly right in the
        // other: same class multiset, conflicting relation pair. The
        // relation-pair summary must price the conflict in.
        let ab = convert_scene(
            &SceneBuilder::new(100, 100)
                .object("A", (5, 20, 40, 60))
                .object("B", (60, 90, 40, 60))
                .build()
                .unwrap(),
        );
        let ba = convert_scene(
            &SceneBuilder::new(100, 100)
                .object("B", (5, 20, 40, 60))
                .object("A", (60, 90, 40, 60))
                .build()
                .unwrap(),
        );
        let cfg = SimilarityConfig {
            count_dummies: false,
            ..SimilarityConfig::default()
        };
        let same = QuerySketch::of(&ab)
            .bound(&ScoreSketch::of(&ab), &cfg)
            .value();
        let flipped = QuerySketch::of(&ab)
            .bound(&ScoreSketch::of(&ba), &cfg)
            .value();
        assert!(
            flipped < same,
            "conflicting pair must lower the bound ({flipped} !< {same})"
        );
        let exact = similarity_with(&ab, &ba, &cfg).score;
        assert!(flipped >= exact);
    }

    #[test]
    fn empty_image_sketch() {
        let empty = convert_scene(&Scene::new(10, 10).unwrap());
        let sketch = ScoreSketch::of(&empty);
        for cfg in all_configs() {
            let bound = QuerySketch::of(&empty).bound(&sketch, &cfg).value();
            let exact = similarity_with(&empty, &empty, &cfg).score;
            assert!(bound >= exact, "{cfg:?}: {bound} < {exact}");
            assert!((bound - 1.0).abs() < 1e-12, "empty matches empty exactly");
        }
        // empty query vs non-empty image, both directions
        let img = convert_scene(&pseudo_scene(3, 3));
        for cfg in all_configs() {
            let b1 = QuerySketch::of(&empty)
                .bound(&ScoreSketch::of(&img), &cfg)
                .value();
            let e1 = similarity_with(&empty, &img, &cfg).score;
            assert!(b1 >= e1, "{cfg:?}");
            let b2 = QuerySketch::of(&img).bound(&sketch, &cfg).value();
            let e2 = similarity_with(&img, &empty, &cfg).score;
            assert!(b2 >= e2, "{cfg:?}");
        }
    }

    #[test]
    fn many_classes_saturate_buckets_not_correctness() {
        // 80 distinct classes — more than SKETCH_BUCKETS and more than
        // the 64 signature bits — every bucket collides somewhere.
        let mut b = SceneBuilder::new(2000, 2000);
        for i in 0..80i64 {
            let x = (i % 40) * 45;
            let y = (i / 40) * 600;
            b = b.object(&format!("c{i}"), (x, x + 40, y, y + 500));
        }
        let crowded = convert_scene(&b.build().unwrap());
        let sparse = convert_scene(&pseudo_scene(11, 3));
        for cfg in all_configs() {
            for (q, t) in [
                (&crowded, &sparse),
                (&sparse, &crowded),
                (&crowded, &crowded),
            ] {
                let bound = QuerySketch::of(q).bound(&ScoreSketch::of(t), &cfg).value();
                let exact = similarity_with(q, t, &cfg).score;
                assert!(bound >= exact, "{cfg:?}: {bound} < {exact}");
            }
        }
    }

    #[test]
    fn sketch_serde_roundtrip_and_versioning() {
        let sketch = ScoreSketch::of(&convert_scene(&pseudo_scene(5, 4)));
        let v = sketch.to_value();
        let back = ScoreSketch::from_value(&v).unwrap();
        assert_eq!(sketch, back);
        // a version bump must be rejected (the record recomputes)
        let Value::Map(mut entries) = v else {
            panic!("sketch serialises to a map")
        };
        entries[0].1 = Value::Int(SKETCH_VERSION + 1);
        assert!(ScoreSketch::from_value(&Value::Map(entries)).is_err());
        assert!(ScoreSketch::from_value(&Value::Null).is_err());
    }

    #[test]
    fn score_bound_display() {
        let image = convert_scene(&pseudo_scene(2, 2));
        let b =
            QuerySketch::of(&image).bound(&ScoreSketch::of(&image), &SimilarityConfig::default());
        assert!(b.to_string().starts_with("<= "));
    }
}
