//! A bounded, sequence-numbered journal of structured cluster events.
//!
//! Metrics answer "how much"; the journal answers "what happened right
//! before that". Every state transition worth a page — a replica
//! failing or healing, a reshard starting or finishing, a WAL
//! checkpoint, an SLO burn, an advisor recommendation — is recorded as
//! a typed [`Event`] with a monotonically increasing sequence number
//! and a wall-clock timestamp, in a fixed-capacity ring that evicts
//! oldest-first. Readers poll incrementally with
//! [`EventJournal::since`]: remember the last sequence seen, ask for
//! everything after it.
//!
//! Recording takes one short mutex; the emission sites already hold
//! their subsystem's coarser locks (a shard's write-order mutex, the
//! reshard lock), so the journal adds no new ordering concerns.

use std::collections::VecDeque;
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity used by
/// [`ReplicatedImageDatabase`](crate::ReplicatedImageDatabase).
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// What happened, with the structured payload of each transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A replica was taken out of rotation (fault injection or admin).
    ReplicaFailed {
        /// Physical shard index.
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
    },
    /// A failed replica was rebuilt and rejoined rotation.
    ReplicaHealed {
        /// Physical shard index.
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
        /// `"replay"` when the op-log gap fit the window, `"clone"`
        /// when it fell back to copying a healthy peer.
        method: &'static str,
    },
    /// An online reshard installed its migration epoch.
    ReshardStarted {
        /// Shard count before the migration.
        from: usize,
        /// Target shard count.
        to: usize,
    },
    /// An online reshard finalised (epoch steady again).
    ReshardFinished {
        /// Shard count before the migration.
        from: usize,
        /// Shard count after the migration.
        to: usize,
        /// Records moved between shards.
        moved_records: usize,
        /// Stop-the-world batches the sweep took.
        batches: u64,
    },
    /// A WAL checkpoint anchored a snapshot and truncated the log.
    WalCheckpoint {
        /// Records in the anchor snapshot.
        records: usize,
    },
    /// A rolling-window SLO signal crossed its configured target.
    SloBurn {
        /// Which signal burned (`"latency_p99"`, `"availability"`).
        signal: String,
        /// Human-readable observation vs target.
        detail: String,
    },
    /// The dry-run advisor would have issued an admin call.
    AdvisorRecommendation {
        /// The exact admin call (`"reshard"`, `"rebuild_replica"`).
        action: String,
        /// Machine-readable target, e.g. `"shards=8"` or
        /// `"shard=1,replica=0"`.
        target: String,
        /// Why the advisor decided this.
        reason: String,
    },
}

impl EventKind {
    /// Stable machine-readable name of the event type (the `type`
    /// field of the HTTP representation).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ReplicaFailed { .. } => "replica_failed",
            EventKind::ReplicaHealed { .. } => "replica_healed",
            EventKind::ReshardStarted { .. } => "reshard_started",
            EventKind::ReshardFinished { .. } => "reshard_finished",
            EventKind::WalCheckpoint { .. } => "wal_checkpoint",
            EventKind::SloBurn { .. } => "slo_burn",
            EventKind::AdvisorRecommendation { .. } => "advisor_recommendation",
        }
    }
}

/// One journal entry: a sequence number (monotonic across the whole
/// journal, never reused, survives eviction), a wall-clock timestamp,
/// and the typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the journal; strictly increasing with admission
    /// order, starting at 1.
    pub seq: u64,
    /// Milliseconds since the Unix epoch at admission.
    pub unix_ms: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct JournalState {
    next_seq: u64,
    ring: VecDeque<Event>,
}

/// The bounded event ring. Cheap to record into (one short lock),
/// cheap to poll (copies only the suffix past the caller's cursor).
#[derive(Debug)]
pub struct EventJournal {
    capacity: usize,
    state: parking_lot::Mutex<JournalState>,
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventJournal {
    /// A journal retaining the `capacity` (clamped to ≥ 1) most recent
    /// events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventJournal {
            capacity: capacity.max(1),
            state: parking_lot::Mutex::new(JournalState::default()),
        }
    }

    /// Admits an event: assigns the next sequence number, timestamps
    /// it, and evicts the oldest entry if the ring is full. Returns
    /// the assigned sequence.
    pub fn record(&self, kind: EventKind) -> u64 {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let mut state = self.state.lock();
        state.next_seq += 1;
        let seq = state.next_seq;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(Event { seq, unix_ms, kind });
        seq
    }

    /// Every retained event with a sequence strictly greater than
    /// `seq`, oldest first, plus the journal's latest assigned
    /// sequence (the cursor for the next poll). `since(0)` returns the
    /// whole ring.
    #[must_use]
    pub fn since(&self, seq: u64) -> (Vec<Event>, u64) {
        let state = self.state.lock();
        let events = state.ring.iter().filter(|e| e.seq > seq).cloned().collect();
        (events, state.next_seq)
    }

    /// The latest assigned sequence (0 before any event).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// The ring's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(shard: usize, replica: usize) -> EventKind {
        EventKind::ReplicaFailed { shard, replica }
    }

    #[test]
    fn sequences_start_at_one_and_increase() {
        let j = EventJournal::with_capacity(8);
        assert_eq!(j.last_seq(), 0);
        assert_eq!(j.record(fail(0, 0)), 1);
        assert_eq!(j.record(fail(0, 1)), 2);
        let (events, last) = j.since(0);
        assert_eq!(last, 2);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
    }

    #[test]
    fn since_cursor_returns_only_the_suffix() {
        let j = EventJournal::with_capacity(8);
        for i in 0..5 {
            j.record(fail(i, 0));
        }
        let (events, last) = j.since(3);
        assert_eq!(last, 5);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        let (none, last) = j.since(5);
        assert!(none.is_empty());
        assert_eq!(last, 5);
    }

    #[test]
    fn wraparound_keeps_sequences_monotonic_and_evicts_oldest() {
        let j = EventJournal::with_capacity(4);
        for i in 0..10 {
            j.record(fail(i, 0));
        }
        let (events, last) = j.since(0);
        assert_eq!(last, 10);
        assert_eq!(events.len(), 4, "ring holds only the newest capacity");
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "strictly increasing across eviction"
        );
    }

    #[test]
    fn concurrent_recorders_never_reuse_a_sequence() {
        use std::sync::Arc;
        let j = Arc::new(EventJournal::with_capacity(16));
        let threads = 4;
        let per_thread = 500;
        let mut seqs: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let j = Arc::clone(&j);
                    scope.spawn(move || {
                        (0..per_thread)
                            .map(|_| j.record(fail(t, 0)))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seqs.sort_unstable();
        let expected: Vec<u64> = (1..=(threads * per_thread) as u64).collect();
        assert_eq!(seqs, expected, "every sequence assigned exactly once");
        // Only the newest 16 survive, still sorted and contiguous.
        let (events, last) = j.since(0);
        assert_eq!(last, (threads * per_thread) as u64);
        assert_eq!(events.len(), 16);
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(fail(0, 0).name(), "replica_failed");
        assert_eq!(
            EventKind::ReplicaHealed {
                shard: 0,
                replica: 1,
                method: "replay"
            }
            .name(),
            "replica_healed"
        );
        assert_eq!(
            EventKind::AdvisorRecommendation {
                action: "reshard".into(),
                target: "shards=8".into(),
                reason: "imbalance".into()
            }
            .name(),
            "advisor_recommendation"
        );
    }
}
