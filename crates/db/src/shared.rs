//! A thread-safe database handle for concurrent readers and writers.
//!
//! [`ImageDatabase`] itself is a plain value: queries take `&self` and
//! edits take `&mut self`. This wrapper packages the obvious production
//! deployment — many query threads, occasional maintenance writes —
//! behind a `parking_lot` read-write lock, so searches proceed in
//! parallel and §3.2 edits serialise briefly.

use crate::{DbError, ImageDatabase, QueryOptions, RecordId, SearchHit};
use be2d_core::{BeString2D, SymbolicImage};
use be2d_geometry::{ObjectClass, Rect, Scene};
use parking_lot::RwLock;
use std::sync::Arc;

/// A cheaply clonable, thread-safe handle to an [`ImageDatabase`].
///
/// All search methods take a read lock (concurrent); all mutation
/// methods take the write lock (exclusive). Clones share the same
/// underlying database.
///
/// # Example
///
/// ```
/// use be2d_db::{SharedImageDatabase, QueryOptions};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = SharedImageDatabase::new();
/// let scene = SceneBuilder::new(10, 10).object("A", (1, 5, 1, 5)).build()?;
/// db.insert_scene("one", &scene)?;
///
/// let reader = db.clone();
/// let handle = std::thread::spawn(move || {
///     reader.search_scene(&scene, &QueryOptions::default()).len()
/// });
/// assert_eq!(handle.join().expect("reader thread"), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedImageDatabase {
    inner: Arc<RwLock<ImageDatabase>>,
}

impl SharedImageDatabase {
    /// Creates an empty shared database.
    #[must_use]
    pub fn new() -> Self {
        SharedImageDatabase::default()
    }

    /// Wraps an existing database.
    #[must_use]
    pub fn from_database(db: ImageDatabase) -> Self {
        SharedImageDatabase {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Number of live records (read lock).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the database is empty (read lock).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Indexes a scene (write lock). See
    /// [`ImageDatabase::insert_scene`].
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_scene(&self, name: &str, scene: &Scene) -> Result<RecordId, DbError> {
        self.inner.write().insert_scene(name, scene)
    }

    /// Stores a pre-converted symbolic picture (write lock).
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_symbolic(&self, name: &str, img: SymbolicImage) -> Result<RecordId, DbError> {
        self.inner.write().insert_symbolic(name, img)
    }

    /// Removes a record (write lock).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] for dead ids.
    pub fn remove(&self, id: RecordId) -> Result<(), DbError> {
        self.inner.write().remove(id).map(|_| ())
    }

    /// Incremental §3.2 object insertion (write lock).
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn add_object(&self, id: RecordId, class: &ObjectClass, mbr: Rect) -> Result<(), DbError> {
        self.inner.write().add_object(id, class, mbr)
    }

    /// Incremental §3.2 object removal (write lock).
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn remove_object(
        &self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        self.inner.write().remove_object(id, class, mbr)
    }

    /// Ranked similarity search with a scene query (read lock,
    /// concurrent).
    #[must_use]
    pub fn search_scene(&self, query: &Scene, options: &QueryOptions) -> Vec<SearchHit> {
        self.inner.read().search_scene(query, options)
    }

    /// Ranked similarity search with a prepared BE-string query (read
    /// lock, concurrent).
    #[must_use]
    pub fn search(&self, query: &BeString2D, options: &QueryOptions) -> Vec<SearchHit> {
        self.inner.read().search(query, options)
    }

    /// Snapshot of the current database state (read lock + clone).
    #[must_use]
    pub fn snapshot(&self) -> ImageDatabase {
        self.inner.read().clone()
    }

    /// Atomically replaces the whole database (write lock), returning
    /// the previous contents — the restore path of a snapshot/restore
    /// cycle.
    pub fn replace(&self, db: ImageDatabase) -> ImageDatabase {
        std::mem::replace(&mut self.inner.write(), db)
    }

    /// Saves a consistent snapshot to a file.
    ///
    /// The read lock is held only while cloning; serialisation and the
    /// crash-safe write ([`ImageDatabase::save`]) happen outside it, so
    /// searches and edits are barely disturbed by a snapshot under
    /// traffic.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from serialisation or file I/O.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<usize, DbError> {
        let snapshot = self.snapshot();
        snapshot.save(path)?;
        Ok(snapshot.len())
    }

    /// Ranked similarity search with textual BE-strings (read lock,
    /// concurrent). See [`ImageDatabase::search_text`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the query strings.
    pub fn search_text(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        self.inner.read().search_text(u, v, options)
    }

    /// Runs a closure with shared read access — for multi-call read
    /// sequences that must observe one consistent state.
    pub fn with_read<R>(&self, f: impl FnOnce(&ImageDatabase) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    fn scene(x: i64) -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (x, x + 10, 10, 20))
            .object("B", (50, 90, 50, 90))
            .build()
            .unwrap()
    }

    #[test]
    fn clones_share_state() {
        let db = SharedImageDatabase::new();
        assert!(db.is_empty());
        let other = db.clone();
        db.insert_scene("one", &scene(0)).unwrap();
        assert_eq!(other.len(), 1);
        let snap = other.snapshot();
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let db = SharedImageDatabase::new();
        for i in 0..20 {
            db.insert_scene(&format!("img{i}"), &scene(i)).unwrap();
        }
        let query = scene(3);
        std::thread::scope(|s| {
            // readers hammer searches while a writer inserts and removes
            let mut handles = Vec::new();
            for _ in 0..4 {
                let db = db.clone();
                let query = query.clone();
                handles.push(s.spawn(move || {
                    let mut total = 0usize;
                    for _ in 0..50 {
                        total += db.search_scene(&query, &QueryOptions::default()).len();
                    }
                    total
                }));
            }
            let writer = db.clone();
            s.spawn(move || {
                for i in 20..40 {
                    let id = writer
                        .insert_scene(&format!("img{i}"), &scene(i % 30))
                        .unwrap();
                    if i % 3 == 0 {
                        writer.remove(id).unwrap();
                    }
                }
            });
            for h in handles {
                assert!(h.join().expect("reader") > 0);
            }
        });
        assert!(db.len() >= 20, "writer inserts survived");
    }

    #[test]
    fn with_read_sees_consistent_state() {
        let db = SharedImageDatabase::new();
        db.insert_scene("one", &scene(0)).unwrap();
        let (len, hit_count) = db.with_read(|inner| {
            (
                inner.len(),
                inner
                    .search_scene(&scene(0), &QueryOptions::default())
                    .len(),
            )
        });
        assert_eq!(len, 1);
        assert_eq!(hit_count, 1);
    }

    #[test]
    fn replace_swaps_contents() {
        let db = SharedImageDatabase::new();
        db.insert_scene("old", &scene(0)).unwrap();
        let mut fresh = crate::ImageDatabase::new();
        fresh.insert_scene("new-a", &scene(1)).unwrap();
        fresh.insert_scene("new-b", &scene(2)).unwrap();
        let old = db.replace(fresh);
        assert_eq!(old.len(), 1);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn snapshot_save_and_text_search() {
        let db = SharedImageDatabase::new();
        db.insert_scene("one", &scene(0)).unwrap();
        let path =
            std::env::temp_dir().join(format!("be2d_shared_snap_{}.json", std::process::id()));
        assert_eq!(db.save_snapshot(&path).unwrap(), 1);
        let restored = crate::ImageDatabase::load(&path).unwrap();
        assert_eq!(restored.len(), 1);
        std::fs::remove_file(&path).ok();

        let target = db
            .snapshot()
            .iter()
            .next()
            .unwrap()
            .symbolic
            .to_be_string_2d();
        let hits = db
            .search_text(
                &target.x().to_string(),
                &target.y().to_string(),
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(hits[0].name, "one");
        assert!(db
            .search_text("garbage", "E", &QueryOptions::default())
            .is_err());
    }

    #[test]
    fn edit_errors_propagate() {
        let db = SharedImageDatabase::new();
        assert!(db.remove(RecordId(5)).is_err());
        let id = db.insert_scene("one", &scene(0)).unwrap();
        assert!(db
            .add_object(id, &ObjectClass::new("Z"), Rect::new(0, 500, 0, 5).unwrap())
            .is_err());
        assert!(db
            .remove_object(id, &ObjectClass::new("Z"), Rect::new(0, 5, 0, 5).unwrap())
            .is_err());
    }
}
