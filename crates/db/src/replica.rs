//! Replicated shards: read-scaling replica sets with health, fault
//! injection, and rebuild-then-rejoin recovery.
//!
//! The sharded database ([`ShardedImageDatabase`]) split the corpus
//! into N independently locked partitions; this layer puts **R
//! replicas behind every shard**. Writes (insert, remove, §3.2 object
//! edits, restore) fan out synchronously to every healthy replica of
//! the owning shard, while searches scatter to **one chosen replica
//! per shard** — a round-robin picker that routes around failed
//! replicas — before the same top-k heap merge the sharded database
//! uses. Because every healthy replica of a shard holds identical
//! records, the ranked result is **bit-identical** to the unreplicated
//! (and single-shard) ranking, ties included (see
//! `crates/db/tests/replicated.rs`).
//!
//! # Health, failure, recovery
//!
//! Each replica carries a health bit. [`fail_replica`] takes a replica
//! out of rotation (the fault-injection hook tests and the server's
//! admin endpoint use); reads and writes route around it from that
//! moment on, so it goes stale. [`rebuild_replica`] brings it back:
//! the shard's write traffic is paused briefly (readers keep flowing),
//! the replica clones the state of a healthy peer, and only then
//! rejoins rotation. A shard's **last** healthy replica can never be
//! failed — every shard always serves.
//!
//! # Consistency
//!
//! Writes to one shard are serialised by a per-shard write mutex and
//! applied replica-by-replica, so two reads hitting different replicas
//! of the same shard may observe a write at slightly different times
//! (the in-process analogue of replica lag, bounded by one fan-out).
//! Any single result set is always internally consistent, and a
//! quiesced database answers identically through every replica.
//!
//! [`ShardedImageDatabase`]: crate::ShardedImageDatabase
//! [`fail_replica`]: ReplicatedImageDatabase::fail_replica
//! [`rebuild_replica`]: ReplicatedImageDatabase::rebuild_replica

use crate::shard::{
    fresh_snapshot_id, heal_next_id, load_snapshot_at, merge_top_k, reroute_shards,
    save_snapshot_at, scatter_scan, shard_cannot_contribute, PreviousSnapshot, SnapshotPayload,
};
use crate::{DbError, ImageDatabase, ImageRecord, QueryOptions, RecordId, SearchHit};
use be2d_core::{BeString2D, SymbolicImage};
use be2d_geometry::{ObjectClass, Rect, Scene};
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cheaply clonable, thread-safe image database of N shards × R
/// replicas.
///
/// With `replicas = 1` it behaves exactly like a
/// [`ShardedImageDatabase`](crate::ShardedImageDatabase) with the same
/// shard count; with more replicas, reads spread across copies and a
/// failed copy can be rebuilt from a healthy peer without downtime.
///
/// # Example
///
/// ```
/// use be2d_db::{QueryOptions, ReplicatedImageDatabase};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = ReplicatedImageDatabase::with_topology(2, 2);
/// let scene = SceneBuilder::new(10, 10).object("A", (1, 5, 1, 5)).build()?;
/// let id = db.insert_scene("one", &scene)?;
///
/// // Fail one copy of the owning shard: reads route around it.
/// db.fail_replica(0, 1)?;
/// assert_eq!(db.search_scene(&scene, &QueryOptions::default())[0].id, id);
///
/// // Rebuild it from the healthy peer and rejoin rotation.
/// db.rebuild_replica(0, 1)?;
/// assert!(db.replica_health().iter().flatten().all(|&h| h));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedImageDatabase {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<ReplicaSet>,
    /// The next global id; increments on every insert, never reused.
    next_id: AtomicUsize,
    /// Stable id of this database instance (see the sharded database's
    /// incremental-snapshot bookkeeping).
    instance: u64,
    /// Shards the scatter planner skipped (see `/stats`).
    planner_skipped: AtomicU64,
    /// Serialises snapshot/restore file I/O, exactly like the sharded
    /// database's `snapshot_io`.
    snapshot_io: parking_lot::Mutex<()>,
}

/// One shard's replica set: R copies of the shard behind their own
/// reader-writer locks, plus health bits and the write serialiser.
#[derive(Debug)]
struct ReplicaSet {
    replicas: Vec<RwLock<ImageDatabase>>,
    /// `health[r]` — whether replica r is in rotation.
    health: Vec<AtomicBool>,
    /// Round-robin read picker.
    cursor: AtomicUsize,
    /// Serialises write fan-outs, rebuilds, and health transitions on
    /// this shard, so a writer's view of the healthy set cannot go
    /// stale mid-fan-out. Readers never take it.
    write_order: parking_lot::Mutex<()>,
    /// Per-shard edit counter (incremental-snapshot key).
    edits: AtomicU64,
}

impl ReplicaSet {
    fn new(replicas: usize) -> ReplicaSet {
        ReplicaSet {
            replicas: (0..replicas)
                .map(|_| RwLock::new(ImageDatabase::new()))
                .collect(),
            health: (0..replicas).map(|_| AtomicBool::new(true)).collect(),
            cursor: AtomicUsize::new(0),
            write_order: parking_lot::Mutex::new(()),
            edits: AtomicU64::new(0),
        }
    }

    /// Round-robin pick of a healthy replica (reads route around failed
    /// copies). Falls back to the raw round-robin slot if no replica is
    /// healthy — unreachable while the last-healthy guard holds.
    fn pick(&self) -> usize {
        let r = self.replicas.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % r;
        (0..r)
            .map(|step| (start + step) % r)
            .find(|&candidate| self.health[candidate].load(Ordering::SeqCst))
            .unwrap_or(start)
    }

    /// The lowest-indexed healthy replica (the deterministic choice for
    /// snapshots, rebuild sources, and occupancy checks).
    fn first_healthy(&self) -> usize {
        (0..self.replicas.len())
            .find(|&r| self.health[r].load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    fn healthy_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| h.load(Ordering::SeqCst))
            .count()
    }

    /// Applies one mutation to every healthy replica. The caller must
    /// hold `write_order`. The first healthy replica's verdict is the
    /// operation's result: database mutations are deterministic, so if
    /// it fails nothing was applied anywhere and the error propagates;
    /// if a *later* replica then disagrees it has diverged and is taken
    /// out of rotation rather than serve inconsistent reads.
    fn fan_out<R>(
        &self,
        shard: usize,
        op: impl Fn(&mut ImageDatabase) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let mut first: Option<R> = None;
        for (i, replica) in self.replicas.iter().enumerate() {
            if !self.health[i].load(Ordering::SeqCst) {
                continue;
            }
            let mut guard = replica.write();
            match op(&mut guard) {
                Ok(result) => {
                    if first.is_none() {
                        first = Some(result);
                    }
                }
                Err(e) if first.is_none() => return Err(e),
                Err(_) => {
                    drop(guard);
                    self.health[i].store(false, Ordering::SeqCst);
                }
            }
        }
        // Bumped before `write_order` is released (the caller holds it),
        // pairing counter with state for incremental snapshots.
        self.edits.fetch_add(1, Ordering::SeqCst);
        first.ok_or_else(|| DbError::Replica {
            reason: format!("shard {shard} has no healthy replica"),
        })
    }
}

/// Point-in-time statistics of a [`ReplicatedImageDatabase`], observed
/// under one simultaneous read lock across every replica (never torn by
/// a concurrent write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Live records per shard (from each shard's first healthy replica).
    pub shard_records: Vec<usize>,
    /// Live records per replica: `replica_records[shard][replica]`. A
    /// failed replica's count goes stale until its rebuild.
    pub replica_records: Vec<Vec<usize>>,
    /// Health bits per replica: `replica_health[shard][replica]`.
    pub replica_health: Vec<Vec<bool>>,
    /// Distinct object classes across all shards (union).
    pub classes: usize,
    /// Total objects across all records.
    pub objects: usize,
}

impl Default for ReplicatedImageDatabase {
    fn default() -> Self {
        ReplicatedImageDatabase::with_topology(1, 1)
    }
}

impl ReplicatedImageDatabase {
    /// A single shard with a single replica (drop-in for the plain
    /// database).
    #[must_use]
    pub fn new() -> Self {
        ReplicatedImageDatabase::default()
    }

    /// A database of `shards` × `replicas` (both clamped to ≥ 1).
    #[must_use]
    pub fn with_topology(shards: usize, replicas: usize) -> Self {
        let shards = shards.max(1);
        let replicas = replicas.max(1);
        ReplicatedImageDatabase {
            inner: Arc::new(Inner {
                shards: (0..shards).map(|_| ReplicaSet::new(replicas)).collect(),
                next_id: AtomicUsize::new(0),
                instance: fresh_snapshot_id(),
                planner_skipped: AtomicU64::new(0),
                snapshot_io: parking_lot::Mutex::new(()),
            }),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Replicas per shard.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.inner.shards[0].replicas.len()
    }

    /// Total live records (counted on each shard's first healthy
    /// replica).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|set| set.replicas[set.first_healthy()].read().len())
            .sum()
    }

    /// Whether no shard holds a record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Health bits per replica: `result[shard][replica]`.
    #[must_use]
    pub fn replica_health(&self) -> Vec<Vec<bool>> {
        self.inner
            .shards
            .iter()
            .map(|set| {
                set.health
                    .iter()
                    .map(|h| h.load(Ordering::SeqCst))
                    .collect()
            })
            .collect()
    }

    /// Cumulative count of shards the scatter planner skipped because
    /// their class postings could not contribute a candidate.
    #[must_use]
    pub fn planner_skipped(&self) -> u64 {
        self.inner.planner_skipped.load(Ordering::Relaxed)
    }

    /// All statistics under one simultaneous read lock across every
    /// replica of every shard.
    #[must_use]
    pub fn stats(&self) -> ReplicaStats {
        let guards: Vec<Vec<_>> = self
            .inner
            .shards
            .iter()
            .map(|set| set.replicas.iter().map(RwLock::read).collect())
            .collect();
        let mut classes: BTreeSet<ObjectClass> = BTreeSet::new();
        let mut stats = ReplicaStats {
            shard_records: Vec::with_capacity(guards.len()),
            replica_records: Vec::with_capacity(guards.len()),
            replica_health: self.replica_health(),
            classes: 0,
            objects: 0,
        };
        for (set, replica_guards) in self.inner.shards.iter().zip(&guards) {
            let primary = &replica_guards[set.first_healthy()];
            classes.extend(primary.class_index().classes().cloned());
            stats.objects += primary.object_count();
            stats.shard_records.push(primary.len());
            stats
                .replica_records
                .push(replica_guards.iter().map(|g| g.len()).collect());
        }
        stats.classes = classes.len();
        stats
    }

    /// Indexes a scene (Algorithm-1 conversion outside all locks).
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_scene(&self, name: &str, scene: &Scene) -> Result<RecordId, DbError> {
        self.insert_symbolic(name, SymbolicImage::from_scene(scene))
    }

    /// Stores a pre-converted symbolic picture in every healthy replica
    /// of the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_symbolic(
        &self,
        name: &str,
        symbolic: SymbolicImage,
    ) -> Result<RecordId, DbError> {
        // Same id-allocation protocol as the sharded database: ids are
        // handed out before any lock, so a slot may be occupied by a
        // concurrently restored corpus — skip to a fresh id (the restore
        // healed the counter above every restored slot).
        for _ in 0..64 {
            let id = RecordId(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
            let (shard, local) = self.inner.route(id);
            let set = &self.inner.shards[shard];
            let _order = set.write_order.lock();
            if set.replicas[set.first_healthy()]
                .read()
                .get(local)
                .is_some()
            {
                continue;
            }
            set.fan_out(shard, |db| {
                db.insert_symbolic_with_id(local, name, symbolic.clone())
            })?;
            return Ok(id);
        }
        Err(DbError::Persist {
            reason: "insert kept colliding with concurrently restored records".into(),
        })
    }

    /// Removes a record from every healthy replica of its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] (with the global id) for dead
    /// or unassigned ids.
    pub fn remove(&self, id: RecordId) -> Result<(), DbError> {
        let (shard, local) = self.inner.route(id);
        let set = &self.inner.shards[shard];
        let _order = set.write_order.lock();
        set.fan_out(shard, |db| db.remove(local).map(|_| ()))
            .map_err(|e| globalise_error(e, id))
    }

    /// Looks a record up on one healthy replica, returning a clone with
    /// its **global** id.
    #[must_use]
    pub fn get(&self, id: RecordId) -> Option<ImageRecord> {
        let (shard, local) = self.inner.route(id);
        let set = &self.inner.shards[shard];
        let record = set.replicas[set.pick()].read().get(local).cloned();
        record.map(|mut r| {
            r.id = id;
            r
        })
    }

    /// Incremental §3.2 object insertion, fanned out to every healthy
    /// replica of the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn add_object(&self, id: RecordId, class: &ObjectClass, mbr: Rect) -> Result<(), DbError> {
        let (shard, local) = self.inner.route(id);
        let set = &self.inner.shards[shard];
        let _order = set.write_order.lock();
        set.fan_out(shard, |db| db.add_object(local, class, mbr))
            .map_err(|e| globalise_error(e, id))
    }

    /// Incremental §3.2 object removal, fanned out to every healthy
    /// replica of the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn remove_object(
        &self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        let (shard, local) = self.inner.route(id);
        let set = &self.inner.shards[shard];
        let _order = set.write_order.lock();
        set.fan_out(shard, |db| db.remove_object(local, class, mbr))
            .map_err(|e| globalise_error(e, id))
    }

    /// Scatter-gather ranked search over **one chosen replica per
    /// shard** (round-robin among healthy copies), merged with the same
    /// top-k heap the sharded database uses. The scatter planner skips
    /// shards whose class postings provably cannot contribute (exact
    /// inverted-index candidates only).
    ///
    /// Ranking — ids, scores, and tie-breaks — is bit-identical to an
    /// unreplicated [`ShardedImageDatabase`](crate::ShardedImageDatabase)
    /// (and to a single [`ImageDatabase`]) over the same records.
    #[must_use]
    pub fn search(&self, query: &BeString2D, options: &QueryOptions) -> Vec<SearchHit> {
        let n = self.inner.shards.len();
        if n == 1 {
            let set = &self.inner.shards[0];
            return set.replicas[set.pick()].read().search(query, options);
        }
        let query_classes: Vec<ObjectClass> = query.class_counts().into_keys().collect();
        let per_shard = scatter_scan(
            n,
            // next_id is a cheap upper bound on the total record count.
            self.inner.next_id.load(Ordering::Relaxed),
            |shard| {
                let set = &self.inner.shards[shard];
                let guard = set.replicas[set.pick()].read();
                if shard_cannot_contribute(&guard, &query_classes, options) {
                    self.inner.planner_skipped.fetch_add(1, Ordering::Relaxed);
                    return Vec::new();
                }
                let mut hits = guard.search(query, options);
                for hit in &mut hits {
                    hit.id = RecordId(hit.id.index() * n + shard);
                }
                hits
            },
        );
        merge_top_k(per_shard, options.top_k)
    }

    /// Scatter-gather search with a scene query (converted once, outside
    /// all locks).
    #[must_use]
    pub fn search_scene(&self, query: &Scene, options: &QueryOptions) -> Vec<SearchHit> {
        self.search(&be2d_core::convert_scene(query), options)
    }

    /// Scatter-gather search with textual BE-strings (parsed once).
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the query strings.
    pub fn search_text(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        let query = BeString2D::parse(u, v).map_err(DbError::from)?;
        Ok(self.search(&query, options))
    }

    /// Takes a replica out of rotation — the fault-injection hook.
    /// Reads and writes route around it immediately; its contents go
    /// stale until [`rebuild_replica`](Self::rebuild_replica).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] for out-of-range coordinates or when
    /// the replica is its shard's **last healthy copy** (every shard
    /// must keep serving).
    pub fn fail_replica(&self, shard: usize, replica: usize) -> Result<(), DbError> {
        let set = self.checked_set(shard, replica)?;
        let _order = set.write_order.lock();
        if set.health[replica].load(Ordering::SeqCst) && set.healthy_count() == 1 {
            return Err(DbError::Replica {
                reason: format!(
                    "replica {replica} is shard {shard}'s last healthy copy and cannot be failed"
                ),
            });
        }
        set.health[replica].store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Rebuilds a failed replica from a healthy peer and rejoins it to
    /// rotation. The shard's write traffic pauses for the duration of
    /// the clone (readers keep flowing on the healthy replicas), so the
    /// rebuilt copy is exactly up to date the moment it rejoins.
    /// Rebuilding an already-healthy replica is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] for out-of-range coordinates.
    pub fn rebuild_replica(&self, shard: usize, replica: usize) -> Result<(), DbError> {
        let set = self.checked_set(shard, replica)?;
        let _order = set.write_order.lock();
        if set.health[replica].load(Ordering::SeqCst) {
            return Ok(());
        }
        let source = set.first_healthy();
        let rebuilt = set.replicas[source].read().clone();
        *set.replicas[replica].write() = rebuilt;
        set.health[replica].store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Saves a consistent, incremental sharded snapshot (one file per
    /// shard, cloned from each shard's first healthy replica) in the
    /// exact format of
    /// [`ShardedImageDatabase::save_snapshot`](crate::ShardedImageDatabase::save_snapshot)
    /// — the two deployments' snapshots are interchangeable. Write
    /// traffic pauses for the duration of the clone so the snapshot is
    /// one global state; readers keep flowing.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from serialisation or file I/O.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, DbError> {
        let _io = self.inner.snapshot_io.lock();
        // Parsed before any lock, so deciding what to skip costs no
        // lock or write-pause time.
        let previous = PreviousSnapshot::load(path, self.inner.instance, self.inner.shards.len());
        let payload = {
            let _orders: Vec<_> = self
                .inner
                .shards
                .iter()
                .map(|set| set.write_order.lock())
                .collect();
            let guards: Vec<_> = self
                .inner
                .shards
                .iter()
                .map(|set| set.replicas[set.first_healthy()].read())
                .collect();
            let edits: Vec<u64> = self
                .inner
                .shards
                .iter()
                .map(|set| set.edits.load(Ordering::SeqCst))
                .collect();
            // Only shards dirtied since the previous snapshot are
            // cloned at all: snapshot cost (and the write pause) is
            // proportional to write traffic, not corpus size.
            let shards: Vec<Option<ImageDatabase>> = guards
                .iter()
                .enumerate()
                .map(|(shard, guard)| {
                    (!previous.reusable(path, shard, edits[shard])).then(|| (**guard).clone())
                })
                .collect();
            SnapshotPayload {
                records: guards.iter().map(|g| g.len()).sum(),
                shards,
                next_id: self.inner.next_id.load(Ordering::SeqCst),
                edits,
                writer: self.inner.instance,
            }
        };
        save_snapshot_at(path, payload, &previous)
    }

    /// Restores from a sharded manifest (v1 or v2) or a plain
    /// [`ImageDatabase::save`] file, replacing the contents of **every
    /// replica** — which also heals all failed replicas, since each now
    /// holds the same freshly restored state. Records are re-routed when
    /// the shard topology changed; ids are preserved either way.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] for malformed or inconsistent
    /// snapshot files and propagates I/O errors. On error the in-memory
    /// database is untouched.
    pub fn restore_from(&self, path: &Path) -> Result<usize, DbError> {
        let _io = self.inner.snapshot_io.lock();
        let (saved, next_id) = load_snapshot_at(path)?;
        let n = self.inner.shards.len();
        let rebuilt = reroute_shards(saved, n)?;
        let records = rebuilt.iter().map(ImageDatabase::len).sum();
        let required = heal_next_id(&rebuilt, next_id);

        // All write-order mutexes (shard order), then all replica write
        // locks, before the first swap: readers never observe a
        // half-restored state.
        let _orders: Vec<_> = self
            .inner
            .shards
            .iter()
            .map(|set| set.write_order.lock())
            .collect();
        let mut guards: Vec<Vec<_>> = self
            .inner
            .shards
            .iter()
            .map(|set| set.replicas.iter().map(RwLock::write).collect())
            .collect();
        for ((set, replica_guards), db) in
            self.inner.shards.iter().zip(guards.iter_mut()).zip(rebuilt)
        {
            for guard in replica_guards.iter_mut() {
                **guard = db.clone();
            }
            for health in &set.health {
                health.store(true, Ordering::SeqCst);
            }
            set.edits.fetch_add(1, Ordering::SeqCst);
        }
        // `fetch_max`, never `store` — see the sharded database's
        // restore for the insert-racing-restore argument.
        self.inner.next_id.fetch_max(required, Ordering::SeqCst);
        Ok(records)
    }

    /// Runs a closure with shared read access to one specific replica —
    /// for tests and diagnostics that must inspect a *particular* copy.
    ///
    /// # Panics
    ///
    /// Panics when `shard` or `replica` is out of range.
    pub fn with_replica_read<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&ImageDatabase) -> R,
    ) -> R {
        f(&self.inner.shards[shard].replicas[replica].read())
    }

    /// Bounds-checks replica coordinates.
    fn checked_set(&self, shard: usize, replica: usize) -> Result<&ReplicaSet, DbError> {
        let set = self
            .inner
            .shards
            .get(shard)
            .ok_or_else(|| DbError::Replica {
                reason: format!(
                    "shard {shard} out of range (shards: {})",
                    self.inner.shards.len()
                ),
            })?;
        if replica >= set.replicas.len() {
            return Err(DbError::Replica {
                reason: format!(
                    "replica {replica} out of range (replicas: {})",
                    set.replicas.len()
                ),
            });
        }
        Ok(set)
    }
}

impl Inner {
    /// Global id → (owning shard, local id inside it).
    fn route(&self, id: RecordId) -> (usize, RecordId) {
        let n = self.shards.len();
        (id.index() % n, RecordId(id.index() / n))
    }
}

/// Rewrites shard-local [`DbError::UnknownRecord`] ids back to the
/// global id the caller used.
fn globalise_error(e: DbError, global: RecordId) -> DbError {
    match e {
        DbError::UnknownRecord { .. } => DbError::UnknownRecord { id: global.index() },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    fn scene(x: i64) -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (x, x + 10, 10, 20))
            .object("B", (50, 90, 50, 90))
            .build()
            .unwrap()
    }

    fn filled(shards: usize, replicas: usize, n: i64) -> ReplicatedImageDatabase {
        let db = ReplicatedImageDatabase::with_topology(shards, replicas);
        for i in 0..n {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        db
    }

    #[test]
    fn writes_fan_out_to_every_replica() {
        let db = filled(2, 3, 8);
        assert_eq!(db.len(), 8);
        for shard in 0..2 {
            for replica in 0..3 {
                assert_eq!(
                    db.with_replica_read(shard, replica, ImageDatabase::len),
                    4,
                    "shard {shard} replica {replica}"
                );
            }
        }
        db.remove(RecordId(3)).unwrap();
        for replica in 0..3 {
            assert_eq!(db.with_replica_read(1, replica, ImageDatabase::len), 3);
        }
        assert!(matches!(
            db.remove(RecordId(3)),
            Err(DbError::UnknownRecord { id: 3 })
        ));
    }

    #[test]
    fn object_edits_fan_out() {
        let db = filled(2, 2, 4);
        let class = ObjectClass::new("X");
        let mbr = Rect::new(0, 5, 0, 5).unwrap();
        db.add_object(RecordId(1), &class, mbr).unwrap();
        for replica in 0..2 {
            let objects =
                db.with_replica_read(1, replica, |d| d.get(RecordId(0)).unwrap().symbolic.clone());
            assert_eq!(objects.object_count(), 3, "replica {replica}");
        }
        db.remove_object(RecordId(1), &class, mbr).unwrap();
        assert_eq!(db.get(RecordId(1)).unwrap().symbolic.object_count(), 2);
        assert!(db
            .add_object(RecordId(77), &class, mbr)
            .is_err_and(|e| matches!(e, DbError::UnknownRecord { id: 77 })));
    }

    #[test]
    fn reads_route_around_failed_replicas() {
        let db = filled(2, 2, 12);
        let query = scene(3);
        let before = db.search_scene(&query, &QueryOptions::default());

        db.fail_replica(0, 0).unwrap();
        db.fail_replica(1, 1).unwrap();
        // Every read still answers, from the surviving copies.
        for _ in 0..8 {
            let hits = db.search_scene(&query, &QueryOptions::default());
            assert_eq!(hits.len(), before.len());
            for (a, b) in before.iter().zip(&hits) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert_eq!(db.len(), 12);
        assert!(db.get(RecordId(5)).is_some());

        // The last healthy copy of a shard cannot be failed.
        let err = db.fail_replica(0, 1).unwrap_err();
        assert!(matches!(err, DbError::Replica { .. }), "{err}");
        assert!(err.to_string().contains("last healthy"), "{err}");
    }

    #[test]
    fn failed_replica_goes_stale_then_rebuilds() {
        let db = filled(1, 2, 4);
        db.fail_replica(0, 1).unwrap();
        // Writes land only on the healthy replica; the failed one is
        // frozen at 4 records.
        db.insert_scene("late", &scene(7)).unwrap();
        db.remove(RecordId(0)).unwrap();
        assert_eq!(db.with_replica_read(0, 0, ImageDatabase::len), 4);
        assert_eq!(db.with_replica_read(0, 1, ImageDatabase::len), 4);
        assert!(
            db.with_replica_read(0, 1, |d| d.get(RecordId(0)).is_some()),
            "stale replica still holds the removed record"
        );
        assert!(db.with_replica_read(0, 0, |d| d.get(RecordId(0)).is_none()));

        // Rebuild clones the healthy peer bit-for-bit and rejoins.
        db.rebuild_replica(0, 1).unwrap();
        let a = db.with_replica_read(0, 0, Clone::clone);
        let b = db.with_replica_read(0, 1, Clone::clone);
        assert_eq!(a, b, "rebuilt replica matches its source exactly");
        assert!(db.replica_health().iter().flatten().all(|&h| h));

        // Rebuilding a healthy replica is a no-op; bad coordinates err.
        db.rebuild_replica(0, 1).unwrap();
        assert!(db.fail_replica(9, 0).is_err());
        assert!(db.rebuild_replica(0, 9).is_err());
    }

    #[test]
    fn search_matches_sharded_and_single() {
        use crate::ShardedImageDatabase;
        let query = scene(7);
        let single = {
            let mut db = ImageDatabase::new();
            for i in 0..30 {
                db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
            }
            db
        };
        let expect = single.search_scene(&query, &QueryOptions::default());
        let sharded = ShardedImageDatabase::with_shards(3);
        for i in 0..30 {
            sharded
                .insert_scene(&format!("img{i}"), &scene(i % 40))
                .unwrap();
        }
        let sharded_hits = sharded.search_scene(&query, &QueryOptions::default());
        for replicas in [1usize, 2, 3] {
            let db = filled(3, replicas, 30);
            let hits = db.search_scene(&query, &QueryOptions::default());
            assert_eq!(hits.len(), expect.len());
            for ((a, b), c) in expect.iter().zip(&hits).zip(&sharded_hits) {
                assert_eq!(a.id, b.id, "{replicas} replicas");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(b.id, c.id);
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_and_cross_type_restore() {
        let dir = std::env::temp_dir().join(format!("be2d_replica_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 2, 9);
        db.remove(RecordId(4)).unwrap();
        db.fail_replica(1, 0).unwrap();
        assert_eq!(db.save_snapshot(&path).unwrap(), 8);

        // A restore replaces every replica and heals the failed one.
        let back = ReplicatedImageDatabase::with_topology(2, 2);
        back.fail_replica(0, 1).unwrap();
        assert_eq!(back.restore_from(&path).unwrap(), 8);
        assert!(back.replica_health().iter().flatten().all(|&h| h));
        assert!(back.get(RecordId(4)).is_none());
        assert_eq!(back.get(RecordId(7)).unwrap().name, "img7");
        assert_eq!(back.insert_scene("next", &scene(1)).unwrap(), RecordId(9));

        // The snapshot format is interchangeable with the sharded
        // database's, topology changes included.
        let sharded = crate::ShardedImageDatabase::with_shards(3);
        assert_eq!(sharded.restore_from(&path).unwrap(), 8);
        assert_eq!(sharded.get(RecordId(7)).unwrap().name, "img7");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_robin_spreads_reads() {
        let db = filled(1, 3, 6);
        // Consecutive picks rotate over the healthy replicas.
        let set = &db.inner.shards[0];
        let picks: Vec<usize> = (0..6).map(|_| set.pick()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        set.health[1].store(false, Ordering::SeqCst);
        let picks: Vec<usize> = (0..4).map(|_| set.pick()).collect();
        assert!(picks.iter().all(|&p| p != 1), "failed replica skipped");
    }

    #[test]
    fn clones_share_state_and_stats_report_topology() {
        let db = ReplicatedImageDatabase::with_topology(2, 2);
        let other = db.clone();
        db.insert_scene("one", &scene(0)).unwrap();
        assert_eq!(other.len(), 1);

        let stats = other.stats();
        assert_eq!(stats.shard_records, vec![1, 0]);
        assert_eq!(stats.replica_records, vec![vec![1, 1], vec![0, 0]]);
        assert_eq!(stats.replica_health, vec![vec![true, true]; 2]);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.objects, 2);
        assert_eq!(other.replica_count(), 2);
        assert_eq!(other.shard_count(), 2);
        assert!(ReplicatedImageDatabase::with_topology(0, 0).shard_count() == 1);
    }
}
