//! Replicated shards: read-scaling replica sets with health, fault
//! injection, rebuild-then-rejoin recovery — and **online resharding**.
//!
//! The sharded database ([`ShardedImageDatabase`]) split the corpus
//! into N independently locked partitions; this layer puts **R
//! replicas behind every shard**. Writes (insert, remove, §3.2 object
//! edits, restore) fan out synchronously to every healthy replica of
//! the owning shard, while searches scatter to **one chosen replica
//! per shard** — a round-robin picker that routes around failed
//! replicas — before the same top-k heap merge the sharded database
//! uses. Because every healthy replica of a shard holds identical
//! records, the ranked result is **bit-identical** to the unreplicated
//! (and single-shard) ranking, ties included (see
//! `crates/db/tests/replicated.rs`).
//!
//! # Health, failure, recovery
//!
//! Each replica carries a health bit. [`fail_replica`] takes a replica
//! out of rotation (the fault-injection hook tests and the server's
//! admin endpoint use); reads and writes route around it from that
//! moment on, so it goes stale. [`rebuild_replica`] brings it back:
//! the shard's write traffic is paused briefly (readers keep flowing),
//! the replica clones the state of a healthy peer, and only then
//! rejoins rotation. A shard's **last** healthy replica can never be
//! failed — every shard always serves.
//!
//! # Consistency
//!
//! Writes to one shard are serialised by a per-shard write mutex and
//! applied replica-by-replica, so two reads hitting different replicas
//! of the same shard may observe a write at slightly different times
//! (the in-process analogue of replica lag, bounded by one fan-out).
//! Any single result set is always internally consistent, and a
//! quiesced database answers identically through every replica.
//!
//! # Online resharding
//!
//! The shard count can be changed **while serving** — see
//! [`Resharder`](crate::Resharder). The shard topology lives behind a
//! reader-writer lock; every operation routes through a
//! [`RoutingEpoch`](crate::epoch::RoutingEpoch) that says, per global
//! id, whether the record has already migrated to the new layout.
//! Correctness rests on three rules:
//!
//! 1. The migration **boundary only moves while every shard's
//!    write-order mutex and every replica's write lock are held** (one
//!    bounded batch at a time). A writer that holds its shard's
//!    write-order mutex — or a reader that holds any replica read lock
//!    — therefore observes a frozen boundary; both re-validate their
//!    route after locking and retry if a batch slipped in between.
//! 2. Multi-shard **searches hold a read lease on the migration gate**
//!    for the whole scatter; batch moves take the gate exclusively. A
//!    scatter therefore never observes a half-moved batch, so every
//!    record is seen exactly once and the merged ranking stays
//!    bit-identical mid-migration (`crates/db/tests/reshard.rs`).
//! 3. Topology **structure** (the shard vector itself) changes only
//!    under the topology write lock, taken with no other lock held —
//!    at reshard install (new empty shards appear) and finalise
//!    (drained shards disappear).
//!
//! [`ShardedImageDatabase`]: crate::ShardedImageDatabase
//! [`fail_replica`]: ReplicatedImageDatabase::fail_replica
//! [`rebuild_replica`]: ReplicatedImageDatabase::rebuild_replica

use crate::epoch::RoutingEpoch;
use crate::reshard::ReshardProgress;
use crate::shard::{
    fresh_snapshot_id, heal_next_id, load_snapshot_at, merge_top_k, reroute_shards,
    save_snapshot_at, scatter_scan, shard_cannot_contribute, PreviousSnapshot, SnapshotPayload,
};
use crate::{DbError, ImageDatabase, ImageRecord, QueryOptions, RecordId, SearchHit};
use be2d_core::{BeString2D, SymbolicImage};
use be2d_geometry::{ObjectClass, Rect, Scene};
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cheaply clonable, thread-safe image database of N shards × R
/// replicas whose shard count can be changed online.
///
/// With `replicas = 1` it behaves exactly like a
/// [`ShardedImageDatabase`](crate::ShardedImageDatabase) with the same
/// shard count; with more replicas, reads spread across copies and a
/// failed copy can be rebuilt from a healthy peer without downtime.
/// [`Resharder`](crate::Resharder) streams records between shards while
/// the database keeps serving.
///
/// # Example
///
/// ```
/// use be2d_db::{QueryOptions, ReplicatedImageDatabase};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = ReplicatedImageDatabase::with_topology(2, 2);
/// let scene = SceneBuilder::new(10, 10).object("A", (1, 5, 1, 5)).build()?;
/// let id = db.insert_scene("one", &scene)?;
///
/// // Fail one copy of the owning shard: reads route around it.
/// db.fail_replica(0, 1)?;
/// assert_eq!(db.search_scene(&scene, &QueryOptions::default())[0].id, id);
///
/// // Rebuild it from the healthy peer and rejoin rotation.
/// db.rebuild_replica(0, 1)?;
/// assert!(db.replica_health().iter().flatten().all(|&h| h));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedImageDatabase {
    pub(crate) inner: Arc<Inner>,
}

#[derive(Debug)]
pub(crate) struct Inner {
    /// The shard topology: replica sets plus the routing epoch. Taken
    /// for read by every operation; for write only at reshard install /
    /// finalise (with no other lock held).
    pub(crate) topology: RwLock<Topology>,
    /// The next global id; increments on every insert, never reused.
    pub(crate) next_id: AtomicUsize,
    /// Stable id of this database instance (see the sharded database's
    /// incremental-snapshot bookkeeping).
    pub(crate) instance: u64,
    /// Shards the scatter planner skipped (see `/stats`).
    pub(crate) planner_skipped: AtomicU64,
    /// Serialises snapshot/restore file I/O, exactly like the sharded
    /// database's `snapshot_io`.
    pub(crate) snapshot_io: parking_lot::Mutex<()>,
    /// The migration gate: multi-shard searches hold it shared for the
    /// whole scatter, reshard batch moves hold it exclusively — a
    /// scatter can never observe a half-moved batch.
    pub(crate) search_gate: RwLock<()>,
    /// One reshard (or restore) at a time.
    pub(crate) reshard_lock: parking_lot::Mutex<()>,
    /// Last observed reshard progress, for `/stats`.
    pub(crate) progress: parking_lot::Mutex<ReshardProgress>,
}

/// The live shard topology: one [`ReplicaSet`] per physical shard plus
/// the routing epoch. `old_n == new_n` when steady; during a reshard
/// the vector holds `max(old_n, new_n)` sets and `boundary` is the
/// migration watermark (see [`RoutingEpoch`]).
#[derive(Debug)]
pub(crate) struct Topology {
    pub(crate) sets: Vec<Arc<ReplicaSet>>,
    pub(crate) old_n: usize,
    pub(crate) new_n: usize,
    /// Stored atomically so batch moves can advance it under read
    /// access to the topology; see the locking rules in the module
    /// docs.
    pub(crate) boundary: AtomicUsize,
}

impl Topology {
    fn steady(n: usize, replicas: usize) -> Topology {
        Topology {
            sets: (0..n)
                .map(|_| Arc::new(ReplicaSet::new(replicas)))
                .collect(),
            old_n: n,
            new_n: n,
            boundary: AtomicUsize::new(0),
        }
    }

    /// Whether exactly one layout is live.
    pub(crate) fn is_steady(&self) -> bool {
        self.old_n == self.new_n
    }

    /// A point-in-time copy of the routing epoch. The boundary loaded
    /// here is only stable while the caller holds a lock that blocks
    /// batch moves (any write-order mutex, any replica lock, or the
    /// migration gate).
    pub(crate) fn epoch(&self) -> RoutingEpoch {
        RoutingEpoch {
            old_n: self.old_n,
            new_n: self.new_n,
            boundary: self.boundary.load(Ordering::SeqCst),
        }
    }

    /// Global id → (owning shard, local id) under the current epoch.
    fn route(&self, id: RecordId) -> (usize, RecordId) {
        let (shard, local) = self.epoch().route(id.index());
        (shard, RecordId(local))
    }
}

/// One shard's replica set: R copies of the shard behind their own
/// reader-writer locks, plus health bits and the write serialiser.
#[derive(Debug)]
pub(crate) struct ReplicaSet {
    pub(crate) replicas: Vec<RwLock<ImageDatabase>>,
    /// `health[r]` — whether replica r is in rotation.
    pub(crate) health: Vec<AtomicBool>,
    /// Round-robin read picker.
    pub(crate) cursor: AtomicUsize,
    /// Serialises write fan-outs, rebuilds, and health transitions on
    /// this shard, so a writer's view of the healthy set cannot go
    /// stale mid-fan-out. Readers never take it. Reshard batch moves
    /// take **all** shards' mutexes (in shard order) before moving
    /// anything, so holding any one of them freezes the boundary.
    pub(crate) write_order: parking_lot::Mutex<()>,
    /// Per-shard edit counter (incremental-snapshot key).
    pub(crate) edits: AtomicU64,
}

impl ReplicaSet {
    pub(crate) fn new(replicas: usize) -> ReplicaSet {
        ReplicaSet {
            replicas: (0..replicas)
                .map(|_| RwLock::new(ImageDatabase::new()))
                .collect(),
            health: (0..replicas).map(|_| AtomicBool::new(true)).collect(),
            cursor: AtomicUsize::new(0),
            write_order: parking_lot::Mutex::new(()),
            edits: AtomicU64::new(0),
        }
    }

    /// Round-robin pick of a healthy replica (reads route around failed
    /// copies). Falls back to the raw round-robin slot if no replica is
    /// healthy — unreachable while the last-healthy guard holds.
    fn pick(&self) -> usize {
        let r = self.replicas.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % r;
        (0..r)
            .map(|step| (start + step) % r)
            .find(|&candidate| self.health[candidate].load(Ordering::SeqCst))
            .unwrap_or(start)
    }

    /// The lowest-indexed healthy replica (the deterministic choice for
    /// snapshots, rebuild sources, and occupancy checks).
    pub(crate) fn first_healthy(&self) -> usize {
        (0..self.replicas.len())
            .find(|&r| self.health[r].load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    fn healthy_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| h.load(Ordering::SeqCst))
            .count()
    }

    /// Applies one mutation to every healthy replica. The caller must
    /// hold `write_order`. The first healthy replica's verdict is the
    /// operation's result: database mutations are deterministic, so if
    /// it fails nothing was applied anywhere and the error propagates;
    /// if a *later* replica then disagrees it has diverged and is taken
    /// out of rotation rather than serve inconsistent reads.
    fn fan_out<R>(
        &self,
        shard: usize,
        op: impl Fn(&mut ImageDatabase) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let mut first: Option<R> = None;
        for (i, replica) in self.replicas.iter().enumerate() {
            if !self.health[i].load(Ordering::SeqCst) {
                continue;
            }
            let mut guard = replica.write();
            match op(&mut guard) {
                Ok(result) => {
                    if first.is_none() {
                        first = Some(result);
                    }
                }
                Err(e) if first.is_none() => return Err(e),
                Err(_) => {
                    drop(guard);
                    self.health[i].store(false, Ordering::SeqCst);
                }
            }
        }
        // Bumped before `write_order` is released (the caller holds it),
        // pairing counter with state for incremental snapshots.
        self.edits.fetch_add(1, Ordering::SeqCst);
        first.ok_or_else(|| DbError::Replica {
            reason: format!("shard {shard} has no healthy replica"),
        })
    }
}

/// Point-in-time statistics of a [`ReplicatedImageDatabase`], observed
/// under one simultaneous read lock across every replica (never torn by
/// a concurrent write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Live records per physical shard (from each shard's first healthy
    /// replica). During an online reshard this covers both layouts'
    /// shards.
    pub shard_records: Vec<usize>,
    /// Live records per replica: `replica_records[shard][replica]`. A
    /// failed replica's count goes stale until its rebuild.
    pub replica_records: Vec<Vec<usize>>,
    /// Health bits per replica: `replica_health[shard][replica]`.
    pub replica_health: Vec<Vec<bool>>,
    /// Distinct object classes across all shards (union).
    pub classes: usize,
    /// Total objects across all records.
    pub objects: usize,
}

impl Default for ReplicatedImageDatabase {
    fn default() -> Self {
        ReplicatedImageDatabase::with_topology(1, 1)
    }
}

impl ReplicatedImageDatabase {
    /// A single shard with a single replica (drop-in for the plain
    /// database).
    #[must_use]
    pub fn new() -> Self {
        ReplicatedImageDatabase::default()
    }

    /// A database of `shards` × `replicas` (both clamped to ≥ 1).
    #[must_use]
    pub fn with_topology(shards: usize, replicas: usize) -> Self {
        let shards = shards.max(1);
        let replicas = replicas.max(1);
        ReplicatedImageDatabase {
            inner: Arc::new(Inner {
                topology: RwLock::new(Topology::steady(shards, replicas)),
                next_id: AtomicUsize::new(0),
                instance: fresh_snapshot_id(),
                planner_skipped: AtomicU64::new(0),
                snapshot_io: parking_lot::Mutex::new(()),
                search_gate: RwLock::new(()),
                reshard_lock: parking_lot::Mutex::new(()),
                progress: parking_lot::Mutex::new(ReshardProgress::default()),
            }),
        }
    }

    /// Number of shards the database routes to (the **target** topology
    /// during an online reshard; see
    /// [`reshard_progress`](Self::reshard_progress)).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.topology.read().new_n
    }

    /// Replicas per shard.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.inner.topology.read().sets[0].replicas.len()
    }

    /// Whether an online reshard is currently migrating records.
    #[must_use]
    pub fn resharding(&self) -> bool {
        !self.inner.topology.read().is_steady()
    }

    /// The last observed reshard progress (all-zero before the first
    /// reshard; `active == false` once it finished).
    #[must_use]
    pub fn reshard_progress(&self) -> ReshardProgress {
        self.inner.progress.lock().clone()
    }

    /// Total live records (counted on each shard's first healthy
    /// replica, under the migration gate so a mid-batch state is never
    /// observed).
    #[must_use]
    pub fn len(&self) -> usize {
        let top = self.inner.topology.read();
        let _gate = self.inner.search_gate.read();
        top.sets
            .iter()
            .map(|set| set.replicas[set.first_healthy()].read().len())
            .sum()
    }

    /// Whether no shard holds a record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Health bits per replica: `result[shard][replica]`.
    #[must_use]
    pub fn replica_health(&self) -> Vec<Vec<bool>> {
        health_bits(&self.inner.topology.read())
    }

    /// Cumulative count of shards the scatter planner skipped because
    /// their class postings could not contribute a candidate.
    #[must_use]
    pub fn planner_skipped(&self) -> u64 {
        self.inner.planner_skipped.load(Ordering::Relaxed)
    }

    /// All statistics under one simultaneous read lock across every
    /// replica of every shard.
    #[must_use]
    pub fn stats(&self) -> ReplicaStats {
        let top = self.inner.topology.read();
        let guards: Vec<Vec<_>> = top
            .sets
            .iter()
            .map(|set| set.replicas.iter().map(RwLock::read).collect())
            .collect();
        let mut classes: BTreeSet<ObjectClass> = BTreeSet::new();
        let mut stats = ReplicaStats {
            shard_records: Vec::with_capacity(guards.len()),
            replica_records: Vec::with_capacity(guards.len()),
            replica_health: health_bits(&top),
            classes: 0,
            objects: 0,
        };
        for (set, replica_guards) in top.sets.iter().zip(&guards) {
            let primary = &replica_guards[set.first_healthy()];
            classes.extend(primary.class_index().classes().cloned());
            stats.objects += primary.object_count();
            stats.shard_records.push(primary.len());
            stats
                .replica_records
                .push(replica_guards.iter().map(|g| g.len()).collect());
        }
        stats.classes = classes.len();
        stats
    }

    /// Indexes a scene (Algorithm-1 conversion outside all locks).
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_scene(&self, name: &str, scene: &Scene) -> Result<RecordId, DbError> {
        self.insert_symbolic(name, SymbolicImage::from_scene(scene))
    }

    /// Stores a pre-converted symbolic picture in every healthy replica
    /// of the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_symbolic(
        &self,
        name: &str,
        symbolic: SymbolicImage,
    ) -> Result<RecordId, DbError> {
        let top = self.inner.topology.read();
        // Same id-allocation protocol as the sharded database: ids are
        // handed out before any lock, so a slot may be occupied by a
        // concurrently restored corpus — skip to a fresh id (the restore
        // healed the counter above every restored slot).
        'fresh_id: for _ in 0..64 {
            let id = RecordId(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
            // A reshard batch may move the boundary past `id` between
            // routing and locking; the boundary is frozen while we hold
            // the shard's write-order mutex, so re-route and retry until
            // the route sticks.
            loop {
                let (shard, local) = top.route(id);
                let set = &top.sets[shard];
                let _order = set.write_order.lock();
                if top.route(id) != (shard, local) {
                    continue;
                }
                if set.replicas[set.first_healthy()]
                    .read()
                    .get(local)
                    .is_some()
                {
                    continue 'fresh_id;
                }
                set.fan_out(shard, |db| {
                    db.insert_symbolic_with_id(local, name, symbolic.clone())
                })?;
                return Ok(id);
            }
        }
        Err(DbError::Persist {
            reason: "insert kept colliding with concurrently restored records".into(),
        })
    }

    /// Routes a mutation to the owning shard under its write-order
    /// mutex, re-validating the route against reshard batches.
    fn routed_write<R>(
        &self,
        id: RecordId,
        op: impl Fn(&mut ImageDatabase, RecordId) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let top = self.inner.topology.read();
        loop {
            let (shard, local) = top.route(id);
            let set = &top.sets[shard];
            let _order = set.write_order.lock();
            // The boundary only moves under *all* write-order mutexes,
            // so holding this one freezes it; a stale route retries.
            if top.route(id) != (shard, local) {
                continue;
            }
            return set
                .fan_out(shard, |db| op(db, local))
                .map_err(|e| globalise_error(e, id));
        }
    }

    /// Removes a record from every healthy replica of its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] (with the global id) for dead
    /// or unassigned ids.
    pub fn remove(&self, id: RecordId) -> Result<(), DbError> {
        self.routed_write(id, |db, local| db.remove(local).map(|_| ()))
    }

    /// Looks a record up on one healthy replica, returning a clone with
    /// its **global** id.
    #[must_use]
    pub fn get(&self, id: RecordId) -> Option<ImageRecord> {
        let top = self.inner.topology.read();
        loop {
            let (shard, local) = top.route(id);
            let set = &top.sets[shard];
            let guard = set.replicas[set.pick()].read();
            // The boundary only moves under *all* replica write locks,
            // so holding this read lock freezes it; a stale route means
            // a batch moved the record between routing and locking.
            if top.route(id) != (shard, local) {
                continue;
            }
            let record = guard.get(local).cloned();
            return record.map(|mut r| {
                r.id = id;
                r
            });
        }
    }

    /// Incremental §3.2 object insertion, fanned out to every healthy
    /// replica of the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn add_object(&self, id: RecordId, class: &ObjectClass, mbr: Rect) -> Result<(), DbError> {
        self.routed_write(id, |db, local| db.add_object(local, class, mbr))
    }

    /// Incremental §3.2 object removal, fanned out to every healthy
    /// replica of the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn remove_object(
        &self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        self.routed_write(id, |db, local| db.remove_object(local, class, mbr))
    }

    /// Scatter-gather ranked search over **one chosen replica per
    /// shard** (round-robin among healthy copies), merged with the same
    /// top-k heap the sharded database uses. The scatter planner skips
    /// shards whose class postings provably cannot contribute (exact
    /// inverted-index candidates only).
    ///
    /// Ranking — ids, scores, and tie-breaks — is bit-identical to an
    /// unreplicated [`ShardedImageDatabase`](crate::ShardedImageDatabase)
    /// (and to a single [`ImageDatabase`]) over the same records, **even
    /// while an online reshard is migrating records**: the whole scatter
    /// holds the migration gate, so batch moves are atomic to it, and
    /// the epoch maps each shard's local slots back to global ids.
    #[must_use]
    pub fn search(&self, query: &BeString2D, options: &QueryOptions) -> Vec<SearchHit> {
        let top = self.inner.topology.read();
        // Shared gate lease for the whole scatter: a reshard batch move
        // (exclusive holder) either completed before this search or
        // waits for it — never interleaves.
        let _gate = self.inner.search_gate.read();
        let n = top.sets.len();
        if n == 1 {
            let set = &top.sets[0];
            return set.replicas[set.pick()].read().search(query, options);
        }
        // Frozen for the whole scatter: the boundary only moves under
        // the exclusive gate.
        let epoch = top.epoch();
        let topology = &*top;
        let planner_skipped = &self.inner.planner_skipped;
        let query_classes: Vec<ObjectClass> = query.class_counts().into_keys().collect();
        let per_shard = scatter_scan(
            n,
            // next_id is a cheap upper bound on the total record count.
            self.inner.next_id.load(Ordering::Relaxed),
            |shard| {
                let set = &topology.sets[shard];
                let guard = set.replicas[set.pick()].read();
                if shard_cannot_contribute(&guard, &query_classes, options) {
                    planner_skipped.fetch_add(1, Ordering::Relaxed);
                    return Vec::new();
                }
                let mut hits = guard.search(query, options);
                for hit in &mut hits {
                    // Local-slot order maps monotonically to global-id
                    // order under any epoch (see `epoch.rs`), so each
                    // per-shard ranked list stays merge-ready.
                    hit.id = RecordId(
                        epoch
                            .global_of(shard, hit.id.index())
                            .expect("occupied slot resolves under the live epoch"),
                    );
                }
                hits
            },
        );
        merge_top_k(per_shard, options.top_k)
    }

    /// Scatter-gather search with a scene query (converted once, outside
    /// all locks).
    #[must_use]
    pub fn search_scene(&self, query: &Scene, options: &QueryOptions) -> Vec<SearchHit> {
        self.search(&be2d_core::convert_scene(query), options)
    }

    /// Scatter-gather search with textual BE-strings (parsed once).
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the query strings.
    pub fn search_text(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        let query = BeString2D::parse(u, v).map_err(DbError::from)?;
        Ok(self.search(&query, options))
    }

    /// Takes a replica out of rotation — the fault-injection hook.
    /// Reads and writes route around it immediately; its contents go
    /// stale until [`rebuild_replica`](Self::rebuild_replica).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] for out-of-range coordinates or when
    /// the replica is its shard's **last healthy copy** (every shard
    /// must keep serving).
    pub fn fail_replica(&self, shard: usize, replica: usize) -> Result<(), DbError> {
        let top = self.inner.topology.read();
        let set = checked_set(&top, shard, replica)?;
        let _order = set.write_order.lock();
        if set.health[replica].load(Ordering::SeqCst) && set.healthy_count() == 1 {
            return Err(DbError::Replica {
                reason: format!(
                    "replica {replica} is shard {shard}'s last healthy copy and cannot be failed"
                ),
            });
        }
        set.health[replica].store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Rebuilds a failed replica from a healthy peer and rejoins it to
    /// rotation. The shard's write traffic pauses for the duration of
    /// the clone (readers keep flowing on the healthy replicas), so the
    /// rebuilt copy is exactly up to date the moment it rejoins — a
    /// rebuild during an online reshard clones the peer's current
    /// mixed-layout state, so the rejoined copy is on the new topology
    /// exactly as far as the migration has progressed.
    /// Rebuilding an already-healthy replica is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] for out-of-range coordinates.
    pub fn rebuild_replica(&self, shard: usize, replica: usize) -> Result<(), DbError> {
        let top = self.inner.topology.read();
        let set = checked_set(&top, shard, replica)?;
        let _order = set.write_order.lock();
        if set.health[replica].load(Ordering::SeqCst) {
            return Ok(());
        }
        let source = set.first_healthy();
        let rebuilt = set.replicas[source].read().clone();
        *set.replicas[replica].write() = rebuilt;
        set.health[replica].store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Saves a consistent, incremental sharded snapshot (one file per
    /// physical shard, cloned from each shard's first healthy replica)
    /// in the exact format of
    /// [`ShardedImageDatabase::save_snapshot`](crate::ShardedImageDatabase::save_snapshot)
    /// — the two deployments' snapshots are interchangeable. Write
    /// traffic pauses for the duration of the clone so the snapshot is
    /// one global state; readers keep flowing. A snapshot taken during
    /// an online reshard records the routing epoch (manifest v3), so it
    /// restores exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from serialisation or file I/O.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, DbError> {
        let _io = self.inner.snapshot_io.lock();
        let top = self.inner.topology.read();
        // Parsed before any lock, so deciding what to skip costs no
        // lock or write-pause time. Mid-reshard snapshots never reuse:
        // batch moves dirty shards faster than reuse could help.
        let previous = if top.is_steady() {
            PreviousSnapshot::load(path, self.inner.instance, top.sets.len())
        } else {
            PreviousSnapshot::none()
        };
        let payload = {
            let _orders: Vec<_> = top.sets.iter().map(|set| set.write_order.lock()).collect();
            let guards: Vec<_> = top
                .sets
                .iter()
                .map(|set| set.replicas[set.first_healthy()].read())
                .collect();
            let edits: Vec<u64> = top
                .sets
                .iter()
                .map(|set| set.edits.load(Ordering::SeqCst))
                .collect();
            // Only shards dirtied since the previous snapshot are
            // cloned at all: snapshot cost (and the write pause) is
            // proportional to write traffic, not corpus size.
            let shards: Vec<Option<ImageDatabase>> = guards
                .iter()
                .enumerate()
                .map(|(shard, guard)| {
                    (!previous.reusable(path, shard, edits[shard])).then(|| (**guard).clone())
                })
                .collect();
            SnapshotPayload {
                records: guards.iter().map(|g| g.len()).sum(),
                shards,
                next_id: self.inner.next_id.load(Ordering::SeqCst),
                edits,
                writer: self.inner.instance,
                // Frozen while all write-order mutexes are held.
                epoch: top.epoch(),
            }
        };
        save_snapshot_at(path, payload, &previous)
    }

    /// Restores from a sharded manifest (v1, v2 or v3 — mid-reshard
    /// snapshots included) or a plain [`ImageDatabase::save`] file,
    /// replacing the contents of **every replica** — which also heals
    /// all failed replicas, since each now holds the same freshly
    /// restored state. Records are re-routed when the snapshot's
    /// topology differs from this database's; ids are preserved either
    /// way.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] while an online reshard is running
    /// (the two would fight over the topology), [`DbError::Persist`]
    /// for malformed or inconsistent snapshot files, and propagates I/O
    /// errors. On error the in-memory database is untouched.
    pub fn restore_from(&self, path: &Path) -> Result<usize, DbError> {
        // A restore replaces the full corpus under a steady topology;
        // it must never interleave with a reshard's migration sweep
        // (409), but two concurrent *restores* simply serialise — the
        // lock's other holder is then bounded.
        let _reshard = match self.inner.reshard_lock.try_lock() {
            Some(guard) => guard,
            None if self.resharding() => {
                return Err(DbError::Replica {
                    reason: "cannot restore while an online reshard is in progress".into(),
                });
            }
            None => self.inner.reshard_lock.lock(),
        };
        let _io = self.inner.snapshot_io.lock();
        {
            // The reshard lock was free, but the epoch may still be
            // mid-migration: a previous reshard aborted on an internal
            // error. Restoring a uniform layout under that epoch would
            // mis-route records; resume the reshard (rerun to the same
            // target) first. Holding the reshard lock keeps the epoch
            // steady after this check.
            let top = self.inner.topology.read();
            if !top.is_steady() {
                return Err(DbError::Replica {
                    reason: format!(
                        "cannot restore while an aborted reshard to {} shards awaits resume",
                        top.new_n
                    ),
                });
            }
        }
        let saved = load_snapshot_at(path)?;
        let next_id = saved.next_id;
        let top = self.inner.topology.read();
        let n = top.sets.len();
        let rebuilt = reroute_shards(saved, n)?;
        let records = rebuilt.iter().map(ImageDatabase::len).sum();
        let required = heal_next_id(&rebuilt, next_id);

        // A restore is a bulk replace, exactly like a reshard batch:
        // exclusive gate first, so an in-flight scatter (which locks
        // shards one at a time) can never mix pre- and post-restore
        // records in one result set.
        let _gate = self.inner.search_gate.write();
        // All write-order mutexes (shard order), then all replica write
        // locks, before the first swap: readers never observe a
        // half-restored state.
        let _orders: Vec<_> = top.sets.iter().map(|set| set.write_order.lock()).collect();
        let mut guards: Vec<Vec<_>> = top
            .sets
            .iter()
            .map(|set| set.replicas.iter().map(RwLock::write).collect())
            .collect();
        for ((set, replica_guards), db) in top.sets.iter().zip(guards.iter_mut()).zip(rebuilt) {
            for guard in replica_guards.iter_mut() {
                **guard = db.clone();
            }
            for health in &set.health {
                health.store(true, Ordering::SeqCst);
            }
            set.edits.fetch_add(1, Ordering::SeqCst);
        }
        // `fetch_max`, never `store` — see the sharded database's
        // restore for the insert-racing-restore argument.
        self.inner.next_id.fetch_max(required, Ordering::SeqCst);
        Ok(records)
    }

    /// Runs a closure with shared read access to one specific replica —
    /// for tests and diagnostics that must inspect a *particular* copy.
    ///
    /// # Panics
    ///
    /// Panics when `shard` or `replica` is out of range.
    pub fn with_replica_read<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&ImageDatabase) -> R,
    ) -> R {
        f(&self.inner.topology.read().sets[shard].replicas[replica].read())
    }
}

/// Health bits per replica of a topology (`result[shard][replica]`).
fn health_bits(top: &Topology) -> Vec<Vec<bool>> {
    top.sets
        .iter()
        .map(|set| {
            set.health
                .iter()
                .map(|h| h.load(Ordering::SeqCst))
                .collect()
        })
        .collect()
}

/// Bounds-checks replica coordinates against a topology.
fn checked_set(top: &Topology, shard: usize, replica: usize) -> Result<&Arc<ReplicaSet>, DbError> {
    let set = top.sets.get(shard).ok_or_else(|| DbError::Replica {
        reason: format!("shard {shard} out of range (shards: {})", top.sets.len()),
    })?;
    if replica >= set.replicas.len() {
        return Err(DbError::Replica {
            reason: format!(
                "replica {replica} out of range (replicas: {})",
                set.replicas.len()
            ),
        });
    }
    Ok(set)
}

/// Rewrites shard-local [`DbError::UnknownRecord`] ids back to the
/// global id the caller used.
fn globalise_error(e: DbError, global: RecordId) -> DbError {
    match e {
        DbError::UnknownRecord { .. } => DbError::UnknownRecord { id: global.index() },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    fn scene(x: i64) -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (x, x + 10, 10, 20))
            .object("B", (50, 90, 50, 90))
            .build()
            .unwrap()
    }

    fn filled(shards: usize, replicas: usize, n: i64) -> ReplicatedImageDatabase {
        let db = ReplicatedImageDatabase::with_topology(shards, replicas);
        for i in 0..n {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        db
    }

    #[test]
    fn writes_fan_out_to_every_replica() {
        let db = filled(2, 3, 8);
        assert_eq!(db.len(), 8);
        for shard in 0..2 {
            for replica in 0..3 {
                assert_eq!(
                    db.with_replica_read(shard, replica, ImageDatabase::len),
                    4,
                    "shard {shard} replica {replica}"
                );
            }
        }
        db.remove(RecordId(3)).unwrap();
        for replica in 0..3 {
            assert_eq!(db.with_replica_read(1, replica, ImageDatabase::len), 3);
        }
        assert!(matches!(
            db.remove(RecordId(3)),
            Err(DbError::UnknownRecord { id: 3 })
        ));
    }

    #[test]
    fn object_edits_fan_out() {
        let db = filled(2, 2, 4);
        let class = ObjectClass::new("X");
        let mbr = Rect::new(0, 5, 0, 5).unwrap();
        db.add_object(RecordId(1), &class, mbr).unwrap();
        for replica in 0..2 {
            let objects =
                db.with_replica_read(1, replica, |d| d.get(RecordId(0)).unwrap().symbolic.clone());
            assert_eq!(objects.object_count(), 3, "replica {replica}");
        }
        db.remove_object(RecordId(1), &class, mbr).unwrap();
        assert_eq!(db.get(RecordId(1)).unwrap().symbolic.object_count(), 2);
        assert!(db
            .add_object(RecordId(77), &class, mbr)
            .is_err_and(|e| matches!(e, DbError::UnknownRecord { id: 77 })));
    }

    #[test]
    fn reads_route_around_failed_replicas() {
        let db = filled(2, 2, 12);
        let query = scene(3);
        let before = db.search_scene(&query, &QueryOptions::default());

        db.fail_replica(0, 0).unwrap();
        db.fail_replica(1, 1).unwrap();
        // Every read still answers, from the surviving copies.
        for _ in 0..8 {
            let hits = db.search_scene(&query, &QueryOptions::default());
            assert_eq!(hits.len(), before.len());
            for (a, b) in before.iter().zip(&hits) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert_eq!(db.len(), 12);
        assert!(db.get(RecordId(5)).is_some());

        // The last healthy copy of a shard cannot be failed.
        let err = db.fail_replica(0, 1).unwrap_err();
        assert!(matches!(err, DbError::Replica { .. }), "{err}");
        assert!(err.to_string().contains("last healthy"), "{err}");
    }

    #[test]
    fn failed_replica_goes_stale_then_rebuilds() {
        let db = filled(1, 2, 4);
        db.fail_replica(0, 1).unwrap();
        // Writes land only on the healthy replica; the failed one is
        // frozen at 4 records.
        db.insert_scene("late", &scene(7)).unwrap();
        db.remove(RecordId(0)).unwrap();
        assert_eq!(db.with_replica_read(0, 0, ImageDatabase::len), 4);
        assert_eq!(db.with_replica_read(0, 1, ImageDatabase::len), 4);
        assert!(
            db.with_replica_read(0, 1, |d| d.get(RecordId(0)).is_some()),
            "stale replica still holds the removed record"
        );
        assert!(db.with_replica_read(0, 0, |d| d.get(RecordId(0)).is_none()));

        // Rebuild clones the healthy peer bit-for-bit and rejoins.
        db.rebuild_replica(0, 1).unwrap();
        let a = db.with_replica_read(0, 0, Clone::clone);
        let b = db.with_replica_read(0, 1, Clone::clone);
        assert_eq!(a, b, "rebuilt replica matches its source exactly");
        assert!(db.replica_health().iter().flatten().all(|&h| h));

        // Rebuilding a healthy replica is a no-op; bad coordinates err.
        db.rebuild_replica(0, 1).unwrap();
        assert!(db.fail_replica(9, 0).is_err());
        assert!(db.rebuild_replica(0, 9).is_err());
    }

    #[test]
    fn search_matches_sharded_and_single() {
        use crate::ShardedImageDatabase;
        let query = scene(7);
        let single = {
            let mut db = ImageDatabase::new();
            for i in 0..30 {
                db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
            }
            db
        };
        let expect = single.search_scene(&query, &QueryOptions::default());
        let sharded = ShardedImageDatabase::with_shards(3);
        for i in 0..30 {
            sharded
                .insert_scene(&format!("img{i}"), &scene(i % 40))
                .unwrap();
        }
        let sharded_hits = sharded.search_scene(&query, &QueryOptions::default());
        for replicas in [1usize, 2, 3] {
            let db = filled(3, replicas, 30);
            let hits = db.search_scene(&query, &QueryOptions::default());
            assert_eq!(hits.len(), expect.len());
            for ((a, b), c) in expect.iter().zip(&hits).zip(&sharded_hits) {
                assert_eq!(a.id, b.id, "{replicas} replicas");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(b.id, c.id);
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_and_cross_type_restore() {
        let dir = std::env::temp_dir().join(format!("be2d_replica_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 2, 9);
        db.remove(RecordId(4)).unwrap();
        db.fail_replica(1, 0).unwrap();
        assert_eq!(db.save_snapshot(&path).unwrap(), 8);

        // A restore replaces every replica and heals the failed one.
        let back = ReplicatedImageDatabase::with_topology(2, 2);
        back.fail_replica(0, 1).unwrap();
        assert_eq!(back.restore_from(&path).unwrap(), 8);
        assert!(back.replica_health().iter().flatten().all(|&h| h));
        assert!(back.get(RecordId(4)).is_none());
        assert_eq!(back.get(RecordId(7)).unwrap().name, "img7");
        assert_eq!(back.insert_scene("next", &scene(1)).unwrap(), RecordId(9));

        // The snapshot format is interchangeable with the sharded
        // database's, topology changes included.
        let sharded = crate::ShardedImageDatabase::with_shards(3);
        assert_eq!(sharded.restore_from(&path).unwrap(), 8);
        assert_eq!(sharded.get(RecordId(7)).unwrap().name, "img7");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_robin_spreads_reads() {
        let db = filled(1, 3, 6);
        // Consecutive picks rotate over the healthy replicas.
        let top = db.inner.topology.read();
        let set = &top.sets[0];
        let picks: Vec<usize> = (0..6).map(|_| set.pick()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        set.health[1].store(false, Ordering::SeqCst);
        let picks: Vec<usize> = (0..4).map(|_| set.pick()).collect();
        assert!(picks.iter().all(|&p| p != 1), "failed replica skipped");
    }

    #[test]
    fn clones_share_state_and_stats_report_topology() {
        let db = ReplicatedImageDatabase::with_topology(2, 2);
        let other = db.clone();
        db.insert_scene("one", &scene(0)).unwrap();
        assert_eq!(other.len(), 1);

        let stats = other.stats();
        assert_eq!(stats.shard_records, vec![1, 0]);
        assert_eq!(stats.replica_records, vec![vec![1, 1], vec![0, 0]]);
        assert_eq!(stats.replica_health, vec![vec![true, true]; 2]);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.objects, 2);
        assert_eq!(other.replica_count(), 2);
        assert_eq!(other.shard_count(), 2);
        assert!(!other.resharding());
        assert!(ReplicatedImageDatabase::with_topology(0, 0).shard_count() == 1);
    }
}
