//! Replicated shards: read-scaling replica sets with health, fault
//! injection, rebuild-then-rejoin recovery, **online resharding** — and
//! a per-shard **operation log** driving incremental catch-up, write-
//! ahead durability, and asynchronous replication.
//!
//! The sharded database ([`ShardedImageDatabase`]) split the corpus
//! into N independently locked partitions; this layer puts **R
//! replicas behind every shard**. Every mutation (insert, remove, §3.2
//! object edits) is applied to the shard's leader (its first healthy
//! replica), assigned a global sequence number, and recorded in the
//! shard's bounded in-memory op log; followers apply the same ops **by
//! draining the log in sequence order**, never by re-executing
//! requests, so every replica runs the identical deterministic mutation
//! stream. Searches scatter to **one chosen replica per shard** before
//! the same top-k heap merge the sharded database uses; because every
//! in-sync replica holds identical records, the ranked result is
//! **bit-identical** to the unreplicated (and single-shard) ranking,
//! ties included (see `crates/db/tests/replicated.rs`).
//!
//! # Replication modes
//!
//! [`ReplicationMode`] picks the write-acknowledgement point:
//!
//! * **Sync** (default) — the write returns after every healthy replica
//!   applied it: the pre-op-log fan-out behaviour, bit for bit.
//! * **Quorum** — the write returns once a majority applied it; the
//!   rest drain in the background. Reads route only to replicas at the
//!   shard head.
//! * **Async { max_lag }** — the write returns after the leader alone;
//!   a background pump drains followers. Reads route only to replicas
//!   within `max_lag` ops of the head (bounded staleness); point
//!   lookups go to the leader (read-your-writes).
//!
//! # Health, failure, recovery
//!
//! Each replica carries a health bit. [`fail_replica`] takes a replica
//! out of rotation (the fault-injection hook tests and the server's
//! admin endpoint use); reads and writes route around it from that
//! moment on, so it goes stale. [`rebuild_replica`] brings it back:
//! when the replica's gap still fits the shard's log window it
//! **replays just the missed ops** (`catchup_replays` in
//! [`ReplicationStats`]); when the ring has wrapped past its position —
//! or a restore barrier fenced the gap — it falls back to cloning a
//! healthy peer (`catchup_clones`). Either way the shard's write
//! traffic pauses only for the catch-up itself and the rejoined copy is
//! exactly up to date. A shard's **last** healthy replica can never be
//! failed — every shard always serves.
//!
//! # WAL durability
//!
//! With [`ReplicaConfig::wal`] set, every logged op is also appended to
//! a per-shard on-disk write-ahead log (fsynced in batches) between
//! incremental snapshots: recovery = anchor snapshot + replay of the
//! tail, with torn-tail detection and healing. See
//! [`checkpoint_wal`](ReplicatedImageDatabase::checkpoint_wal).
//!
//! # Online resharding
//!
//! The shard count can be changed **while serving** — see
//! [`Resharder`](crate::Resharder). The shard topology lives behind a
//! reader-writer lock; every operation routes through a
//! [`RoutingEpoch`](crate::epoch::RoutingEpoch) that says, per global
//! id, whether the record has already migrated to the new layout.
//! Correctness rests on three rules:
//!
//! 1. The migration **boundary only moves while every shard's
//!    write-order mutex and every replica's write lock are held** (one
//!    bounded batch at a time). A writer that holds its shard's
//!    write-order mutex — or a reader that holds any replica read lock
//!    — therefore observes a frozen boundary; both re-validate their
//!    route after locking and retry if a batch slipped in between.
//! 2. Multi-shard **searches hold a read lease on the migration gate**
//!    for the whole scatter; batch moves take the gate exclusively. A
//!    scatter therefore never observes a half-moved batch, so every
//!    record is seen exactly once and the merged ranking stays
//!    bit-identical mid-migration (`crates/db/tests/reshard.rs`).
//! 3. Topology **structure** (the shard vector itself) changes only
//!    under the topology write lock, taken with no other lock held —
//!    at reshard install (new empty shards appear) and finalise
//!    (drained shards disappear).
//!
//! Because a reshard batch changes how global ids route, replaying ops
//! logged *before* a batch into a replica healed *after* it would
//! mis-route them. Every reshard batch therefore stamps a **barrier**
//! into each shard's log: catch-up never replays across a barrier (it
//! clones instead), and WAL recovery refuses to cross one.
//!
//! [`ShardedImageDatabase`]: crate::ShardedImageDatabase
//! [`fail_replica`]: ReplicatedImageDatabase::fail_replica
//! [`rebuild_replica`]: ReplicatedImageDatabase::rebuild_replica

use crate::epoch::RoutingEpoch;
use crate::events::{EventJournal, EventKind};
use crate::metrics::{elapsed_ns, DbMetrics, QueryTrace, ShardTrace};
use crate::oplog::{
    load_wal_file, wal_shard_files, Op, OplogStats, ReplicaLag, ReplicationMode, ReplicationStats,
    ShardLog, ShardReplication, WalConfig, WalRecord, WalState,
};
use crate::reshard::ReshardProgress;
use crate::shard::{
    fresh_snapshot_id, heal_next_id, load_snapshot_at, merge_top_k, reroute_shards,
    save_snapshot_at, scatter_scan_list, shard_cannot_contribute, wal_floor_of, PreviousSnapshot,
    SnapshotPayload,
};
use crate::{
    CandidateStrategy, DbError, ImageDatabase, ImageRecord, QueryOptions, RecordId, SearchHit,
};
use be2d_core::{BeString2D, SymbolicImage};
use be2d_geometry::{ObjectClass, Rect, Scene};
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use std::time::Instant;

/// A cheaply clonable, thread-safe image database of N shards × R
/// replicas whose shard count can be changed online.
///
/// With `replicas = 1` it behaves exactly like a
/// [`ShardedImageDatabase`](crate::ShardedImageDatabase) with the same
/// shard count; with more replicas, reads spread across copies and a
/// failed copy can be rebuilt from a healthy peer without downtime.
/// [`Resharder`](crate::Resharder) streams records between shards while
/// the database keeps serving. [`with_config`](Self::with_config)
/// additionally selects the [`ReplicationMode`], the op-log window, and
/// WAL durability.
///
/// # Example
///
/// ```
/// use be2d_db::{QueryOptions, ReplicatedImageDatabase};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let db = ReplicatedImageDatabase::with_topology(2, 2);
/// let scene = SceneBuilder::new(10, 10).object("A", (1, 5, 1, 5)).build()?;
/// let id = db.insert_scene("one", &scene)?;
///
/// // Fail one copy of the owning shard: reads route around it.
/// db.fail_replica(0, 1)?;
/// assert_eq!(db.search_scene(&scene, &QueryOptions::default())?[0].id, id);
///
/// // Rebuild it from the healthy peer and rejoin rotation.
/// db.rebuild_replica(0, 1)?;
/// assert!(db.replica_health().iter().flatten().all(|&h| h));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedImageDatabase {
    pub(crate) inner: Arc<Inner>,
}

/// Construction-time configuration of a [`ReplicatedImageDatabase`]
/// (see [`ReplicatedImageDatabase::with_config`]).
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Number of shards (clamped to ≥ 1).
    pub shards: usize,
    /// Replicas per shard (clamped to ≥ 1).
    pub replicas: usize,
    /// Where writes acknowledge: every replica, a majority, or the
    /// leader alone.
    pub mode: ReplicationMode,
    /// Per-shard op-log ring capacity in entries (clamped to ≥ 1). A
    /// failed replica whose gap exceeds the window rebuilds by clone
    /// instead of replay.
    pub oplog_window: usize,
    /// Write-ahead-log durability (off when `None`).
    pub wal: Option<WalConfig>,
    /// Scatter-planning policy (see [`PlannerMode`]).
    pub planner: PlannerMode,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            shards: 1,
            replicas: 1,
            mode: ReplicationMode::Sync,
            oplog_window: 1024,
            wal: None,
            planner: PlannerMode::V2,
        }
    }
}

/// How the scatter is planned. Both modes return bit-identical
/// rankings — the planner only reorders *when* shards run and *how*
/// each one walks its candidate set, never *what* it scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Visit shards in index order and materialise every inverted-index
    /// candidate set by posting walk — the pre-planner-v2 behaviour,
    /// kept for A/B benchmarking (`--planner naive`).
    Naive,
    /// Planner v2 (default): order the scatter by per-shard selectivity
    /// estimated from posting sizes, sequence the most selective shard
    /// first so the cross-shard [`ScoreThreshold`](crate::ScoreThreshold)
    /// tightens before the expensive shards run, and choose each shard's
    /// [`CandidateStrategy`](crate::CandidateStrategy) from the same
    /// estimate.
    #[default]
    V2,
}

impl std::fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerMode::Naive => f.write_str("naive"),
            PlannerMode::V2 => f.write_str("v2"),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    /// The shard topology: replica sets plus the routing epoch. Taken
    /// for read by every operation; for write only at reshard install /
    /// finalise (with no other lock held).
    pub(crate) topology: RwLock<Topology>,
    /// The next global id; increments on every insert, never reused.
    pub(crate) next_id: AtomicUsize,
    /// Stable id of this database instance (see the sharded database's
    /// incremental-snapshot bookkeeping).
    pub(crate) instance: u64,
    /// Shards the scatter planner skipped (see `/stats`).
    pub(crate) planner_skipped: AtomicU64,
    /// Serialises snapshot/restore file I/O, exactly like the sharded
    /// database's `snapshot_io`.
    pub(crate) snapshot_io: parking_lot::Mutex<()>,
    /// The migration gate: multi-shard searches hold it shared for the
    /// whole scatter, reshard batch moves hold it exclusively — a
    /// scatter can never observe a half-moved batch.
    pub(crate) search_gate: RwLock<()>,
    /// One reshard (or restore) at a time.
    pub(crate) reshard_lock: parking_lot::Mutex<()>,
    /// Last observed reshard progress, for `/stats`.
    pub(crate) progress: parking_lot::Mutex<ReshardProgress>,
    /// Write-acknowledgement mode (fixed at construction).
    pub(crate) mode: ReplicationMode,
    /// Scatter-planning policy (fixed at construction).
    pub(crate) planner: PlannerMode,
    /// Op-log ring capacity per shard (fixed at construction).
    pub(crate) oplog_window: usize,
    /// The one global sequence counter. A sequence is assigned under
    /// the owning shard's write-order mutex *after* the leader applied
    /// the op, so a snapshot taken under all write-order mutexes sees
    /// no in-flight sequence: the recorded watermark is exact.
    pub(crate) op_seq: AtomicU64,
    /// Replica heals that rejoined by replaying the log window.
    pub(crate) catchup_replays: AtomicU64,
    /// Replica heals that fell back to a full shard clone.
    pub(crate) catchup_clones: AtomicU64,
    /// Times a writer drained a lagging follower to stop the ring
    /// evicting an entry the follower still needed.
    pub(crate) writer_drains: AtomicU64,
    /// Write-ahead log (None = in-memory only).
    pub(crate) wal: Option<WalState>,
    /// Wake-up channel of the background drain pump (None in Sync mode,
    /// which never leaves a follower behind).
    pub(crate) pump: Option<Arc<PumpSignal>>,
    /// Lock-free latency/throughput instrumentation handles, shared
    /// with whoever exposes them (see [`DbMetrics`]).
    pub(crate) metrics: DbMetrics,
    /// Bounded ring of typed cluster events (replica fail/heal,
    /// reshard start/finish, WAL checkpoints, …), polled by cursor.
    pub(crate) events: EventJournal,
}

/// The live shard topology: one [`ReplicaSet`] per physical shard plus
/// the routing epoch. `old_n == new_n` when steady; during a reshard
/// the vector holds `max(old_n, new_n)` sets and `boundary` is the
/// migration watermark (see [`RoutingEpoch`]).
#[derive(Debug)]
pub(crate) struct Topology {
    pub(crate) sets: Vec<Arc<ReplicaSet>>,
    pub(crate) old_n: usize,
    pub(crate) new_n: usize,
    /// Stored atomically so batch moves can advance it under read
    /// access to the topology; see the locking rules in the module
    /// docs.
    pub(crate) boundary: AtomicUsize,
}

impl Topology {
    fn steady(n: usize, replicas: usize, window: usize) -> Topology {
        Topology {
            sets: (0..n)
                .map(|_| Arc::new(ReplicaSet::new(replicas, window)))
                .collect(),
            old_n: n,
            new_n: n,
            boundary: AtomicUsize::new(0),
        }
    }

    /// Whether exactly one layout is live.
    pub(crate) fn is_steady(&self) -> bool {
        self.old_n == self.new_n
    }

    /// A point-in-time copy of the routing epoch. The boundary loaded
    /// here is only stable while the caller holds a lock that blocks
    /// batch moves (any write-order mutex, any replica lock, or the
    /// migration gate).
    pub(crate) fn epoch(&self) -> RoutingEpoch {
        RoutingEpoch {
            old_n: self.old_n,
            new_n: self.new_n,
            boundary: self.boundary.load(Ordering::SeqCst),
        }
    }

    /// Global id → (owning shard, local id) under the current epoch.
    fn route(&self, id: RecordId) -> (usize, RecordId) {
        let (shard, local) = self.epoch().route(id.index());
        (shard, RecordId(local))
    }
}

/// One shard's replica set: R copies of the shard behind their own
/// reader-writer locks, health bits, the write serialiser — and the
/// shard's op log with per-replica applied positions.
#[derive(Debug)]
pub(crate) struct ReplicaSet {
    pub(crate) replicas: Vec<RwLock<ImageDatabase>>,
    /// `health[r]` — whether replica r is in rotation.
    pub(crate) health: Vec<AtomicBool>,
    /// Tie-rotation cursor of the read picker (ex round-robin cursor):
    /// when outstanding-read counts tie, consecutive picks still rotate
    /// deterministically instead of herding onto one replica.
    pub(crate) cursor: AtomicUsize,
    /// `outstanding[r]` — reads currently holding replica r's read lock
    /// (the per-replica split of the global `outstanding_reads` gauge).
    /// The least-outstanding picker routes on it.
    pub(crate) outstanding: Vec<AtomicUsize>,
    /// Serialises write applications, rebuilds, background drains, and
    /// health transitions on this shard, so a writer's view of the
    /// healthy set cannot go stale mid-operation. Readers never take
    /// it. Reshard batch moves take **all** shards' mutexes (in shard
    /// order) before moving anything, so holding any one of them
    /// freezes the boundary.
    pub(crate) write_order: parking_lot::Mutex<()>,
    /// Per-shard edit counter (incremental-snapshot key).
    pub(crate) edits: AtomicU64,
    /// The shard's bounded op ring. Lock order: always after
    /// `write_order`, always released before any replica lock.
    pub(crate) log: parking_lot::Mutex<ShardLog>,
    /// Newest sequence published to this shard's log (0 = none yet).
    pub(crate) head: AtomicU64,
    /// `applied[r]` — the highest sequence replica r has applied.
    pub(crate) applied: Vec<AtomicU64>,
}

impl ReplicaSet {
    pub(crate) fn new(replicas: usize, window: usize) -> ReplicaSet {
        ReplicaSet {
            replicas: (0..replicas)
                .map(|_| RwLock::new(ImageDatabase::new()))
                .collect(),
            health: (0..replicas).map(|_| AtomicBool::new(true)).collect(),
            cursor: AtomicUsize::new(0),
            outstanding: (0..replicas).map(|_| AtomicUsize::new(0)).collect(),
            write_order: parking_lot::Mutex::new(()),
            edits: AtomicU64::new(0),
            log: parking_lot::Mutex::new(ShardLog::new(window)),
            head: AtomicU64::new(0),
            applied: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Least-outstanding pick among the (non-empty) eligible replicas.
    ///
    /// The replica with the fewest in-flight reads wins; on ties the
    /// picker falls back to **power-of-two-choices**: the rotation
    /// cursor nominates two of the tied replicas, their live counts are
    /// re-sampled, and the less loaded one is taken (the first on a
    /// re-tie, so an idle set still rotates `0, 1, 2, 0, …` — no
    /// herding, deterministic spread).
    fn pick_among(&self, eligible: &[usize]) -> usize {
        let min = eligible
            .iter()
            .map(|&r| self.outstanding[r].load(Ordering::Relaxed))
            .min()
            .expect("pick_among requires a non-empty eligible set");
        let tied: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&r| self.outstanding[r].load(Ordering::Relaxed) <= min)
            .collect();
        match tied.as_slice() {
            [] => eligible[0], // counts moved under us; any eligible replica is valid
            [only] => *only,
            _ => {
                let c = self.cursor.fetch_add(1, Ordering::Relaxed);
                let a = tied[c % tied.len()];
                let b = tied[(c + 1) % tied.len()];
                // Two choices, freshest counts win: loads may have moved
                // since the tie was computed.
                if self.outstanding[b].load(Ordering::Relaxed)
                    < self.outstanding[a].load(Ordering::Relaxed)
                {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Least-outstanding pick of a healthy replica (reads route around
    /// failed copies). `None` when every replica is marked failed — a
    /// mid-race state the last-healthy guard makes rare but a diverged
    /// drain can still reach; callers surface it as
    /// [`DbError::Replica`] instead of serving a failed copy.
    pub(crate) fn pick(&self) -> Option<usize> {
        let healthy: Vec<usize> = (0..self.replicas.len())
            .filter(|&r| self.health[r].load(Ordering::SeqCst))
            .collect();
        if healthy.is_empty() {
            return None;
        }
        Some(self.pick_among(&healthy))
    }

    /// Least-outstanding pick among healthy replicas within `max_lag`
    /// ops of the shard head. When no follower qualifies the read falls
    /// back to the leader (always at the head) and bumps `fallback` so
    /// fallback storms are diagnosable; `None` only when every replica
    /// is failed.
    fn pick_within(&self, max_lag: u64, fallback: &be2d_metrics::Counter) -> Option<usize> {
        let head = self.head.load(Ordering::SeqCst);
        let in_sync: Vec<usize> = (0..self.replicas.len())
            .filter(|&r| {
                self.health[r].load(Ordering::SeqCst)
                    && head.saturating_sub(self.applied[r].load(Ordering::SeqCst)) <= max_lag
            })
            .collect();
        if !in_sync.is_empty() {
            return Some(self.pick_among(&in_sync));
        }
        let leader = self.first_healthy()?;
        fallback.inc();
        Some(leader)
    }

    /// The replica a search should read, given the database's mode:
    /// least-outstanding over all healthy replicas under Sync (every
    /// healthy replica is in sync), bounded-lag otherwise. `None` when
    /// the shard has no healthy replica at all.
    fn pick_read(&self, mode: ReplicationMode, metrics: &DbMetrics) -> Option<usize> {
        match mode {
            ReplicationMode::Sync => self.pick(),
            ReplicationMode::Quorum => self.pick_within(0, &metrics.replica_fallback_reads),
            ReplicationMode::Async { max_lag } => {
                self.pick_within(max_lag, &metrics.replica_fallback_reads)
            }
        }
    }

    /// The lowest-indexed healthy replica (the leader: the
    /// deterministic choice for writes, snapshots, rebuild sources, and
    /// occupancy checks). `None` when every replica is marked failed —
    /// never silently replica 0.
    pub(crate) fn first_healthy(&self) -> Option<usize> {
        (0..self.replicas.len()).find(|&r| self.health[r].load(Ordering::SeqCst))
    }

    /// Marks one read in flight on replica `r` (pairs with
    /// [`end_read`](Self::end_read)); the picker routes on these counts.
    fn begin_read(&self, r: usize) {
        self.outstanding[r].fetch_add(1, Ordering::Relaxed);
    }

    fn end_read(&self, r: usize) {
        self.outstanding[r].fetch_sub(1, Ordering::Relaxed);
    }

    fn healthy_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| h.load(Ordering::SeqCst))
            .count()
    }

    /// The no-healthy-replica error every picker caller surfaces.
    pub(crate) fn no_healthy(shard: usize) -> DbError {
        DbError::Replica {
            reason: format!("shard {shard} has no healthy replica"),
        }
    }
}

/// Drains replica `r` of `set` up to the shard head by replaying the op
/// log in sequence order. The caller must hold the shard's
/// `write_order` mutex (this function itself never takes it). Returns
/// `true` when the replica reached the head; `false` when the gap is
/// not replayable (ring wrapped or barrier in range) or an op failed to
/// apply — in the latter case the replica has diverged and is taken out
/// of rotation.
pub(crate) fn drain_replica(top: &Topology, set: &ReplicaSet, shard: usize, r: usize) -> bool {
    loop {
        let target = set.head.load(Ordering::SeqCst);
        if set.applied[r].load(Ordering::SeqCst) >= target {
            return true;
        }
        // The log mutex is released before the replica lock (lock
        // order: write_order → log → replica).
        let pending = {
            let log = set.log.lock();
            log.collect_since(set.applied[r].load(Ordering::SeqCst))
        };
        let Some(pending) = pending else {
            return false;
        };
        let mut guard = set.replicas[r].write();
        let base = set.applied[r].load(Ordering::SeqCst);
        // The boundary is frozen while the replica write lock is held.
        let epoch = top.epoch();
        for (seq, op) in pending {
            if seq <= base {
                continue;
            }
            if op.apply_local(&mut guard, &epoch, shard).is_err() {
                drop(guard);
                set.health[r].store(false, Ordering::SeqCst);
                return false;
            }
            set.applied[r].store(seq, Ordering::SeqCst);
        }
    }
}

/// The background drain pump's wake-up channel: writers set `dirty` and
/// notify after each non-Sync ack; the pump also sweeps on a timeout so
/// a missed notify only delays, never strands, a follower.
#[derive(Debug, Default)]
pub(crate) struct PumpSignal {
    dirty: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

/// The body of the `be2d-oplog-pump` thread: wait for a write (or the
/// periodic backstop), then drain every lagging healthy replica of
/// every shard. Exits when the database is dropped (the weak reference
/// fails to upgrade). Each shard is swept under its own write-order
/// mutex so health and applied positions only ever change under it.
fn pump_loop(inner: Weak<Inner>, signal: Arc<PumpSignal>) {
    loop {
        {
            let dirty = signal.dirty.lock().unwrap_or_else(|e| e.into_inner());
            let (mut dirty, _) = signal
                .cv
                .wait_timeout(dirty, Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner());
            *dirty = false;
        }
        let Some(inner) = inner.upgrade() else {
            return;
        };
        let top = inner.topology.read();
        for (shard, set) in top.sets.iter().enumerate() {
            let _order = set.write_order.lock();
            for r in 0..set.replicas.len() {
                if set.health[r].load(Ordering::SeqCst)
                    && set.applied[r].load(Ordering::SeqCst) < set.head.load(Ordering::SeqCst)
                {
                    drain_replica(&top, set, shard, r);
                }
            }
        }
    }
}

impl Inner {
    /// Applies one mutation through shard `shard`'s op log. The caller
    /// must hold the shard's `write_order` mutex. The leader (first
    /// healthy replica) applies the op authoritatively — its error is
    /// the operation's error and nothing is logged — then the op is
    /// sequenced, WAL-appended (in durability mode), published to the
    /// ring, and acknowledged per the replication mode: every healthy
    /// follower under Sync, a majority under Quorum, the leader alone
    /// under Async. Followers always catch up by draining the log, so
    /// every replica runs the identical mutation stream.
    pub(crate) fn apply_logged(&self, top: &Topology, shard: usize, op: Op) -> Result<(), DbError> {
        let start = Instant::now();
        let set = &top.sets[shard];
        // An async-mode leader may itself have just been promoted while
        // lagging; bring it to the head before it takes new writes.
        let leader = loop {
            let Some(leader) = set.first_healthy() else {
                return Err(ReplicaSet::no_healthy(shard));
            };
            if drain_replica(top, set, shard, leader) {
                break leader;
            }
        };
        let op = Arc::new(op);
        {
            let mut guard = set.replicas[leader].write();
            let epoch = top.epoch();
            op.apply_local(&mut guard, &epoch, shard)?;
        }
        let seq = self.op_seq.fetch_add(1, Ordering::SeqCst) + 1;
        // A WAL append failure is reported to the caller, but the op
        // stays in the in-memory pipeline regardless: the leader has
        // already applied it, and dropping it from the ring would leave
        // followers permanently diverged.
        let wal_result = match &self.wal {
            Some(wal) => wal.append(shard, seq, &op).map(|fsync| {
                if let Some(took) = fsync {
                    self.metrics.wal_fsync.record(took);
                }
            }),
            None => Ok(()),
        };
        // Never evict an entry a healthy follower still needs: drain
        // such followers first, so "healthy ⇒ replayable gap" holds.
        if let Some(evict_seq) = {
            let log = set.log.lock();
            log.eviction_candidate()
        } {
            for r in 0..set.replicas.len() {
                if r != leader
                    && set.health[r].load(Ordering::SeqCst)
                    && set.applied[r].load(Ordering::SeqCst) < evict_seq
                    && drain_replica(top, set, shard, r)
                {
                    self.writer_drains.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        set.log.lock().push(seq, Arc::clone(&op));
        set.head.store(seq, Ordering::SeqCst);
        set.applied[leader].store(seq, Ordering::SeqCst);
        // Acknowledgement: how many healthy replicas must have applied
        // the op before the write returns. When fewer healthy replicas
        // exist than the target, every one of them acks — a quorum of
        // the healthy set, favouring availability.
        let target = match self.mode {
            ReplicationMode::Sync => usize::MAX,
            ReplicationMode::Quorum => set.replicas.len() / 2 + 1,
            ReplicationMode::Async { .. } => 1,
        };
        let mut acked = 1usize;
        if acked < target {
            for r in 0..set.replicas.len() {
                if r == leader || !set.health[r].load(Ordering::SeqCst) {
                    continue;
                }
                if drain_replica(top, set, shard, r) {
                    acked += 1;
                    if acked >= target {
                        break;
                    }
                }
            }
        }
        // Bumped before `write_order` is released (the caller holds it),
        // pairing counter with state for incremental snapshots.
        set.edits.fetch_add(1, Ordering::SeqCst);
        if !matches!(self.mode, ReplicationMode::Sync) {
            self.notify_pump();
        }
        self.metrics.oplog_append.record(start.elapsed());
        wal_result
    }

    /// Stamps a replay fence into `set`'s log: catch-up never replays
    /// across it and WAL recovery refuses to cross it. Every healthy
    /// replica is marked as having applied it (callers guarantee all
    /// healthy replicas hold identical state — they hold the shard's
    /// write-order mutex or the topology write lock, excluding
    /// writers). Barriers are never WAL-appended: restore re-anchors
    /// the WAL instead, and reshard fences are meaningless across a
    /// reboot (recovery replays into the rebooted topology directly).
    pub(crate) fn log_barrier(&self, set: &ReplicaSet) -> u64 {
        let seq = self.op_seq.fetch_add(1, Ordering::SeqCst) + 1;
        set.log.lock().push(seq, Arc::new(Op::Barrier));
        set.head.store(seq, Ordering::SeqCst);
        for (r, applied) in set.applied.iter().enumerate() {
            if set.health[r].load(Ordering::SeqCst) {
                applied.store(seq, Ordering::SeqCst);
            }
        }
        seq
    }

    fn notify_pump(&self) {
        if let Some(pump) = &self.pump {
            let mut dirty = pump.dirty.lock().unwrap_or_else(|e| e.into_inner());
            *dirty = true;
            pump.cv.notify_one();
        }
    }
}

/// Point-in-time statistics of a [`ReplicatedImageDatabase`], observed
/// under one simultaneous read lock across every replica (never torn by
/// a concurrent write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Live records per physical shard (from each shard's first healthy
    /// replica). During an online reshard this covers both layouts'
    /// shards.
    pub shard_records: Vec<usize>,
    /// Live records per replica: `replica_records[shard][replica]`. A
    /// failed replica's count goes stale until its rebuild.
    pub replica_records: Vec<Vec<usize>>,
    /// Health bits per replica: `replica_health[shard][replica]`.
    pub replica_health: Vec<Vec<bool>>,
    /// Distinct object classes across all shards (union).
    pub classes: usize,
    /// Total objects across all records.
    pub objects: usize,
}

impl Default for ReplicatedImageDatabase {
    fn default() -> Self {
        ReplicatedImageDatabase::with_topology(1, 1)
    }
}

impl ReplicatedImageDatabase {
    /// A single shard with a single replica (drop-in for the plain
    /// database).
    #[must_use]
    pub fn new() -> Self {
        ReplicatedImageDatabase::default()
    }

    /// A database of `shards` × `replicas` (both clamped to ≥ 1), in
    /// the default configuration: synchronous replication, no WAL.
    #[must_use]
    pub fn with_topology(shards: usize, replicas: usize) -> Self {
        ReplicatedImageDatabase::with_config(ReplicaConfig {
            shards,
            replicas,
            ..ReplicaConfig::default()
        })
        .expect("in-memory sync construction is infallible")
    }

    /// Builds a database from a full [`ReplicaConfig`]: topology,
    /// replication mode, op-log window, and optional WAL durability.
    /// With a WAL directory set, recovery runs here — anchor snapshot
    /// (if any) plus replay of the WAL tail, healing a torn tail — and
    /// the recovered state is re-anchored so the next boot replays only
    /// fresh ops. Non-Sync modes spawn the background drain pump.
    ///
    /// # Errors
    ///
    /// Propagates WAL recovery errors (corrupt anchor, unreplayable
    /// ops, I/O) and pump-thread spawn failures. In-memory Sync
    /// construction is infallible.
    pub fn with_config(config: ReplicaConfig) -> Result<Self, DbError> {
        let shards = config.shards.max(1);
        let replicas = config.replicas.max(1);
        let window = config.oplog_window.max(1);
        let pump_signal = if matches!(config.mode, ReplicationMode::Sync) {
            None
        } else {
            Some(Arc::new(PumpSignal::default()))
        };
        let db = ReplicatedImageDatabase {
            inner: Arc::new(Inner {
                topology: RwLock::new(Topology::steady(shards, replicas, window)),
                next_id: AtomicUsize::new(0),
                instance: fresh_snapshot_id(),
                planner_skipped: AtomicU64::new(0),
                snapshot_io: parking_lot::Mutex::new(()),
                search_gate: RwLock::new(()),
                reshard_lock: parking_lot::Mutex::new(()),
                progress: parking_lot::Mutex::new(ReshardProgress::default()),
                mode: config.mode,
                planner: config.planner,
                oplog_window: window,
                op_seq: AtomicU64::new(0),
                catchup_replays: AtomicU64::new(0),
                catchup_clones: AtomicU64::new(0),
                writer_drains: AtomicU64::new(0),
                wal: config.wal.map(WalState::new),
                pump: pump_signal.clone(),
                metrics: DbMetrics::new(),
                events: EventJournal::default(),
            }),
        };
        if db.inner.wal.is_some() {
            db.recover_wal()?;
        }
        if let Some(signal) = pump_signal {
            std::thread::Builder::new()
                .name("be2d-oplog-pump".into())
                .spawn({
                    let weak = Arc::downgrade(&db.inner);
                    move || pump_loop(weak, signal)
                })
                .map_err(DbError::Io)?;
        }
        Ok(db)
    }

    /// The configured write-acknowledgement mode.
    #[must_use]
    pub fn replication_mode(&self) -> ReplicationMode {
        self.inner.mode
    }

    /// The configured scatter-planning policy.
    #[must_use]
    pub fn planner_mode(&self) -> PlannerMode {
        self.inner.planner
    }

    /// Number of shards the database routes to (the **target** topology
    /// during an online reshard; see
    /// [`reshard_progress`](Self::reshard_progress)).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.topology.read().new_n
    }

    /// Replicas per shard.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.inner.topology.read().sets[0].replicas.len()
    }

    /// Whether an online reshard is currently migrating records.
    #[must_use]
    pub fn resharding(&self) -> bool {
        !self.inner.topology.read().is_steady()
    }

    /// The last observed reshard progress (all-zero before the first
    /// reshard; `active == false` once it finished).
    #[must_use]
    pub fn reshard_progress(&self) -> ReshardProgress {
        self.inner.progress.lock().clone()
    }

    /// Total live records (counted on each shard's first healthy
    /// replica — the leader, which is always at the shard head — under
    /// the migration gate so a mid-batch state is never observed).
    #[must_use]
    pub fn len(&self) -> usize {
        let top = self.inner.topology.read();
        let _gate = self.inner.search_gate.read();
        top.sets
            .iter()
            // Diagnostics tolerate the all-failed race: replica 0's
            // (possibly stale) count is reported rather than erroring —
            // no failed copy ever *serves* through this path.
            .map(|set| set.replicas[set.first_healthy().unwrap_or(0)].read().len())
            .sum()
    }

    /// Whether no shard holds a record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Health bits per replica: `result[shard][replica]`.
    #[must_use]
    pub fn replica_health(&self) -> Vec<Vec<bool>> {
        health_bits(&self.inner.topology.read())
    }

    /// Cumulative count of shards the scatter planner skipped because
    /// their class postings could not contribute a candidate.
    #[must_use]
    pub fn planner_skipped(&self) -> u64 {
        self.inner.planner_skipped.load(Ordering::Relaxed)
    }

    /// The database's lock-free metric handles (per-shard scatter
    /// timings, gather, oplog/WAL latency, replica picks). Cloning the
    /// returned struct shares the underlying atomics, so an exposition
    /// layer can register them once and scrape forever.
    #[must_use]
    pub fn metrics(&self) -> &DbMetrics {
        &self.inner.metrics
    }

    /// The database's event journal: replica fail/heal, reshard
    /// start/finish, and WAL checkpoints are recorded here as they
    /// happen; embedders (the server's health engine) append their own
    /// events — SLO burns, advisor recommendations — to the same ring
    /// so one cursor covers everything.
    #[must_use]
    pub fn events(&self) -> &EventJournal {
        &self.inner.events
    }

    /// All statistics under one simultaneous read lock across every
    /// replica of every shard.
    #[must_use]
    pub fn stats(&self) -> ReplicaStats {
        let top = self.inner.topology.read();
        let guards: Vec<Vec<_>> = top
            .sets
            .iter()
            .map(|set| set.replicas.iter().map(RwLock::read).collect())
            .collect();
        let mut classes: BTreeSet<ObjectClass> = BTreeSet::new();
        let mut stats = ReplicaStats {
            shard_records: Vec::with_capacity(guards.len()),
            replica_records: Vec::with_capacity(guards.len()),
            replica_health: health_bits(&top),
            classes: 0,
            objects: 0,
        };
        for (set, replica_guards) in top.sets.iter().zip(&guards) {
            // Same stale-tolerant rule as `len()`: stats never serve data.
            let primary = &replica_guards[set.first_healthy().unwrap_or(0)];
            classes.extend(primary.class_index().classes().cloned());
            stats.objects += primary.object_count();
            stats.shard_records.push(primary.len());
            stats
                .replica_records
                .push(replica_guards.iter().map(|g| g.len()).collect());
        }
        stats.classes = classes.len();
        stats
    }

    /// Per-shard replication positions — head sequence, per-replica lag
    /// and last-applied sequence — plus the catch-up counters.
    #[must_use]
    pub fn replication_stats(&self) -> ReplicationStats {
        let top = self.inner.topology.read();
        ReplicationStats {
            mode: self.inner.mode,
            shards: top
                .sets
                .iter()
                .map(|set| {
                    let head = set.head.load(Ordering::SeqCst);
                    ShardReplication {
                        head_seq: head,
                        replicas: (0..set.replicas.len())
                            .map(|r| {
                                let applied = set.applied[r].load(Ordering::SeqCst);
                                ReplicaLag {
                                    last_applied_seq: applied,
                                    lag: head.saturating_sub(applied),
                                    healthy: set.health[r].load(Ordering::SeqCst),
                                }
                            })
                            .collect(),
                    }
                })
                .collect(),
            catchup_replays: self.inner.catchup_replays.load(Ordering::Relaxed),
            catchup_clones: self.inner.catchup_clones.load(Ordering::Relaxed),
            writer_drains: self.inner.writer_drains.load(Ordering::Relaxed),
            fallback_reads: self.inner.metrics.replica_fallback_reads.get(),
        }
    }

    /// Op-log state: window, newest sequence, ring occupancy, and WAL
    /// counters when durability mode is on.
    #[must_use]
    pub fn oplog_stats(&self) -> OplogStats {
        let top = self.inner.topology.read();
        OplogStats {
            window: self.inner.oplog_window,
            last_seq: self.inner.op_seq.load(Ordering::SeqCst),
            entries: top.sets.iter().map(|set| set.log.lock().len()).sum(),
            wal: self.inner.wal.as_ref().map(WalState::stats),
        }
    }

    /// Blocks until every healthy replica of every shard has applied
    /// every acknowledged write (lag 0 everywhere). A no-op under Sync;
    /// under Quorum/Async it drains what the background pump hasn't
    /// reached yet — tests and benchmarks use it as a deterministic
    /// settle point.
    pub fn flush_replication(&self) {
        let top = self.inner.topology.read();
        for (shard, set) in top.sets.iter().enumerate() {
            let _order = set.write_order.lock();
            for r in 0..set.replicas.len() {
                if set.health[r].load(Ordering::SeqCst) {
                    drain_replica(&top, set, shard, r);
                }
            }
        }
    }

    /// Indexes a scene (Algorithm-1 conversion outside all locks).
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_scene(&self, name: &str, scene: &Scene) -> Result<RecordId, DbError> {
        self.insert_symbolic(name, SymbolicImage::from_scene(scene))
    }

    /// Stores a pre-converted symbolic picture through the owning
    /// shard's op log (leader first, followers per the replication
    /// mode).
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the underlying insert.
    pub fn insert_symbolic(
        &self,
        name: &str,
        symbolic: SymbolicImage,
    ) -> Result<RecordId, DbError> {
        let top = self.inner.topology.read();
        // Same id-allocation protocol as the sharded database: ids are
        // handed out before any lock, so a slot may be occupied by a
        // concurrently restored corpus — skip to a fresh id (the restore
        // healed the counter above every restored slot).
        'fresh_id: for _ in 0..64 {
            let id = RecordId(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
            // A reshard batch may move the boundary past `id` between
            // routing and locking; the boundary is frozen while we hold
            // the shard's write-order mutex, so re-route and retry until
            // the route sticks.
            loop {
                let (shard, local) = top.route(id);
                let set = &top.sets[shard];
                let _order = set.write_order.lock();
                if top.route(id) != (shard, local) {
                    continue;
                }
                let Some(leader) = set.first_healthy() else {
                    return Err(ReplicaSet::no_healthy(shard));
                };
                if set.replicas[leader].read().get(local).is_some() {
                    continue 'fresh_id;
                }
                self.inner.apply_logged(
                    &top,
                    shard,
                    Op::Insert {
                        id: id.index(),
                        name: name.to_string(),
                        symbolic: symbolic.clone(),
                    },
                )?;
                return Ok(id);
            }
        }
        Err(DbError::Persist {
            reason: "insert kept colliding with concurrently restored records".into(),
        })
    }

    /// Routes a mutation to the owning shard under its write-order
    /// mutex, re-validating the route against reshard batches, and
    /// applies it through the shard's op log.
    fn routed_write(&self, id: RecordId, op: Op) -> Result<(), DbError> {
        let top = self.inner.topology.read();
        loop {
            let (shard, local) = top.route(id);
            let set = &top.sets[shard];
            let _order = set.write_order.lock();
            // The boundary only moves under *all* write-order mutexes,
            // so holding this one freezes it; a stale route retries.
            if top.route(id) != (shard, local) {
                continue;
            }
            return self
                .inner
                .apply_logged(&top, shard, op)
                .map_err(|e| globalise_error(e, id));
        }
    }

    /// Removes a record through its owning shard's op log.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] (with the global id) for dead
    /// or unassigned ids.
    pub fn remove(&self, id: RecordId) -> Result<(), DbError> {
        self.routed_write(id, Op::Remove { id: id.index() })
    }

    /// Looks a record up on one healthy replica, returning a clone with
    /// its **global** id. Under Quorum/Async the lookup reads the
    /// leader (read-your-writes); under Sync the least-outstanding
    /// picker chooses.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] (retryable) when the owning shard
    /// has no healthy replica at all — a failed copy is never served.
    pub fn get(&self, id: RecordId) -> Result<Option<ImageRecord>, DbError> {
        let top = self.inner.topology.read();
        loop {
            let (shard, local) = top.route(id);
            let set = &top.sets[shard];
            let replica = match self.inner.mode {
                ReplicationMode::Sync => set.pick(),
                _ => set.first_healthy(),
            }
            .ok_or_else(|| ReplicaSet::no_healthy(shard))?;
            set.begin_read(replica);
            let guard = set.replicas[replica].read();
            // The boundary only moves under *all* replica write locks,
            // so holding this read lock freezes it; a stale route means
            // a batch moved the record between routing and locking.
            if top.route(id) != (shard, local) {
                drop(guard);
                set.end_read(replica);
                continue;
            }
            let record = guard.get(local).cloned();
            drop(guard);
            set.end_read(replica);
            return Ok(record.map(|mut r| {
                r.id = id;
                r
            }));
        }
    }

    /// Incremental §3.2 object insertion through the owning shard's op
    /// log.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn add_object(&self, id: RecordId, class: &ObjectClass, mbr: Rect) -> Result<(), DbError> {
        self.routed_write(
            id,
            Op::AddObject {
                id: id.index(),
                class: class.clone(),
                mbr,
            },
        )
    }

    /// Incremental §3.2 object removal through the owning shard's op
    /// log.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the record is unchanged on error.
    pub fn remove_object(
        &self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        self.routed_write(
            id,
            Op::RemoveObject {
                id: id.index(),
                class: class.clone(),
                mbr,
            },
        )
    }

    /// Scatter-gather ranked search over **one chosen replica per
    /// shard** (least-outstanding among healthy, in-sync copies —
    /// replicas beyond the mode's lag bound are skipped), merged with
    /// the same top-k heap the sharded database uses. The scatter
    /// planner skips shards whose class postings provably cannot
    /// contribute (exact inverted-index candidates only); under
    /// [`PlannerMode::V2`] it additionally orders the scatter by
    /// per-shard selectivity — the most selective shard runs first and
    /// seeds the cross-shard score threshold — and picks each shard's
    /// [`CandidateStrategy`](crate::CandidateStrategy) from the same
    /// estimate.
    ///
    /// Ranking — ids, scores, and tie-breaks — is bit-identical to an
    /// unreplicated [`ShardedImageDatabase`](crate::ShardedImageDatabase)
    /// (and to a single [`ImageDatabase`]) over the same records, in
    /// **either planner mode**, **even while an online reshard is
    /// migrating records**: the whole scatter holds the migration gate,
    /// so batch moves are atomic to it, and the epoch maps each shard's
    /// local slots back to global ids. Threshold pruning is admissible
    /// whatever order shards publish into it, so reordering the scatter
    /// never changes the merged top-k.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] (retryable) when any touched shard
    /// has no healthy replica at all — a failed copy is never served.
    pub fn search(
        &self,
        query: &BeString2D,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        self.search_traced(query, options).map(|(hits, _)| hits)
    }

    /// [`search`](Self::search) plus the per-stage [`QueryTrace`]. The
    /// trace is built on every search anyway (its histograms feed
    /// `/v1/metrics`), so the hits — and their `f64` scores, to the
    /// bit — are identical to the untraced call: this *is* the search
    /// path, not a parallel one.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] (retryable) when any touched shard
    /// has no healthy replica at all.
    pub fn search_traced(
        &self,
        query: &BeString2D,
        options: &QueryOptions,
    ) -> Result<(Vec<SearchHit>, QueryTrace), DbError> {
        let total_start = Instant::now();
        let metrics = &self.inner.metrics;
        let top = self.inner.topology.read();
        // Shared gate lease for the whole scatter: a reshard batch move
        // (exclusive holder) either completed before this search or
        // waits for it — never interleaves.
        let _gate = self.inner.search_gate.read();
        let mode = self.inner.mode;
        let n = top.sets.len();
        if n == 1 {
            let set = &top.sets[0];
            let replica = set
                .pick_read(mode, metrics)
                .ok_or_else(|| ReplicaSet::no_healthy(0))?;
            metrics.replica_picks.inc();
            metrics.outstanding_reads.inc();
            set.begin_read(replica);
            let scatter_start = Instant::now();
            let (hits, stats) = set.replicas[replica]
                .read()
                .search_bounded(query, options, None);
            let scatter_ns = elapsed_ns(scatter_start);
            set.end_read(replica);
            metrics.outstanding_reads.dec();
            metrics.scatter.get(0).record_ns(scatter_ns);
            metrics.stage2_scored.add(stats.scored as u64);
            metrics.bound_pruned.add(stats.bound_pruned as u64);
            let total_ns = elapsed_ns(total_start);
            metrics.search_total.record_ns(total_ns);
            let trace = QueryTrace {
                planner_ns: 0,
                scatter_ns,
                gather_ns: 0,
                total_ns,
                ordered: false,
                shards: vec![ShardTrace {
                    shard: 0,
                    replica,
                    order: 0,
                    first_wave: false,
                    strategy: CandidateStrategy::IndexWalk,
                    est_candidates: stats.candidates,
                    skipped: false,
                    hits: hits.len(),
                    scored: stats.scored,
                    bound_pruned: stats.bound_pruned,
                    elapsed_ns: scatter_ns,
                }],
            };
            return Ok((hits, trace));
        }
        // Frozen for the whole scatter: the boundary only moves under
        // the exclusive gate.
        let planner_start = Instant::now();
        let epoch = top.epoch();
        let topology = &*top;
        let planner_skipped = &self.inner.planner_skipped;
        let query_classes: Vec<ObjectClass> = query.class_counts().into_keys().collect();
        // With two-stage pruning on and a top-k bound, shards share a
        // monotone score floor: each publishes its k-th exact score,
        // letting the others stop scoring candidates whose bounds fall
        // below it — the merged top-k is unchanged.
        let threshold = (options.two_stage.is_some() && options.top_k.is_some())
            .then(crate::ScoreThreshold::new);
        // Planner v2: estimate each shard's candidate count from its
        // posting sizes (a brief leader read lock; the estimate may go
        // stale the moment it is read — it only steers order and
        // strategy, never what gets scored) and choose the candidate
        // strategy. The inverted-index path applies exactly when
        // `search_planned` would take it.
        let index_path = options.candidates == crate::CandidateSource::ClassIndex
            && options.prefilter != crate::PrefilterMode::None
            && !query_classes.is_empty();
        let v2 = self.inner.planner == PlannerMode::V2;
        let mut est_of = vec![0usize; n];
        let mut strategy_of = vec![CandidateStrategy::IndexWalk; n];
        if v2 {
            for shard in 0..n {
                let set = &topology.sets[shard];
                let Some(leader) = set.first_healthy() else {
                    return Err(ReplicaSet::no_healthy(shard));
                };
                let guard = set.replicas[leader].read();
                let len = guard.len();
                let est = if index_path {
                    let index = guard.class_index();
                    match options.prefilter {
                        // Intersection size is at most the smallest posting.
                        crate::PrefilterMode::AllClasses => query_classes
                            .iter()
                            .map(|c| index.postings_len(c))
                            .min()
                            .unwrap_or(0),
                        // Union size is at most the posting sum (and the
                        // shard itself).
                        crate::PrefilterMode::AnyClass => query_classes
                            .iter()
                            .map(|c| index.postings_len(c))
                            .sum::<usize>()
                            .min(len),
                        crate::PrefilterMode::None => unreachable!("index_path excludes None"),
                    }
                } else {
                    len
                };
                est_of[shard] = est;
                // Postings covering most of the shard make the posting
                // walk's near-corpus-sized id union slower than one
                // dense pass with exact membership probes.
                if index_path && len > 0 && est.saturating_mul(2) >= len {
                    strategy_of[shard] = CandidateStrategy::DenseScan;
                }
            }
        }
        // Visit order: most selective first, so the sequenced first
        // wave raises the shared threshold as early (and as high) as
        // possible. Ordering only pays when a threshold exists to
        // tighten — without one it would serialise a shard for nothing.
        let ordered = v2 && threshold.is_some();
        let mut visit: Vec<usize> = (0..n).collect();
        if ordered {
            visit.sort_by_key(|&shard| (est_of[shard], shard));
            // The sequenced first wave only pays if it can produce a
            // k-th exact score to seed the threshold: a shard with
            // fewer than k candidates seeds nothing and would be pure
            // serialisation. Promote the smallest shard that can fill
            // k; when none can, the minimum-estimate order stands.
            if let Some(k) = options.top_k {
                if let Some(pos) = visit.iter().position(|&shard| est_of[shard] >= k) {
                    let seed = visit.remove(pos);
                    visit.insert(0, seed);
                }
            }
            metrics.planner_ordered_scatters.inc();
        }
        let mut order_of = vec![0usize; n];
        for (position, &shard) in visit.iter().enumerate() {
            order_of[shard] = position;
        }
        let planner_ns = elapsed_ns(planner_start);
        let scatter_start = Instant::now();
        let est_of = &est_of;
        let strategy_of = &strategy_of;
        let order_of = &order_of;
        let scan = |shard: usize| -> Result<(Vec<SearchHit>, ShardTrace), DbError> {
            let shard_start = Instant::now();
            let set = &topology.sets[shard];
            let replica = set
                .pick_read(mode, metrics)
                .ok_or_else(|| ReplicaSet::no_healthy(shard))?;
            metrics.replica_picks.inc();
            metrics.outstanding_reads.inc();
            set.begin_read(replica);
            let guard = set.replicas[replica].read();
            let (hits, skipped, stats) = if shard_cannot_contribute(&guard, &query_classes, options)
            {
                planner_skipped.fetch_add(1, Ordering::Relaxed);
                (Vec::new(), true, crate::SearchStats::default())
            } else {
                let strategy = strategy_of[shard];
                if strategy == CandidateStrategy::DenseScan {
                    metrics.planner_dense_scans.inc();
                }
                let (mut hits, stats) =
                    guard.search_planned(query, options, threshold.as_ref(), strategy);
                for hit in &mut hits {
                    // Local-slot order maps monotonically to
                    // global-id order under any epoch (see
                    // `epoch.rs`), so each per-shard ranked list
                    // stays merge-ready.
                    hit.id = RecordId(
                        epoch
                            .global_of(shard, hit.id.index())
                            .expect("occupied slot resolves under the live epoch"),
                    );
                }
                (hits, false, stats)
            };
            drop(guard);
            set.end_read(replica);
            metrics.outstanding_reads.dec();
            let shard_ns = elapsed_ns(shard_start);
            metrics.scatter.get(shard).record_ns(shard_ns);
            metrics.stage2_scored.add(stats.scored as u64);
            metrics.bound_pruned.add(stats.bound_pruned as u64);
            let trace = ShardTrace {
                shard,
                replica,
                order: order_of[shard],
                first_wave: ordered && order_of[shard] == 0,
                strategy: strategy_of[shard],
                est_candidates: est_of[shard],
                skipped,
                hits: hits.len(),
                scored: stats.scored,
                bound_pruned: stats.bound_pruned,
                elapsed_ns: shard_ns,
            };
            Ok((hits, trace))
        };
        // next_id is a cheap upper bound on the total record count.
        let approx_records = self.inner.next_id.load(Ordering::Relaxed);
        let per_shard: Vec<Result<(Vec<SearchHit>, ShardTrace), DbError>> = if ordered {
            // Sequence the first wave: the most selective shard's k-th
            // exact score lands in the shared threshold before any other
            // shard starts scoring, so the expensive shards ride a
            // tightened bound from their first frontier batch.
            let (first, rest) = visit.split_first().expect("multi-shard scatter");
            let mut results = Vec::with_capacity(n);
            results.push(scan(*first));
            results.extend(scatter_scan_list(rest, approx_records, scan));
            results
        } else {
            scatter_scan_list(&visit, approx_records, scan)
        };
        let scatter_ns = elapsed_ns(scatter_start);
        let mut lists = Vec::with_capacity(per_shard.len());
        let mut shards = Vec::with_capacity(per_shard.len());
        for result in per_shard {
            let (hits, trace) = result?;
            lists.push(hits);
            shards.push(trace);
        }
        // Per-shard entries are reported in shard order whatever order
        // the planner visited them in (`order` keeps the plan visible).
        shards.sort_by_key(|t| t.shard);
        let gather_start = Instant::now();
        let hits = merge_top_k(lists, options.top_k);
        let gather_ns = elapsed_ns(gather_start);
        metrics.gather.record_ns(gather_ns);
        let total_ns = elapsed_ns(total_start);
        metrics.search_total.record_ns(total_ns);
        let trace = QueryTrace {
            planner_ns,
            scatter_ns,
            gather_ns,
            total_ns,
            ordered,
            shards,
        };
        Ok((hits, trace))
    }

    /// Scatter-gather search with a scene query (converted once, outside
    /// all locks).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] (retryable) when any touched shard
    /// has no healthy replica at all.
    pub fn search_scene(
        &self,
        query: &Scene,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        self.search(&be2d_core::convert_scene(query), options)
    }

    /// [`search_scene`](Self::search_scene) with the per-stage
    /// [`QueryTrace`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] (retryable) when any touched shard
    /// has no healthy replica at all.
    pub fn search_scene_traced(
        &self,
        query: &Scene,
        options: &QueryOptions,
    ) -> Result<(Vec<SearchHit>, QueryTrace), DbError> {
        self.search_traced(&be2d_core::convert_scene(query), options)
    }

    /// Scatter-gather search with textual BE-strings (parsed once).
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the query strings and
    /// [`DbError::Replica`] from the scatter.
    pub fn search_text(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        let query = BeString2D::parse(u, v).map_err(DbError::from)?;
        self.search(&query, options)
    }

    /// [`search_text`](Self::search_text) with the per-stage
    /// [`QueryTrace`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the query strings and
    /// [`DbError::Replica`] from the scatter.
    pub fn search_text_traced(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<(Vec<SearchHit>, QueryTrace), DbError> {
        let query = BeString2D::parse(u, v).map_err(DbError::from)?;
        self.search_traced(&query, options)
    }

    /// Takes a replica out of rotation — the fault-injection hook.
    /// Reads and writes route around it immediately; its contents (and
    /// its applied-sequence position) go stale until
    /// [`rebuild_replica`](Self::rebuild_replica).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] for out-of-range coordinates or when
    /// the replica is its shard's **last healthy copy** (every shard
    /// must keep serving).
    pub fn fail_replica(&self, shard: usize, replica: usize) -> Result<(), DbError> {
        let top = self.inner.topology.read();
        let set = checked_set(&top, shard, replica)?;
        let _order = set.write_order.lock();
        if set.health[replica].load(Ordering::SeqCst) && set.healthy_count() == 1 {
            return Err(DbError::Replica {
                reason: format!(
                    "replica {replica} is shard {shard}'s last healthy copy and cannot be failed"
                ),
            });
        }
        set.health[replica].store(false, Ordering::SeqCst);
        self.inner
            .events
            .record(EventKind::ReplicaFailed { shard, replica });
        Ok(())
    }

    /// Heals a failed replica and rejoins it to rotation. When the
    /// replica's gap still fits the shard's op-log window — no eviction
    /// or barrier crossed its position — the missed ops are **replayed
    /// in place** (`catchup_replays`), which is proportional to the gap,
    /// not the shard. Otherwise the replica falls back to cloning a
    /// healthy peer (`catchup_clones`), exactly as before the op log
    /// existed. The shard's write traffic pauses for the duration
    /// (readers keep flowing on the healthy replicas), so the rebuilt
    /// copy is exactly up to date the moment it rejoins — a rebuild
    /// during an online reshard catches up to the peer's current
    /// mixed-layout state. Rebuilding an already-healthy replica is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] for out-of-range coordinates.
    pub fn rebuild_replica(&self, shard: usize, replica: usize) -> Result<(), DbError> {
        let top = self.inner.topology.read();
        let set = checked_set(&top, shard, replica)?;
        let _order = set.write_order.lock();
        if set.health[replica].load(Ordering::SeqCst) {
            return Ok(());
        }
        // Fast path: replay the gap from the ring.
        let pending = {
            let log = set.log.lock();
            log.collect_since(set.applied[replica].load(Ordering::SeqCst))
        };
        if let Some(pending) = pending {
            let replayed = {
                let mut guard = set.replicas[replica].write();
                let epoch = top.epoch();
                pending.into_iter().try_for_each(|(seq, op)| {
                    op.apply_local(&mut guard, &epoch, shard)?;
                    set.applied[replica].store(seq, Ordering::SeqCst);
                    Ok::<(), DbError>(())
                })
            };
            if replayed.is_ok() {
                set.health[replica].store(true, Ordering::SeqCst);
                self.inner.catchup_replays.fetch_add(1, Ordering::Relaxed);
                self.inner.events.record(EventKind::ReplicaHealed {
                    shard,
                    replica,
                    method: "replay",
                });
                return Ok(());
            }
            // A replay failure means the stale state diverged from what
            // the log assumed; fall through to the clone path, which
            // overwrites it wholesale.
        }
        // Clone fallback. The source must be at the shard head first:
        // an async-mode leader may itself have been promoted while
        // lagging.
        let source = loop {
            let Some(source) = set.first_healthy() else {
                return Err(ReplicaSet::no_healthy(shard));
            };
            if drain_replica(&top, set, shard, source) {
                break source;
            }
        };
        let rebuilt = set.replicas[source].read().clone();
        *set.replicas[replica].write() = rebuilt;
        set.applied[replica].store(set.head.load(Ordering::SeqCst), Ordering::SeqCst);
        set.health[replica].store(true, Ordering::SeqCst);
        self.inner.catchup_clones.fetch_add(1, Ordering::Relaxed);
        self.inner.events.record(EventKind::ReplicaHealed {
            shard,
            replica,
            method: "clone",
        });
        Ok(())
    }

    /// Saves a consistent, incremental sharded snapshot (one file per
    /// physical shard, cloned from each shard's leader after draining
    /// it to the shard head) in the exact format of
    /// [`ShardedImageDatabase::save_snapshot`](crate::ShardedImageDatabase::save_snapshot)
    /// — the two deployments' snapshots are interchangeable. Write
    /// traffic pauses for the duration of the clone so the snapshot is
    /// one global state; readers keep flowing. A snapshot taken during
    /// an online reshard records the routing epoch, and every snapshot
    /// records the op-log positions (manifest v4), so it restores
    /// exactly and anchors WAL recovery.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from serialisation or file I/O.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, DbError> {
        self.save_snapshot_with_floor(path)
            .map(|(records, _)| records)
    }

    /// `save_snapshot`, also returning the snapshot's exact sequence
    /// watermark: every op with a sequence at or below it is contained
    /// in the snapshot, every later op is not.
    fn save_snapshot_with_floor(&self, path: &Path) -> Result<(usize, u64), DbError> {
        let _io = self.inner.snapshot_io.lock();
        let top = self.inner.topology.read();
        // Parsed before any lock, so deciding what to skip costs no
        // lock or write-pause time. Mid-reshard snapshots never reuse:
        // batch moves dirty shards faster than reuse could help.
        let previous = if top.is_steady() {
            PreviousSnapshot::load(path, self.inner.instance, top.sets.len())
        } else {
            PreviousSnapshot::none()
        };
        let (payload, floor) = {
            let _orders: Vec<_> = top.sets.iter().map(|set| set.write_order.lock()).collect();
            // Under Quorum/Async the leader to be cloned may itself lag
            // (freshly promoted); drain every leader to its head so the
            // snapshot holds *all* acknowledged writes and the recorded
            // watermark is exact.
            let mut leaders = Vec::with_capacity(top.sets.len());
            for (shard, set) in top.sets.iter().enumerate() {
                let leader = loop {
                    let Some(leader) = set.first_healthy() else {
                        return Err(ReplicaSet::no_healthy(shard));
                    };
                    if drain_replica(&top, set, shard, leader) {
                        break leader;
                    }
                };
                leaders.push(leader);
            }
            let guards: Vec<_> = top
                .sets
                .iter()
                .zip(&leaders)
                .map(|(set, &leader)| set.replicas[leader].read())
                .collect();
            let edits: Vec<u64> = top
                .sets
                .iter()
                .map(|set| set.edits.load(Ordering::SeqCst))
                .collect();
            // Only shards dirtied since the previous snapshot are
            // cloned at all: snapshot cost (and the write pause) is
            // proportional to write traffic, not corpus size.
            let shards: Vec<Option<ImageDatabase>> = guards
                .iter()
                .enumerate()
                .map(|(shard, guard)| {
                    (!previous.reusable(path, shard, edits[shard])).then(|| (**guard).clone())
                })
                .collect();
            // Exact because sequences are only assigned under a
            // write-order mutex, all of which are held here.
            let floor = self.inner.op_seq.load(Ordering::SeqCst);
            let payload = SnapshotPayload {
                records: guards.iter().map(|g| g.len()).sum(),
                shards,
                next_id: self.inner.next_id.load(Ordering::SeqCst),
                edits,
                writer: self.inner.instance,
                // Frozen while all write-order mutexes are held.
                epoch: top.epoch(),
                log_heads: top
                    .sets
                    .iter()
                    .map(|set| set.head.load(Ordering::SeqCst))
                    .collect(),
                wal_seq: floor,
            };
            (payload, floor)
        };
        save_snapshot_at(path, payload, &previous).map(|records| (records, floor))
    }

    /// Takes a fresh WAL anchor snapshot and truncates every shard's
    /// on-disk log below its watermark, bounding the next recovery's
    /// replay to ops newer than this call. Returns the record count of
    /// the anchor. Safe to call while serving: ops sequenced after the
    /// anchor have sequences above the floor and survive truncation.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] when WAL durability mode is off;
    /// propagates snapshot and file I/O errors.
    pub fn checkpoint_wal(&self) -> Result<usize, DbError> {
        let start = Instant::now();
        let Some(wal) = &self.inner.wal else {
            return Err(DbError::Persist {
                reason: "WAL durability mode is not enabled".into(),
            });
        };
        let anchor = WalState::anchor_path(&wal.config.dir);
        let (records, floor) = self.save_snapshot_with_floor(&anchor)?;
        for (shard, _path) in wal_shard_files(&wal.config.dir)? {
            wal.writer(shard).lock().truncate_below(floor)?;
            wal.truncations.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.metrics.checkpoint.record(start.elapsed());
        self.inner
            .events
            .record(EventKind::WalCheckpoint { records });
        Ok(records)
    }

    /// Boot-time WAL recovery: load the anchor snapshot (if any), then
    /// replay every complete WAL record above its watermark into all
    /// replicas, healing torn tails on disk. Runs before the database
    /// is shared, so plain write locks suffice. Finishes by re-anchoring
    /// so the next boot replays only fresh ops.
    fn recover_wal(&self) -> Result<(), DbError> {
        let wal = self
            .inner
            .wal
            .as_ref()
            .expect("recover_wal requires WAL mode");
        let dir = wal.config.dir.clone();
        // First boot on a fresh directory: the anchor written below
        // needs the directory to exist.
        std::fs::create_dir_all(&dir)?;
        let anchor = WalState::anchor_path(&dir);
        let floor = wal_floor_of(&anchor);
        {
            let top = self.inner.topology.read();
            if anchor.exists() {
                let saved = load_snapshot_at(&anchor)?;
                let next_id = saved.next_id;
                let rebuilt = reroute_shards(saved, top.sets.len())?;
                let required = heal_next_id(&rebuilt, next_id);
                for (set, db) in top.sets.iter().zip(&rebuilt) {
                    for replica in &set.replicas {
                        *replica.write() = db.clone();
                    }
                    set.edits.fetch_add(1, Ordering::SeqCst);
                }
                self.inner.next_id.fetch_max(required, Ordering::SeqCst);
            }
            let mut records: Vec<WalRecord> = Vec::new();
            let mut healed = 0u64;
            for (_shard, path) in wal_shard_files(&dir)? {
                let (mut tail, truncated) = load_wal_file(&path, true)?;
                if truncated {
                    healed += 1;
                }
                records.append(&mut tail);
            }
            wal.healed_tails.fetch_add(healed, Ordering::Relaxed);
            // One global sequence order across all shards' files.
            records.sort_by_key(|r| r.seq);
            let mut max_seq = floor;
            let mut replayed = 0u64;
            let epoch = top.epoch();
            for record in records {
                max_seq = max_seq.max(record.seq);
                if record.seq <= floor {
                    // Already contained in the anchor snapshot.
                    continue;
                }
                if record.op.is_barrier() {
                    // By design barriers are never WAL-appended; one
                    // past the anchor means the files predate a restore
                    // that never re-anchored. Refuse rather than replay
                    // across a fence.
                    return Err(DbError::Persist {
                        reason: "WAL contains a replay barrier past the anchor; \
                                 restore from an explicit snapshot instead"
                            .into(),
                    });
                }
                let id = record.op.global_id().expect("non-barrier ops carry an id");
                let (shard, _) = epoch.route(id);
                let set = &top.sets[shard];
                for replica in &set.replicas {
                    record.op.apply_local(&mut replica.write(), &epoch, shard)?;
                }
                if matches!(&record.op, Op::Insert { .. }) {
                    self.inner.next_id.fetch_max(id + 1, Ordering::SeqCst);
                }
                set.edits.fetch_add(1, Ordering::SeqCst);
                replayed += 1;
            }
            wal.recovered.store(replayed, Ordering::Relaxed);
            // Sequences restart above everything ever written, keeping
            // file order strictly increasing across reboots.
            self.inner.op_seq.fetch_max(max_seq, Ordering::SeqCst);
        }
        self.checkpoint_wal()?;
        Ok(())
    }

    /// Restores from a sharded manifest (v1–v4 — mid-reshard snapshots
    /// included) or a plain [`ImageDatabase::save`] file, replacing the
    /// contents of **every replica** — which also heals all failed
    /// replicas, since each now holds the same freshly restored state.
    /// Records are re-routed when the snapshot's topology differs from
    /// this database's; ids are preserved either way. A restore stamps
    /// a barrier into every shard's op log (a pre-restore gap can never
    /// be replayed across it) and, in WAL mode, re-anchors the on-disk
    /// log to the restored state.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Replica`] while an online reshard is running
    /// (the two would fight over the topology), [`DbError::Persist`]
    /// for malformed or inconsistent snapshot files, and propagates I/O
    /// errors. On error the in-memory database is untouched — except
    /// for WAL re-anchoring errors, which surface after the in-memory
    /// restore already applied.
    pub fn restore_from(&self, path: &Path) -> Result<usize, DbError> {
        // A restore replaces the full corpus under a steady topology;
        // it must never interleave with a reshard's migration sweep
        // (409), but two concurrent *restores* simply serialise — the
        // lock's other holder is then bounded.
        let _reshard = match self.inner.reshard_lock.try_lock() {
            Some(guard) => guard,
            None if self.resharding() => {
                return Err(DbError::Replica {
                    reason: "cannot restore while an online reshard is in progress".into(),
                });
            }
            None => self.inner.reshard_lock.lock(),
        };
        let _io = self.inner.snapshot_io.lock();
        {
            // The reshard lock was free, but the epoch may still be
            // mid-migration: a previous reshard aborted on an internal
            // error. Restoring a uniform layout under that epoch would
            // mis-route records; resume the reshard (rerun to the same
            // target) first. Holding the reshard lock keeps the epoch
            // steady after this check.
            let top = self.inner.topology.read();
            if !top.is_steady() {
                return Err(DbError::Replica {
                    reason: format!(
                        "cannot restore while an aborted reshard to {} shards awaits resume",
                        top.new_n
                    ),
                });
            }
        }
        let saved = load_snapshot_at(path)?;
        let next_id = saved.next_id;
        let top = self.inner.topology.read();
        let n = top.sets.len();
        let rebuilt = reroute_shards(saved, n)?;
        let records = rebuilt.iter().map(ImageDatabase::len).sum();
        let required = heal_next_id(&rebuilt, next_id);

        // A restore is a bulk replace, exactly like a reshard batch:
        // exclusive gate first, so an in-flight scatter (which locks
        // shards one at a time) can never mix pre- and post-restore
        // records in one result set.
        let _gate = self.inner.search_gate.write();
        // All write-order mutexes (shard order), then all replica write
        // locks, before the first swap: readers never observe a
        // half-restored state.
        let _orders: Vec<_> = top.sets.iter().map(|set| set.write_order.lock()).collect();
        let mut guards: Vec<Vec<_>> = top
            .sets
            .iter()
            .map(|set| set.replicas.iter().map(RwLock::write).collect())
            .collect();
        for ((set, replica_guards), db) in top.sets.iter().zip(guards.iter_mut()).zip(&rebuilt) {
            for guard in replica_guards.iter_mut() {
                **guard = db.clone();
            }
            for health in &set.health {
                health.store(true, Ordering::SeqCst);
            }
            set.edits.fetch_add(1, Ordering::SeqCst);
        }
        // `fetch_max`, never `store` — see the sharded database's
        // restore for the insert-racing-restore argument.
        self.inner.next_id.fetch_max(required, Ordering::SeqCst);
        // Fence every shard's log: all replicas now hold identical
        // restored state (all healthy, so the barrier marks each as
        // applied) and nothing logged before this point may ever be
        // replayed into it.
        let barrier_seqs: Vec<u64> = top
            .sets
            .iter()
            .map(|set| self.inner.log_barrier(set))
            .collect();
        if let Some(wal) = &self.inner.wal {
            // Re-anchor the WAL to the restored state while every lock
            // is still held (no append can interleave): write the
            // anchor snapshot directly — `snapshot_io` is already ours
            // — then drop all on-disk records at or below the new
            // floor. A crash before the anchor lands recovers the
            // pre-restore state (the restore never acknowledged); a
            // crash after it finds only records the floor skips.
            let floor = self.inner.op_seq.load(Ordering::SeqCst);
            let payload = SnapshotPayload {
                records,
                shards: rebuilt.into_iter().map(Some).collect(),
                next_id: self.inner.next_id.load(Ordering::SeqCst),
                edits: top
                    .sets
                    .iter()
                    .map(|set| set.edits.load(Ordering::SeqCst))
                    .collect(),
                writer: self.inner.instance,
                epoch: top.epoch(),
                log_heads: barrier_seqs,
                wal_seq: floor,
            };
            let anchor = WalState::anchor_path(&wal.config.dir);
            save_snapshot_at(&anchor, payload, &PreviousSnapshot::none())?;
            for (shard, _path) in wal_shard_files(&wal.config.dir)? {
                wal.writer(shard).lock().truncate_below(floor)?;
                wal.truncations.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(records)
    }

    /// Runs a closure with shared read access to one specific replica —
    /// for tests and diagnostics that must inspect a *particular* copy.
    ///
    /// # Panics
    ///
    /// Panics when `shard` or `replica` is out of range.
    pub fn with_replica_read<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&ImageDatabase) -> R,
    ) -> R {
        f(&self.inner.topology.read().sets[shard].replicas[replica].read())
    }
}

/// Health bits per replica of a topology (`result[shard][replica]`).
fn health_bits(top: &Topology) -> Vec<Vec<bool>> {
    top.sets
        .iter()
        .map(|set| {
            set.health
                .iter()
                .map(|h| h.load(Ordering::SeqCst))
                .collect()
        })
        .collect()
}

/// Bounds-checks replica coordinates against a topology.
fn checked_set(top: &Topology, shard: usize, replica: usize) -> Result<&Arc<ReplicaSet>, DbError> {
    let set = top.sets.get(shard).ok_or_else(|| DbError::Replica {
        reason: format!("shard {shard} out of range (shards: {})", top.sets.len()),
    })?;
    if replica >= set.replicas.len() {
        return Err(DbError::Replica {
            reason: format!(
                "replica {replica} out of range (replicas: {})",
                set.replicas.len()
            ),
        });
    }
    Ok(set)
}

/// Rewrites shard-local [`DbError::UnknownRecord`] ids back to the
/// global id the caller used.
fn globalise_error(e: DbError, global: RecordId) -> DbError {
    match e {
        DbError::UnknownRecord { .. } => DbError::UnknownRecord { id: global.index() },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    fn scene(x: i64) -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (x, x + 10, 10, 20))
            .object("B", (50, 90, 50, 90))
            .build()
            .unwrap()
    }

    fn filled(shards: usize, replicas: usize, n: i64) -> ReplicatedImageDatabase {
        let db = ReplicatedImageDatabase::with_topology(shards, replicas);
        for i in 0..n {
            db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
        }
        db
    }

    #[test]
    fn writes_fan_out_to_every_replica() {
        let db = filled(2, 3, 8);
        assert_eq!(db.len(), 8);
        for shard in 0..2 {
            for replica in 0..3 {
                assert_eq!(
                    db.with_replica_read(shard, replica, ImageDatabase::len),
                    4,
                    "shard {shard} replica {replica}"
                );
            }
        }
        db.remove(RecordId(3)).unwrap();
        for replica in 0..3 {
            assert_eq!(db.with_replica_read(1, replica, ImageDatabase::len), 3);
        }
        assert!(matches!(
            db.remove(RecordId(3)),
            Err(DbError::UnknownRecord { id: 3 })
        ));
    }

    #[test]
    fn object_edits_fan_out() {
        let db = filled(2, 2, 4);
        let class = ObjectClass::new("X");
        let mbr = Rect::new(0, 5, 0, 5).unwrap();
        db.add_object(RecordId(1), &class, mbr).unwrap();
        for replica in 0..2 {
            let objects =
                db.with_replica_read(1, replica, |d| d.get(RecordId(0)).unwrap().symbolic.clone());
            assert_eq!(objects.object_count(), 3, "replica {replica}");
        }
        db.remove_object(RecordId(1), &class, mbr).unwrap();
        assert_eq!(
            db.get(RecordId(1))
                .unwrap()
                .unwrap()
                .symbolic
                .object_count(),
            2
        );
        assert!(db
            .add_object(RecordId(77), &class, mbr)
            .is_err_and(|e| matches!(e, DbError::UnknownRecord { id: 77 })));
    }

    #[test]
    fn reads_route_around_failed_replicas() {
        let db = filled(2, 2, 12);
        let query = scene(3);
        let before = db.search_scene(&query, &QueryOptions::default()).unwrap();

        db.fail_replica(0, 0).unwrap();
        db.fail_replica(1, 1).unwrap();
        // Every read still answers, from the surviving copies.
        for _ in 0..8 {
            let hits = db.search_scene(&query, &QueryOptions::default()).unwrap();
            assert_eq!(hits.len(), before.len());
            for (a, b) in before.iter().zip(&hits) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert_eq!(db.len(), 12);
        assert!(db.get(RecordId(5)).unwrap().is_some());

        // The last healthy copy of a shard cannot be failed.
        let err = db.fail_replica(0, 1).unwrap_err();
        assert!(matches!(err, DbError::Replica { .. }), "{err}");
        assert!(err.to_string().contains("last healthy"), "{err}");
    }

    #[test]
    fn failed_replica_goes_stale_then_rebuilds() {
        let db = filled(1, 2, 4);
        db.fail_replica(0, 1).unwrap();
        // Writes land only on the healthy replica; the failed one is
        // frozen at 4 records.
        db.insert_scene("late", &scene(7)).unwrap();
        db.remove(RecordId(0)).unwrap();
        assert_eq!(db.with_replica_read(0, 0, ImageDatabase::len), 4);
        assert_eq!(db.with_replica_read(0, 1, ImageDatabase::len), 4);
        assert!(
            db.with_replica_read(0, 1, |d| d.get(RecordId(0)).is_some()),
            "stale replica still holds the removed record"
        );
        assert!(db.with_replica_read(0, 0, |d| d.get(RecordId(0)).is_none()));

        // Rebuild catches the replica up bit-for-bit and rejoins it.
        db.rebuild_replica(0, 1).unwrap();
        let a = db.with_replica_read(0, 0, Clone::clone);
        let b = db.with_replica_read(0, 1, Clone::clone);
        assert_eq!(a, b, "rebuilt replica matches its source exactly");
        assert!(db.replica_health().iter().flatten().all(|&h| h));

        // Rebuilding a healthy replica is a no-op; bad coordinates err.
        db.rebuild_replica(0, 1).unwrap();
        assert!(db.fail_replica(9, 0).is_err());
        assert!(db.rebuild_replica(0, 9).is_err());
    }

    #[test]
    fn journal_records_fail_heal_and_reshard_in_order() {
        let db = filled(2, 2, 6);
        assert_eq!(db.events().last_seq(), 0, "quiet cluster, empty journal");
        db.fail_replica(0, 1).unwrap();
        db.insert_scene("late", &scene(8)).unwrap();
        db.rebuild_replica(0, 1).unwrap();
        crate::Resharder::new(&db).run(4).unwrap();
        let (events, last) = db.events().since(0);
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec![
                "replica_failed",
                "replica_healed",
                "reshard_started",
                "reshard_finished"
            ]
        );
        assert_eq!(last, 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(matches!(
            events[0].kind,
            EventKind::ReplicaFailed {
                shard: 0,
                replica: 1
            }
        ));
        assert!(matches!(
            events[1].kind,
            EventKind::ReplicaHealed {
                shard: 0,
                replica: 1,
                method: "replay"
            }
        ));
        assert!(matches!(
            events[3].kind,
            EventKind::ReshardFinished { from: 2, to: 4, .. }
        ));
        // Incremental polling from the remembered cursor.
        let (tail, _) = db.events().since(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].kind.name(), "reshard_started");
    }

    #[test]
    fn heal_within_window_replays_instead_of_cloning() {
        let db = filled(1, 2, 6);
        db.fail_replica(0, 1).unwrap();
        db.insert_scene("late", &scene(9)).unwrap();
        db.remove(RecordId(2)).unwrap();
        db.rebuild_replica(0, 1).unwrap();
        let stats = db.replication_stats();
        assert_eq!(stats.catchup_replays, 1, "gap fits the window: replay");
        assert_eq!(stats.catchup_clones, 0);
        let a = db.with_replica_read(0, 0, Clone::clone);
        let b = db.with_replica_read(0, 1, Clone::clone);
        assert_eq!(a, b, "replayed replica matches the leader exactly");
        assert_eq!(stats.shards[0].replicas[1].lag, 0);
    }

    #[test]
    fn heal_past_window_falls_back_to_clone() {
        let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
            shards: 1,
            replicas: 2,
            oplog_window: 2,
            ..ReplicaConfig::default()
        })
        .unwrap();
        for i in 0..4 {
            db.insert_scene(&format!("img{i}"), &scene(i)).unwrap();
        }
        db.fail_replica(0, 1).unwrap();
        for i in 0..5 {
            db.insert_scene(&format!("late{i}"), &scene(i)).unwrap();
        }
        db.rebuild_replica(0, 1).unwrap();
        let stats = db.replication_stats();
        assert_eq!(stats.catchup_replays, 0, "ring wrapped: clone");
        assert_eq!(stats.catchup_clones, 1);
        assert_eq!(db.with_replica_read(0, 1, ImageDatabase::len), 9);
        assert_eq!(stats.shards[0].replicas[1].lag, 0);
    }

    #[test]
    fn async_and_quorum_rank_bit_identically() {
        let sync = filled(2, 3, 20);
        let query = scene(5);
        let expect = sync.search_scene(&query, &QueryOptions::default()).unwrap();
        assert!(!expect.is_empty());
        for mode in [
            ReplicationMode::Quorum,
            ReplicationMode::Async { max_lag: 4 },
        ] {
            let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
                shards: 2,
                replicas: 3,
                mode,
                ..ReplicaConfig::default()
            })
            .unwrap();
            for i in 0..20 {
                db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
            }
            db.flush_replication();
            let hits = db.search_scene(&query, &QueryOptions::default()).unwrap();
            assert_eq!(hits.len(), expect.len(), "{mode:?}");
            for (a, b) in expect.iter().zip(&hits) {
                assert_eq!(a.id, b.id, "{mode:?}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "{mode:?}");
            }
            let stats = db.replication_stats();
            assert_eq!(stats.mode, mode);
            for shard in &stats.shards {
                for replica in &shard.replicas {
                    assert_eq!(replica.lag, 0, "flushed replicas sit at the head");
                }
            }
            assert_eq!(db.get(RecordId(0)).unwrap().unwrap().name, "img0");
        }
    }

    #[test]
    fn search_matches_sharded_and_single() {
        use crate::ShardedImageDatabase;
        let query = scene(7);
        let single = {
            let mut db = ImageDatabase::new();
            for i in 0..30 {
                db.insert_scene(&format!("img{i}"), &scene(i % 40)).unwrap();
            }
            db
        };
        let expect = single.search_scene(&query, &QueryOptions::default());
        let sharded = ShardedImageDatabase::with_shards(3);
        for i in 0..30 {
            sharded
                .insert_scene(&format!("img{i}"), &scene(i % 40))
                .unwrap();
        }
        let sharded_hits = sharded.search_scene(&query, &QueryOptions::default());
        for replicas in [1usize, 2, 3] {
            let db = filled(3, replicas, 30);
            let hits = db.search_scene(&query, &QueryOptions::default()).unwrap();
            assert_eq!(hits.len(), expect.len());
            for ((a, b), c) in expect.iter().zip(&hits).zip(&sharded_hits) {
                assert_eq!(a.id, b.id, "{replicas} replicas");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(b.id, c.id);
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_and_cross_type_restore() {
        let dir = std::env::temp_dir().join(format!("be2d_replica_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let db = filled(2, 2, 9);
        db.remove(RecordId(4)).unwrap();
        db.fail_replica(1, 0).unwrap();
        assert_eq!(db.save_snapshot(&path).unwrap(), 8);

        // A restore replaces every replica and heals the failed one.
        let back = ReplicatedImageDatabase::with_topology(2, 2);
        back.fail_replica(0, 1).unwrap();
        assert_eq!(back.restore_from(&path).unwrap(), 8);
        assert!(back.replica_health().iter().flatten().all(|&h| h));
        assert!(back.get(RecordId(4)).unwrap().is_none());
        assert_eq!(back.get(RecordId(7)).unwrap().unwrap().name, "img7");
        assert_eq!(back.insert_scene("next", &scene(1)).unwrap(), RecordId(9));

        // The snapshot format is interchangeable with the sharded
        // database's, topology changes included.
        let sharded = crate::ShardedImageDatabase::with_shards(3);
        assert_eq!(sharded.restore_from(&path).unwrap(), 8);
        assert_eq!(sharded.get(RecordId(7)).unwrap().name, "img7");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_fences_replay_for_pre_restore_gaps() {
        let dir = std::env::temp_dir().join(format!("be2d_replica_fence_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let db = filled(1, 2, 5);
        db.save_snapshot(&path).unwrap();
        db.fail_replica(0, 1).unwrap();
        db.insert_scene("post-fail", &scene(3)).unwrap();
        // The restore heals replica 1 wholesale and stamps a barrier;
        // a later fail + heal replays only post-restore ops.
        db.restore_from(&path).unwrap();
        assert!(db.replica_health().iter().flatten().all(|&h| h));
        db.fail_replica(0, 1).unwrap();
        db.insert_scene("post-restore", &scene(4)).unwrap();
        db.rebuild_replica(0, 1).unwrap();
        let stats = db.replication_stats();
        assert_eq!(stats.catchup_replays, 1);
        let a = db.with_replica_read(0, 0, Clone::clone);
        let b = db.with_replica_read(0, 1, Clone::clone);
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_picker_rotates_and_routes_around_failures() {
        let db = filled(1, 3, 6);
        // With no reads in flight every replica ties at zero
        // outstanding, so consecutive picks rotate deterministically.
        let top = db.inner.topology.read();
        let set = &top.sets[0];
        let picks: Vec<usize> = (0..6).map(|_| set.pick().unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        set.health[1].store(false, Ordering::SeqCst);
        let picks: Vec<usize> = (0..4).map(|_| set.pick().unwrap()).collect();
        assert!(picks.iter().all(|&p| p != 1), "failed replica skipped");
    }

    #[test]
    fn picker_prefers_least_outstanding_replica() {
        let db = filled(1, 3, 6);
        let top = db.inner.topology.read();
        let set = &top.sets[0];
        // Replicas 0 and 2 are busy; every pick lands on idle replica 1.
        set.begin_read(0);
        set.begin_read(0);
        set.begin_read(2);
        for _ in 0..6 {
            assert_eq!(set.pick().unwrap(), 1, "least-outstanding replica wins");
        }
        // Once replica 1 is the busiest, picks spread over the tied rest.
        set.begin_read(1);
        set.begin_read(1);
        set.begin_read(1);
        set.end_read(0);
        set.end_read(0);
        set.end_read(2);
        let picks: Vec<usize> = (0..6).map(|_| set.pick().unwrap()).collect();
        assert!(picks.iter().all(|&p| p != 1), "busiest replica avoided");
        assert!(picks.contains(&0) && picks.contains(&2), "ties rotate");
    }

    #[test]
    fn all_failed_pick_returns_none_not_a_failed_copy() {
        let db = filled(1, 2, 4);
        let top = db.inner.topology.read();
        let set = &top.sets[0];
        // Force the all-failed mid-race state (normally reachable only
        // through a diverged drain; the last-healthy guard blocks the
        // admin path).
        for health in &set.health {
            health.store(false, Ordering::SeqCst);
        }
        assert_eq!(set.pick(), None);
        assert_eq!(set.first_healthy(), None);
        let fallback = be2d_metrics::Counter::new();
        assert_eq!(set.pick_within(0, &fallback), None);
        assert_eq!(fallback.get(), 0, "no leader to fall back to");
    }

    #[test]
    fn lagging_replicas_are_skipped_by_bounded_reads() {
        let db = filled(1, 3, 4);
        let top = db.inner.topology.read();
        let set = &top.sets[0];
        let fallback = be2d_metrics::Counter::new();
        // Pretend replica 2 lags 3 ops behind the head.
        let head = set.head.load(Ordering::SeqCst);
        set.applied[2].store(head - 3, Ordering::SeqCst);
        for _ in 0..6 {
            assert_ne!(
                set.pick_within(0, &fallback).unwrap(),
                2,
                "strict reads skip the laggard"
            );
            assert_ne!(
                set.pick_within(2, &fallback).unwrap(),
                2,
                "lag 3 exceeds the bound of 2"
            );
        }
        let picks: Vec<usize> = (0..6)
            .map(|_| set.pick_within(3, &fallback).unwrap())
            .collect();
        assert!(picks.contains(&2), "lag within the bound rejoins rotation");
        assert_eq!(fallback.get(), 0, "an in-sync follower always existed");
        // Now every follower lags past the bound: the read falls back to
        // the leader and the fallback counter records it.
        set.applied[1].store(head - 3, Ordering::SeqCst);
        set.applied[0].store(head - 3, Ordering::SeqCst);
        assert_eq!(set.pick_within(0, &fallback), Some(0), "leader fallback");
        assert_eq!(fallback.get(), 1, "fallback is counted, not silent");
    }

    #[test]
    fn clones_share_state_and_stats_report_topology() {
        let db = ReplicatedImageDatabase::with_topology(2, 2);
        let other = db.clone();
        db.insert_scene("one", &scene(0)).unwrap();
        assert_eq!(other.len(), 1);

        let stats = other.stats();
        assert_eq!(stats.shard_records, vec![1, 0]);
        assert_eq!(stats.replica_records, vec![vec![1, 1], vec![0, 0]]);
        assert_eq!(stats.replica_health, vec![vec![true, true]; 2]);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.objects, 2);
        assert_eq!(other.replica_count(), 2);
        assert_eq!(other.shard_count(), 2);
        assert!(!other.resharding());
        assert!(ReplicatedImageDatabase::with_topology(0, 0).shard_count() == 1);

        let oplog = other.oplog_stats();
        assert_eq!(oplog.window, 1024);
        assert_eq!(oplog.last_seq, 1);
        assert_eq!(oplog.entries, 1);
        assert!(oplog.wal.is_none());
        assert_eq!(other.replication_mode(), ReplicationMode::Sync);
    }
}
