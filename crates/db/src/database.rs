//! The image database proper.

use crate::{
    CandidateSource, CandidateStrategy, ClassIndex, ClassSignature, DbError, PrefilterMode,
    QueryOptions, QuerySketch, ScoreSketch, SearchHit,
};
use be2d_core::{similarity_with, transformed, BeString2D, Similarity, SymbolicImage};
use be2d_geometry::{ObjectClass, Rect, Scene, Transform};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stable identifier of a record in one database.
///
/// Ids are assigned by insertion order and never reused after removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RecordId(pub usize);

impl RecordId {
    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec{}", self.0)
    }
}

/// One stored image: its symbolic picture plus retrieval metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageRecord {
    /// Stable id.
    pub id: RecordId,
    /// User-assigned name.
    pub name: String,
    /// The coordinate-annotated 2D BE-string (§3.2 stored form).
    pub symbolic: SymbolicImage,
    /// Class signature for prefiltering.
    pub signature: ClassSignature,
    /// Score-bound sketch for two-stage retrieval. Derived from
    /// `symbolic` and refreshed by every §3.2 edit alongside the
    /// signature.
    pub sketch: ScoreSketch,
}

impl ImageRecord {
    fn classes(&self) -> Vec<ObjectClass> {
        self.symbolic
            .to_be_string_2d()
            .class_counts()
            .into_keys()
            .collect()
    }

    /// Recomputes the derived retrieval metadata — class signature and
    /// score-bound sketch — from the symbolic picture.
    fn refresh_signature(&mut self) {
        self.signature = ClassSignature::from_classes(self.classes().iter());
        self.sketch = ScoreSketch::of(&self.symbolic.to_be_string_2d());
    }
}

// Hand-written serde: the sketch field is *optional* on restore, so
// snapshots written before it existed (manifest v1–v4, plain JSON
// saves) still load — an absent, stale-versioned, or malformed sketch
// is recomputed from the symbolic picture, which is always correct
// because the sketch is derived data.
impl Serialize for ImageRecord {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".to_owned(), self.id.to_value()),
            ("name".to_owned(), self.name.to_value()),
            ("symbolic".to_owned(), self.symbolic.to_value()),
            ("signature".to_owned(), self.signature.to_value()),
            ("sketch".to_owned(), self.sketch.to_value()),
        ])
    }
}

impl Deserialize for ImageRecord {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Map(entries) = v else {
            return Err(serde::Error::expected("ImageRecord", "map"));
        };
        let symbolic =
            SymbolicImage::from_value(serde::get_field(entries, "ImageRecord", "symbolic")?)?;
        let sketch = entries
            .iter()
            .find(|(k, _)| k == "sketch")
            .and_then(|(_, v)| ScoreSketch::from_value(v).ok())
            .unwrap_or_else(|| ScoreSketch::of(&symbolic.to_be_string_2d()));
        Ok(ImageRecord {
            id: RecordId::from_value(serde::get_field(entries, "ImageRecord", "id")?)?,
            name: String::from_value(serde::get_field(entries, "ImageRecord", "name")?)?,
            symbolic,
            signature: ClassSignature::from_value(serde::get_field(
                entries,
                "ImageRecord",
                "signature",
            )?)?,
            sketch,
        })
    }
}

/// Scoring-effort accounting of one search, for metrics and traces:
/// how many candidates survived the prefilter, how many were exactly
/// scored, and how many two-stage retrieval pruned by bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates surviving the prefilter (stage-1 input).
    pub candidates: usize,
    /// Candidates exactly scored (stage-2 survivors).
    pub scored: usize,
    /// Candidates skipped because their admissible bound proved they
    /// cannot enter the result (always 0 without
    /// [`two_stage`](crate::QueryOptions::two_stage)).
    pub bound_pruned: usize,
}

/// A monotone score floor shared across shards during one scatter.
///
/// Every shard that has gathered `top_k` retained hits publishes its
/// k-th exact score; since the *global* k-th score is at least the
/// maximum published value, any shard may stop scoring once every
/// remaining candidate's bound falls strictly below the shared floor —
/// the skipped candidates are provably outside the merged top-k.
///
/// Scores are non-negative, so their `f64` bit patterns order
/// monotonically and a relaxed `fetch_max` suffices (no lock on the
/// search path).
#[derive(Debug, Default)]
pub struct ScoreThreshold(AtomicU64);

impl ScoreThreshold {
    /// A fresh threshold admitting everything.
    #[must_use]
    pub fn new() -> Self {
        ScoreThreshold(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Raises the floor to `score` if it is higher. Non-finite or
    /// negative scores are ignored (they never witness a top-k).
    pub fn raise(&self, score: f64) {
        if score > 0.0 && score.is_finite() {
            self.0.fetch_max(score.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current floor.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// An in-memory image database of 2D BE-strings.
///
/// See the crate docs for an end-to-end example. All query entry points
/// are `&self` — scans never mutate — so a database wrapped in your
/// favourite shared-state primitive serves concurrent readers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImageDatabase {
    records: Vec<Option<ImageRecord>>,
    index: ClassIndex,
}

impl ImageDatabase {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        ImageDatabase::default()
    }

    /// Number of live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// Whether the database holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct object classes currently indexed.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.index.class_count()
    }

    /// Read access to the inverted class index (e.g. to union class
    /// sets across shards).
    #[must_use]
    pub fn class_index(&self) -> &ClassIndex {
        &self.index
    }

    /// Total number of objects across all live records.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.iter().map(|r| r.symbolic.object_count()).sum()
    }

    /// Indexes a scene: converts it with Algorithm 1 and stores the
    /// annotated string pair.
    ///
    /// # Errors
    ///
    /// Currently infallible for validated scenes; the `Result` reserves
    /// room for storage backends with real failure modes.
    pub fn insert_scene(&mut self, name: &str, scene: &Scene) -> Result<RecordId, DbError> {
        self.insert_symbolic(name, SymbolicImage::from_scene(scene))
    }

    /// Stores an already-converted symbolic picture.
    ///
    /// # Errors
    ///
    /// Currently infallible; see [`insert_scene`](Self::insert_scene).
    pub fn insert_symbolic(
        &mut self,
        name: &str,
        symbolic: SymbolicImage,
    ) -> Result<RecordId, DbError> {
        let id = RecordId(self.records.len());
        self.insert_symbolic_with_id(id, name, symbolic)?;
        Ok(id)
    }

    /// Stores a symbolic picture under a caller-chosen id, growing the
    /// record table with dead slots as needed.
    ///
    /// This is the primitive the sharded database
    /// ([`ShardedImageDatabase`](crate::ShardedImageDatabase)) builds on:
    /// shards receive globally-assigned ids out of order, and restore
    /// re-routing replays records at their original slots. Plain callers
    /// should prefer [`insert_symbolic`](Self::insert_symbolic).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] when the slot already holds a live
    /// record (ids are never reused).
    pub fn insert_symbolic_with_id(
        &mut self,
        id: RecordId,
        name: &str,
        symbolic: SymbolicImage,
    ) -> Result<(), DbError> {
        if self.records.get(id.index()).is_some_and(Option::is_some) {
            return Err(DbError::Persist {
                reason: format!("record id {} is already occupied", id.index()),
            });
        }
        if self.records.len() <= id.index() {
            self.records.resize_with(id.index() + 1, || None);
        }
        let mut record = ImageRecord {
            id,
            name: name.to_owned(),
            symbolic,
            signature: ClassSignature::default(),
            sketch: ScoreSketch::default(),
        };
        record.refresh_signature();
        self.index.insert_record(id, record.classes());
        self.records[id.index()] = Some(record);
        Ok(())
    }

    /// The id the next plain [`insert_symbolic`](Self::insert_symbolic)
    /// would assign (= one past the highest slot ever used). Exposed so
    /// external id allocators (sharding, restore) can stay aligned with
    /// the never-reuse-ids guarantee.
    #[must_use]
    pub fn next_id(&self) -> usize {
        self.records.len()
    }

    /// Removes a record, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] for dead or out-of-range ids.
    pub fn remove(&mut self, id: RecordId) -> Result<ImageRecord, DbError> {
        let record = self
            .records
            .get_mut(id.index())
            .and_then(Option::take)
            .ok_or(DbError::UnknownRecord { id: id.index() })?;
        self.index.remove_record(id);
        Ok(record)
    }

    /// Looks up a record.
    #[must_use]
    pub fn get(&self, id: RecordId) -> Option<&ImageRecord> {
        self.records.get(id.index()).and_then(Option::as_ref)
    }

    /// Iterates live records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ImageRecord> {
        self.records.iter().filter_map(Option::as_ref)
    }

    /// Adds one object to a stored image **incrementally** (§3.2): binary
    /// search finds the boundary positions, no reconversion happens.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] for dead ids or a BE-string
    /// error when the MBR does not fit the image frame.
    pub fn add_object(
        &mut self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        let record = self
            .records
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(DbError::UnknownRecord { id: id.index() })?;
        record.symbolic.add_object(class, mbr)?;
        record.refresh_signature();
        self.index.add_class(id, class.clone());
        Ok(())
    }

    /// Drops one object from a stored image incrementally (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] for dead ids or
    /// [`BeStringError::ObjectNotFound`](be2d_core::BeStringError) when
    /// the object is absent.
    pub fn remove_object(
        &mut self,
        id: RecordId,
        class: &ObjectClass,
        mbr: Rect,
    ) -> Result<(), DbError> {
        let record = self
            .records
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(DbError::UnknownRecord { id: id.index() })?;
        record.symbolic.remove_object(class, mbr)?;
        record.refresh_signature();
        // drop the posting only when the last object of the class went
        if !record.classes().contains(class) {
            self.index.remove_class(id, class);
        }
        Ok(())
    }

    /// Searches with a query scene (converted on the fly).
    #[must_use]
    pub fn search_scene(&self, query: &Scene, options: &QueryOptions) -> Vec<SearchHit> {
        self.search(&be2d_core::convert_scene(query), options)
    }

    /// Searches with textual BE-strings (the `Display` rendering, e.g.
    /// `"E A_b E A_e E"`), for ad-hoc queries from a console or config.
    ///
    /// # Errors
    ///
    /// Returns a [`BeStringError`](be2d_core::BeStringError) when either
    /// string fails to parse or the axes disagree on their object sets.
    pub fn search_text(
        &self,
        u: &str,
        v: &str,
        options: &QueryOptions,
    ) -> Result<Vec<SearchHit>, DbError> {
        let query = BeString2D::parse(u, v).map_err(DbError::from)?;
        Ok(self.search(&query, options))
    }

    /// Searches with a prepared 2D BE-string query.
    ///
    /// Every candidate surviving the prefilter is scored with the
    /// modified-LCS similarity for each transform in
    /// `options.transforms`; results are ranked by score (ties broken by
    /// id for determinism), floored at `min_score` and truncated to
    /// `top_k`. With [`two_stage`](QueryOptions::two_stage) set, exact
    /// scoring runs bound-ranked in frontier batches and stops early —
    /// the results are bit-identical either way.
    #[must_use]
    pub fn search(&self, query: &BeString2D, options: &QueryOptions) -> Vec<SearchHit> {
        self.search_bounded(query, options, None).0
    }

    /// [`search`](Self::search) plus its [`SearchStats`], with an
    /// optional cross-shard [`ScoreThreshold`].
    ///
    /// The threshold lets a scatter-gather caller propagate the best
    /// k-th exact score seen by *any* shard into every other shard's
    /// two-stage early-exit check; it never changes the merged top-k
    /// (skipped candidates are provably below the global k-th score).
    /// Passing `None` keeps the search self-contained.
    #[must_use]
    pub fn search_bounded(
        &self,
        query: &BeString2D,
        options: &QueryOptions,
        threshold: Option<&ScoreThreshold>,
    ) -> (Vec<SearchHit>, SearchStats) {
        self.search_planned(query, options, threshold, CandidateStrategy::IndexWalk)
    }

    /// [`search_bounded`](Self::search_bounded) with an explicit
    /// [`CandidateStrategy`] — how the inverted-index candidate set is
    /// walked when the [`CandidateSource::ClassIndex`] path applies.
    ///
    /// The strategy never changes *which* records are candidates, only
    /// how they are produced: `IndexWalk` materialises the posting
    /// union/intersection, `DenseScan` iterates the corpus and keeps
    /// records whose exact posting membership passes the prefilter.
    /// Both yield the identical set, so hits — scores, ids, tie-breaks —
    /// and [`SearchStats`] are bit-identical across strategies. The
    /// scatter planner picks per shard from measured selectivity.
    #[must_use]
    pub fn search_planned(
        &self,
        query: &BeString2D,
        options: &QueryOptions,
        threshold: Option<&ScoreThreshold>,
        strategy: CandidateStrategy,
    ) -> (Vec<SearchHit>, SearchStats) {
        // Pre-transform the query once per transform (strings are small;
        // candidates are many).
        type QueryVariants = Vec<(Transform, BeString2D)>;
        let query_variants: QueryVariants = if options.transforms.is_empty() {
            vec![(Transform::Identity, query.clone())]
        } else {
            options
                .transforms
                .iter()
                .map(|&t| (t, transformed(query, t)))
                .collect()
        };
        let query_classes: Vec<ObjectClass> = query.class_counts().into_keys().collect();
        let query_sig = ClassSignature::from_classes(query_classes.iter());

        let candidates: Vec<&ImageRecord> = match (options.candidates, options.prefilter) {
            // the inverted index produces the candidate set directly;
            // class-free queries fall back to a full scan
            (CandidateSource::ClassIndex, prefilter)
                if prefilter != PrefilterMode::None && !query_classes.is_empty() =>
            {
                match strategy {
                    CandidateStrategy::IndexWalk => {
                        let ids = match prefilter {
                            PrefilterMode::AnyClass => self.index.candidates_any(&query_classes),
                            PrefilterMode::AllClasses => self.index.candidates_all(&query_classes),
                            PrefilterMode::None => unreachable!("guarded above"),
                        };
                        ids.into_iter().filter_map(|id| self.get(id)).collect()
                    }
                    // Exact posting membership per record — the same set
                    // the posting walk materialises, without building the
                    // near-corpus-sized id union first.
                    CandidateStrategy::DenseScan => self
                        .iter()
                        .filter(|r| match prefilter {
                            PrefilterMode::AnyClass => {
                                query_classes.iter().any(|c| self.index.contains(c, r.id))
                            }
                            PrefilterMode::AllClasses => {
                                query_classes.iter().all(|c| self.index.contains(c, r.id))
                            }
                            PrefilterMode::None => unreachable!("guarded above"),
                        })
                        .collect(),
                }
            }
            _ => self
                .iter()
                .filter(|r| match options.prefilter {
                    PrefilterMode::None => true,
                    PrefilterMode::AnyClass => r.signature.shares_any(&query_sig),
                    PrefilterMode::AllClasses => r.signature.covers(&query_sig),
                })
                .collect(),
        };
        let mut stats = SearchStats {
            candidates: candidates.len(),
            ..SearchStats::default()
        };

        let score_one = |record: &ImageRecord| -> SearchHit {
            let target = record.symbolic.to_be_string_2d();
            let (transform, similarity) = query_variants
                .iter()
                .map(|(t, q)| (*t, similarity_with(q, &target, &options.config)))
                .max_by(|a, b| a.1.score.total_cmp(&b.1.score))
                .expect("at least one transform");
            SearchHit {
                id: record.id,
                name: record.name.clone(),
                score: similarity.score,
                transform,
                similarity,
            }
        };

        // Exact scoring of one batch, reusing the parallelism policy
        // per batch (the whole candidate set IS the batch in the
        // exhaustive path).
        let score_batch = |batch: &[&ImageRecord]| -> Vec<SearchHit> {
            if options.parallel.enabled_for(batch.len()) {
                let threads = std::thread::available_parallelism()
                    .map_or(1, |n| n.get())
                    .min(16);
                let chunk = batch.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = batch
                        .chunks(chunk)
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter().map(|r| score_one(r)).collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("scorer panicked"))
                        .collect()
                })
            } else {
                batch.iter().map(|r| score_one(r)).collect()
            }
        };

        let mut hits: Vec<SearchHit> = match options.two_stage {
            Some(ts) => {
                let qsketch = QuerySketch::of_variants(query_variants.iter().map(|(_, q)| q));
                two_stage_scan(
                    &qsketch,
                    candidates,
                    options,
                    ts.frontier.max(1),
                    threshold,
                    &score_batch,
                    &mut stats,
                )
            }
            None => {
                stats.scored = candidates.len();
                score_batch(&candidates)
            }
        };

        hits.retain(|h| h.score >= options.min_score);
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        if let Some(k) = options.top_k {
            hits.truncate(k);
        }
        (hits, stats)
    }

    /// Serialises the database to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] when serde fails.
    pub fn to_json(&self) -> Result<String, DbError> {
        serde_json::to_string(self).map_err(|e| DbError::Persist {
            reason: e.to_string(),
        })
    }

    /// Restores a database from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`] when the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Self, DbError> {
        serde_json::from_str(json).map_err(|e| DbError::Persist {
            reason: e.to_string(),
        })
    }

    /// Saves the database to a file, **crash-safely**: the JSON is
    /// written to a temporary file in the target directory and then
    /// `rename`d into place, so a reader (or a crash mid-write) can
    /// never observe a truncated snapshot — it sees either the previous
    /// complete file or the new one.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O errors; rejects paths without a
    /// file name. On error the temporary file is removed and any
    /// previous snapshot at `path` is left untouched.
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        write_atomic(path, &self.to_json()?)
    }

    /// Loads a database from a file written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation errors.
    pub fn load(path: &Path) -> Result<Self, DbError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

/// Stage 1 + frontier loop of two-stage retrieval.
///
/// Candidates are ranked by their admissible score bound (descending,
/// ids ascending for determinism) and exactly scored in
/// `frontier`-sized batches. Before each batch the loop checks whether
/// the next (= highest remaining) bound falls **strictly** below
/// either the local k-th retained exact score or the shared
/// cross-shard floor; strict comparison is what preserves the
/// bit-identical id tie-break — a candidate whose bound *equals* the
/// k-th score could still tie it exactly and win on the smaller id.
fn two_stage_scan<'db>(
    qsketch: &QuerySketch,
    candidates: Vec<&'db ImageRecord>,
    options: &QueryOptions,
    frontier: usize,
    threshold: Option<&ScoreThreshold>,
    score_batch: &dyn Fn(&[&'db ImageRecord]) -> Vec<SearchHit>,
    stats: &mut SearchStats,
) -> Vec<SearchHit> {
    // Stage 1: bound every candidate; drop the ones that provably
    // cannot reach the score floor (strict: a bound equal to the floor
    // may still be attained exactly).
    let mut ranked: Vec<(f64, &ImageRecord)> = candidates
        .into_iter()
        .filter_map(|record| {
            let bound = qsketch.bound(&record.sketch, &options.config);
            if bound.admits(options.min_score) {
                Some((bound.value(), record))
            } else {
                stats.bound_pruned += 1;
                None
            }
        })
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.id.cmp(&b.1.id)));

    if options.top_k == Some(0) {
        // Nothing can be returned; skip all exact scoring.
        stats.bound_pruned += ranked.len();
        return Vec::new();
    }

    // The k best retained exact scores so far, as a min-heap (peek =
    // current k-th score).
    let mut kth_heap: std::collections::BinaryHeap<std::cmp::Reverse<OrderedScore>> =
        std::collections::BinaryHeap::new();
    let mut hits = Vec::new();
    let mut at = 0;
    while at < ranked.len() {
        let next_bound = ranked[at].0;
        let local_stop = options.top_k.is_some_and(|k| {
            kth_heap.len() == k
                && kth_heap
                    .peek()
                    .is_some_and(|std::cmp::Reverse(kth)| kth.0 > next_bound)
        });
        let shared_stop = threshold.is_some_and(|t| t.get() > next_bound);
        if local_stop || shared_stop {
            stats.bound_pruned += ranked.len() - at;
            break;
        }
        let end = (at + frontier).min(ranked.len());
        let batch: Vec<&ImageRecord> = ranked[at..end].iter().map(|&(_, r)| r).collect();
        let batch_hits = score_batch(&batch);
        stats.scored += batch_hits.len();
        if let Some(k) = options.top_k {
            for hit in &batch_hits {
                if hit.score >= options.min_score {
                    kth_heap.push(std::cmp::Reverse(OrderedScore(hit.score)));
                    if kth_heap.len() > k {
                        kth_heap.pop();
                    }
                }
            }
            // Publish the local k-th score: it witnesses k retained
            // hits at or above it, globally valid as a floor.
            if let (Some(shared), true) = (threshold, kth_heap.len() == k) {
                if let Some(std::cmp::Reverse(kth)) = kth_heap.peek() {
                    shared.raise(kth.0);
                }
            }
        }
        hits.extend(batch_hits);
        at = end;
    }
    hits
}

/// `f64` score with total order, for the two-stage k-th-score heap.
/// Scores are never NaN (they are ratios of non-negative integers).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedScore(f64);

impl Eq for OrderedScore {}

impl PartialOrd for OrderedScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Writes `json` to `path` **crash-safely**: temp file in the target
/// directory, `sync_all`, then `rename` into place. Shared by
/// [`ImageDatabase::save`] and the sharded snapshot writer.
pub(crate) fn write_atomic(path: &Path, json: &str) -> Result<(), DbError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);

    let file_name = path
        .file_name()
        .ok_or_else(|| DbError::Persist {
            reason: format!("save path {} has no file name", path.display()),
        })?
        .to_string_lossy();
    // Unique per process+call, so concurrent saves to the same
    // target never clobber each other's temp file.
    let tmp_name = format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(tmp_name),
        _ => std::path::PathBuf::from(tmp_name),
    };
    let write_synced = || -> std::io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        // The data blocks must be durable *before* the rename's
        // metadata, or a power loss could publish a truncated file
        // under the final name.
        file.sync_all()
    };
    write_synced()
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            DbError::from(e)
        })
}

impl ImageDatabase {
    /// Evaluates the similarity between a query and one specific record.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownRecord`] for dead ids.
    pub fn similarity_to(
        &self,
        query: &BeString2D,
        id: RecordId,
        options: &QueryOptions,
    ) -> Result<Similarity, DbError> {
        let record = self
            .get(id)
            .ok_or(DbError::UnknownRecord { id: id.index() })?;
        let target = record.symbolic.to_be_string_2d();
        Ok(similarity_with(query, &target, &options.config))
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // terse MBR tuples keep test fixtures readable
mod tests {
    use super::*;
    use crate::Parallelism;
    use be2d_geometry::SceneBuilder;

    fn scene(objs: &[(&str, (i64, i64, i64, i64))]) -> Scene {
        let mut b = SceneBuilder::new(100, 100);
        for (n, m) in objs {
            b = b.object(n, *m);
        }
        b.build().unwrap()
    }

    fn sample_db() -> (ImageDatabase, RecordId, RecordId, RecordId) {
        let mut db = ImageDatabase::new();
        let a = db
            .insert_scene(
                "ab",
                &scene(&[("A", (10, 30, 10, 30)), ("B", (50, 80, 50, 80))]),
            )
            .unwrap();
        let b = db
            .insert_scene(
                "ba",
                &scene(&[("B", (10, 30, 10, 30)), ("A", (50, 80, 50, 80))]),
            )
            .unwrap();
        let c = db
            .insert_scene("z", &scene(&[("Z", (20, 60, 20, 60))]))
            .unwrap();
        (db, a, b, c)
    }

    #[test]
    fn insert_get_remove() {
        let (mut db, a, _, _) = sample_db();
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(a).unwrap().name, "ab");
        let removed = db.remove(a).unwrap();
        assert_eq!(removed.name, "ab");
        assert_eq!(db.len(), 2);
        assert!(db.get(a).is_none());
        assert!(db.remove(a).is_err(), "double remove");
        assert!(db.remove(RecordId(99)).is_err());
        // ids are not reused
        let d = db
            .insert_scene("d", &scene(&[("A", (0, 5, 0, 5))]))
            .unwrap();
        assert_eq!(d, RecordId(3));
    }

    #[test]
    fn exact_search_ranks_identical_first() {
        let (db, a, _, _) = sample_db();
        let hits = db.search_scene(
            &scene(&[("A", (10, 30, 10, 30)), ("B", (50, 80, 50, 80))]),
            &QueryOptions::default(),
        );
        assert_eq!(hits[0].id, a);
        assert!((hits[0].score - 1.0).abs() < 1e-12);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn prefilter_excludes_unrelated_classes() {
        let (db, _, _, c) = sample_db();
        let query = scene(&[("A", (10, 30, 10, 30))]);
        let none = db.search_scene(
            &query,
            &QueryOptions {
                prefilter: PrefilterMode::None,
                top_k: None,
                ..Default::default()
            },
        );
        let any = db.search_scene(
            &query,
            &QueryOptions {
                prefilter: PrefilterMode::AnyClass,
                top_k: None,
                ..Default::default()
            },
        );
        assert_eq!(none.len(), 3);
        assert_eq!(any.len(), 2, "record z shares no class");
        assert!(!any.iter().any(|h| h.id == c));
    }

    #[test]
    fn all_classes_prefilter() {
        let (db, a, b, _) = sample_db();
        let query = scene(&[("A", (0, 9, 0, 9)), ("B", (10, 19, 10, 19))]);
        let hits = db.search_scene(
            &query,
            &QueryOptions {
                prefilter: PrefilterMode::AllClasses,
                top_k: None,
                ..Default::default()
            },
        );
        let ids: Vec<_> = hits.iter().map(|h| h.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn min_score_and_top_k() {
        let (db, _, _, _) = sample_db();
        let query = scene(&[("A", (10, 30, 10, 30)), ("B", (50, 80, 50, 80))]);
        let opts = QueryOptions {
            min_score: 0.99,
            prefilter: PrefilterMode::None,
            ..Default::default()
        };
        assert_eq!(db.search_scene(&query, &opts).len(), 1);
        let opts = QueryOptions {
            top_k: Some(2),
            prefilter: PrefilterMode::None,
            ..Default::default()
        };
        assert_eq!(db.search_scene(&query, &opts).len(), 2);
    }

    #[test]
    fn transform_invariant_search_finds_rotated_image() {
        let mut db = ImageDatabase::new();
        let base = scene(&[("A", (10, 40, 20, 60)), ("B", (50, 90, 40, 95))]);
        let rotated = base.transformed(Transform::Rotate90);
        let id = db.insert_scene("rotated", &rotated).unwrap();

        // plain search scores below 1; invariant search hits exactly
        let plain = db.search_scene(&base, &QueryOptions::default());
        assert!(plain[0].score < 1.0);
        let inv = db.search_scene(&base, &QueryOptions::transform_invariant());
        assert_eq!(inv[0].id, id);
        assert!((inv[0].score - 1.0).abs() < 1e-12);
        assert_eq!(inv[0].transform, Transform::Rotate90);
    }

    #[test]
    fn incremental_add_remove_object_matches_reindexing() {
        let (mut db, a, _, _) = sample_db();
        let extra = Rect::new(0, 9, 0, 9).unwrap();
        db.add_object(a, &ObjectClass::new("X"), extra).unwrap();

        let mut fresh = ImageDatabase::new();
        let fresh_id = fresh
            .insert_scene(
                "ab",
                &scene(&[
                    ("A", (10, 30, 10, 30)),
                    ("B", (50, 80, 50, 80)),
                    ("X", (0, 9, 0, 9)),
                ]),
            )
            .unwrap();
        assert_eq!(
            db.get(a).unwrap().symbolic.to_be_string_2d(),
            fresh.get(fresh_id).unwrap().symbolic.to_be_string_2d()
        );

        db.remove_object(a, &ObjectClass::new("X"), extra).unwrap();
        assert_eq!(db.get(a).unwrap().symbolic.object_count(), 2);
        assert!(db.remove_object(a, &ObjectClass::new("X"), extra).is_err());
        assert!(db
            .add_object(RecordId(99), &ObjectClass::new("X"), extra)
            .is_err());
    }

    #[test]
    fn signature_updates_with_edits() {
        let (mut db, a, _, _) = sample_db();
        let q = scene(&[("X", (0, 9, 0, 9))]);
        let before = db.search_scene(&q, &QueryOptions::default());
        assert!(before.iter().all(|h| h.id != a), "A record lacks class X");
        db.add_object(a, &ObjectClass::new("X"), Rect::new(0, 9, 0, 9).unwrap())
            .unwrap();
        let after = db.search_scene(&q, &QueryOptions::default());
        assert!(after.iter().any(|h| h.id == a));
        // The score sketch tracks §3.2 edits in lock-step: after every
        // add/remove it must equal a fresh sketch of the live BE-string.
        let record = db.get(a).unwrap();
        assert_eq!(
            record.sketch,
            ScoreSketch::of(&record.symbolic.to_be_string_2d()),
            "sketch stale after add_object"
        );
        db.remove_object(a, &ObjectClass::new("X"), Rect::new(0, 9, 0, 9).unwrap())
            .unwrap();
        let record = db.get(a).unwrap();
        assert_eq!(
            record.sketch,
            ScoreSketch::of(&record.symbolic.to_be_string_2d()),
            "sketch stale after remove_object"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut db = ImageDatabase::new();
        for i in 0..64i64 {
            let s = scene(&[
                ("A", (i % 10, i % 10 + 20, 0, 30)),
                ("B", (40, 80, i % 20 + 5, i % 20 + 40)),
            ]);
            db.insert_scene(&format!("img{i}"), &s).unwrap();
        }
        let query = scene(&[("A", (5, 25, 0, 30)), ("B", (40, 80, 10, 45))]);
        let serial = db.search_scene(
            &query,
            &QueryOptions {
                parallel: Parallelism::Off,
                top_k: None,
                ..Default::default()
            },
        );
        let parallel = db.search_scene(
            &query,
            &QueryOptions {
                parallel: Parallelism::On,
                top_k: None,
                ..Default::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.id, p.id);
            assert!((s.score - p.score).abs() < 1e-12);
        }
    }

    #[test]
    fn auto_parallel_agrees_with_serial() {
        // Enough records to cross Parallelism::AUTO_THRESHOLD with the
        // no-prefilter scan, so Auto actually takes the threaded path.
        let mut db = ImageDatabase::new();
        for i in 0..(Parallelism::AUTO_THRESHOLD as i64 + 16) {
            let s = scene(&[
                ("A", (i % 11, i % 11 + 15, 0, 25)),
                ("B", (40, 80, i % 17 + 5, i % 17 + 40)),
            ]);
            db.insert_scene(&format!("img{i}"), &s).unwrap();
        }
        let query = scene(&[("A", (5, 20, 0, 25)), ("B", (40, 80, 10, 45))]);
        let base = QueryOptions {
            prefilter: PrefilterMode::None,
            top_k: None,
            ..Default::default()
        };
        let serial = db.search_scene(&query, &base);
        let auto = db.search_scene(
            &query,
            &QueryOptions {
                parallel: Parallelism::Auto,
                ..base
            },
        );
        assert_eq!(serial.len(), auto.len());
        for (s, p) in serial.iter().zip(&auto) {
            assert_eq!(s.id, p.id);
            assert!((s.score - p.score).abs() < 1e-12);
        }
    }

    #[test]
    fn index_and_scan_candidates_agree() {
        let mut db = ImageDatabase::new();
        for i in 0..40i64 {
            let class_a = ["A", "B", "C", "D"][(i % 4) as usize];
            let class_b = ["X", "Y"][(i % 2) as usize];
            let s = scene(&[
                (class_a, (0, 10 + i % 7, 0, 10)),
                (class_b, (30, 60, 30, 60 + i % 5)),
            ]);
            db.insert_scene(&format!("img{i}"), &s).unwrap();
        }
        // remove a few records and edit one so index maintenance is covered
        db.remove(RecordId(5)).unwrap();
        db.remove(RecordId(17)).unwrap();
        db.add_object(
            RecordId(3),
            &ObjectClass::new("Q"),
            Rect::new(70, 80, 70, 80).unwrap(),
        )
        .unwrap();

        let query = scene(&[("A", (0, 12, 0, 10)), ("X", (30, 60, 30, 62))]);
        for prefilter in [PrefilterMode::AnyClass, PrefilterMode::AllClasses] {
            let scan = db.search_scene(
                &query,
                &QueryOptions {
                    prefilter,
                    candidates: CandidateSource::Scan,
                    top_k: None,
                    ..Default::default()
                },
            );
            let index = db.search_scene(
                &query,
                &QueryOptions {
                    prefilter,
                    candidates: CandidateSource::ClassIndex,
                    top_k: None,
                    ..Default::default()
                },
            );
            // the index is exact; the signature scan may admit extra
            // candidates via hash collisions — but with these class names
            // there are none, so results must be identical
            assert_eq!(scan.len(), index.len(), "{prefilter}");
            for (a, b) in scan.iter().zip(&index) {
                assert_eq!(a.id, b.id, "{prefilter}");
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn index_source_empty_query_falls_back_to_scan() {
        let (db, _, _, _) = sample_db();
        let empty = Scene::new(10, 10).unwrap();
        let hits = db.search_scene(
            &empty,
            &QueryOptions {
                candidates: CandidateSource::ClassIndex,
                top_k: None,
                min_score: -1.0,
                ..Default::default()
            },
        );
        assert_eq!(hits.len(), 3, "class-free query matches all records");
    }

    #[test]
    fn index_reflects_object_removal() {
        let mut db = ImageDatabase::new();
        let id = db
            .insert_scene(
                "two-of-a",
                &scene(&[("A", (0, 5, 0, 5)), ("A", (10, 15, 10, 15))]),
            )
            .unwrap();
        let q = scene(&[("A", (0, 5, 0, 5))]);
        let opts = QueryOptions {
            candidates: CandidateSource::ClassIndex,
            ..QueryOptions::default()
        };
        db.remove_object(id, &ObjectClass::new("A"), Rect::new(0, 5, 0, 5).unwrap())
            .unwrap();
        assert_eq!(db.search_scene(&q, &opts).len(), 1, "one A remains indexed");
        db.remove_object(
            id,
            &ObjectClass::new("A"),
            Rect::new(10, 15, 10, 15).unwrap(),
        )
        .unwrap();
        assert!(
            db.search_scene(&q, &opts).is_empty(),
            "last A drops the posting"
        );
    }

    #[test]
    fn persistence_roundtrip() {
        let (db, _, _, _) = sample_db();
        let json = db.to_json().unwrap();
        let back = ImageDatabase::from_json(&json).unwrap();
        assert_eq!(db, back);
        assert!(ImageDatabase::from_json("{not json").is_err());
    }

    #[test]
    fn save_load_file() {
        let (db, _, _, _) = sample_db();
        let path = std::env::temp_dir().join("be2d_db_test.json");
        db.save(&path).unwrap();
        let back = ImageDatabase::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
        assert!(ImageDatabase::load(Path::new("/nonexistent/x.json")).is_err());
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("be2d_atomic_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");

        // Overwriting an existing snapshot goes through rename, and no
        // temp droppings survive a successful save.
        let (db, a, _, _) = sample_db();
        db.save(&path).unwrap();
        let mut edited = db.clone();
        edited.remove(a).unwrap();
        edited.save(&path).unwrap();
        assert_eq!(ImageDatabase::load(&path).unwrap(), edited);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "db.json")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );

        // A failing save (missing directory) reports the error and the
        // old snapshot is untouched.
        assert!(db.save(&dir.join("missing").join("db.json")).is_err());
        assert!(db.save(Path::new("/")).is_err(), "path without file name");
        // A rename-stage failure (target name taken by a directory)
        // must clean its temp file up too.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(&blocked).unwrap();
        assert!(db.save(&blocked).is_err());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "db.json" && n != "blocked")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert_eq!(ImageDatabase::load(&path).unwrap(), edited);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn similarity_to_specific_record() {
        let (db, a, _, _) = sample_db();
        let q = be2d_core::convert_scene(&scene(&[("A", (10, 30, 10, 30))]));
        let sim = db.similarity_to(&q, a, &QueryOptions::default()).unwrap();
        assert!(sim.score > 0.0 && sim.score < 1.0);
        assert!(db
            .similarity_to(&q, RecordId(99), &QueryOptions::default())
            .is_err());
    }

    #[test]
    fn search_text_parses_and_matches() {
        let (db, a, _, _) = sample_db();
        // the exact strings of record "ab"
        let target = db.get(a).unwrap().symbolic.to_be_string_2d();
        let hits = db
            .search_text(
                &target.x().to_string(),
                &target.y().to_string(),
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(hits[0].id, a);
        assert!((hits[0].score - 1.0).abs() < 1e-12);
        assert!(db
            .search_text("not a string", "E", &QueryOptions::default())
            .is_err());
        assert!(
            db.search_text("A_b E A_e", "B_b E B_e", &QueryOptions::default())
                .is_err(),
            "mismatched axes rejected"
        );
    }

    #[test]
    fn empty_database_search() {
        let db = ImageDatabase::new();
        assert!(db.is_empty());
        let hits = db.search_scene(&scene(&[("A", (0, 5, 0, 5))]), &QueryOptions::default());
        assert!(hits.is_empty());
    }
}
