//! Spatial-pattern sketches: the paper's motivating query style —
//! *"find all images which icon A locates at the left side and icon B
//! locates at the right"* (§1) — as a tiny textual language compiled to
//! a query scene.
//!
//! Grammar (constraints separated by `;` or `,`):
//!
//! ```text
//! sketch     := constraint ((";" | ",") constraint)*
//! constraint := name relation name
//! relation   := "left-of" | "right-of" | "above" | "below"
//!             | "inside" | "contains" | "overlaps"
//! ```
//!
//! The compiler places each named icon on an abstract grid: ordering
//! constraints become topological ranks per axis, nesting shrinks the
//! child into the parent, and `overlaps` stretches one icon into the
//! other. The produced [`Scene`](be2d_geometry::Scene) is *verified* against every constraint
//! before it is returned — an unsatisfiable or cyclic sketch is an
//! error, never a silently wrong query.

use crate::DbError;
use be2d_geometry::{ObjectClass, Rect, Scene};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A spatial relation usable in a sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchRelation {
    /// `a left-of b`: a's x-extent ends before b's begins.
    LeftOf,
    /// `a right-of b`: mirror of `left-of`.
    RightOf,
    /// `a above b`: a's y-extent begins after b's ends.
    Above,
    /// `a below b`: mirror of `above`.
    Below,
    /// `a inside b`: a's MBR strictly within b's.
    Inside,
    /// `a contains b`: mirror of `inside`.
    Contains,
    /// `a overlaps b`: MBRs share area without nesting.
    Overlaps,
}

impl SketchRelation {
    fn parse(token: &str) -> Option<SketchRelation> {
        match token {
            "left-of" => Some(SketchRelation::LeftOf),
            "right-of" => Some(SketchRelation::RightOf),
            "above" => Some(SketchRelation::Above),
            "below" => Some(SketchRelation::Below),
            "inside" => Some(SketchRelation::Inside),
            "contains" => Some(SketchRelation::Contains),
            "overlaps" => Some(SketchRelation::Overlaps),
            _ => None,
        }
    }

    /// Rewrites mirrored relations to their canonical partner with
    /// swapped operands.
    fn canonical(self, a: usize, b: usize) -> (CanonicalRelation, usize, usize) {
        match self {
            SketchRelation::LeftOf => (CanonicalRelation::Before(Axis::X), a, b),
            SketchRelation::RightOf => (CanonicalRelation::Before(Axis::X), b, a),
            SketchRelation::Below => (CanonicalRelation::Before(Axis::Y), a, b),
            SketchRelation::Above => (CanonicalRelation::Before(Axis::Y), b, a),
            SketchRelation::Inside => (CanonicalRelation::Inside, a, b),
            SketchRelation::Contains => (CanonicalRelation::Inside, b, a),
            SketchRelation::Overlaps => (CanonicalRelation::Overlaps, a, b),
        }
    }
}

impl fmt::Display for SketchRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SketchRelation::LeftOf => "left-of",
            SketchRelation::RightOf => "right-of",
            SketchRelation::Above => "above",
            SketchRelation::Below => "below",
            SketchRelation::Inside => "inside",
            SketchRelation::Contains => "contains",
            SketchRelation::Overlaps => "overlaps",
        };
        f.write_str(name)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CanonicalRelation {
    Before(Axis),
    Inside,
    Overlaps,
}

/// A parsed spatial-pattern sketch.
///
/// # Example
///
/// ```
/// use be2d_db::sketch::Sketch;
///
/// # fn main() -> Result<(), be2d_db::DbError> {
/// let sketch = Sketch::parse("car left-of tree; tree left-of house; car below roof")?;
/// let scene = sketch.to_scene()?;
/// assert_eq!(scene.len(), 4, "car, tree, house, roof placed once each");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    names: Vec<String>,
    constraints: Vec<(usize, SketchRelation, usize)>,
}

impl Sketch {
    /// Parses the textual sketch language.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Persist`]-style parse errors (wrapped in
    /// [`DbError::Sketch`]) for malformed constraints, unknown relations
    /// or invalid icon names.
    pub fn parse(text: &str) -> Result<Sketch, DbError> {
        let mut names: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut constraints = Vec::new();
        let intern = |name: &str,
                      names: &mut Vec<String>,
                      index: &mut HashMap<String, usize>|
         -> Result<usize, DbError> {
            ObjectClass::try_new(name).map_err(|_| DbError::Sketch {
                reason: format!("invalid icon name {name:?}"),
            })?;
            Ok(*index.entry(name.to_owned()).or_insert_with(|| {
                names.push(name.to_owned());
                names.len() - 1
            }))
        };
        for clause in text.split([';', ',']) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let parts: Vec<&str> = clause.split_whitespace().collect();
            let [a, rel, b] = parts[..] else {
                return Err(DbError::Sketch {
                    reason: format!("expected `icon relation icon`, got {clause:?}"),
                });
            };
            let relation = SketchRelation::parse(rel).ok_or_else(|| DbError::Sketch {
                reason: format!("unknown relation {rel:?}"),
            })?;
            let ia = intern(a, &mut names, &mut index)?;
            let ib = intern(b, &mut names, &mut index)?;
            if ia == ib {
                return Err(DbError::Sketch {
                    reason: format!("icon {a:?} cannot relate to itself"),
                });
            }
            constraints.push((ia, relation, ib));
        }
        if names.is_empty() {
            return Err(DbError::Sketch {
                reason: "empty sketch".into(),
            });
        }
        Ok(Sketch { names, constraints })
    }

    /// Icon names in first-mention order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The parsed constraints.
    pub fn constraints(&self) -> impl Iterator<Item = (&str, SketchRelation, &str)> {
        self.constraints
            .iter()
            .map(|&(a, r, b)| (self.names[a].as_str(), r, self.names[b].as_str()))
    }

    /// Compiles the sketch into a concrete query scene and verifies every
    /// constraint against the placed MBRs.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Sketch`] when ordering constraints are cyclic
    /// or the constraint set is not satisfied by the grid placement
    /// (e.g. contradictory nesting).
    pub fn to_scene(&self) -> Result<Scene, DbError> {
        let n = self.names.len();
        // canonicalise
        let canonical: Vec<(CanonicalRelation, usize, usize)> = self
            .constraints
            .iter()
            .map(|&(a, r, b)| r.canonical(a, b))
            .collect();

        // 1. ordering ranks per axis via longest-path topological order
        let x_rank = Self::ranks(
            n,
            canonical.iter().filter_map(|&(r, a, b)| match r {
                CanonicalRelation::Before(Axis::X) => Some((a, b)),
                _ => None,
            }),
        )
        .ok_or_else(|| DbError::Sketch {
            reason: "cyclic left-of/right-of constraints".into(),
        })?;
        let y_rank = Self::ranks(
            n,
            canonical.iter().filter_map(|&(r, a, b)| match r {
                CanonicalRelation::Before(Axis::Y) => Some((a, b)),
                _ => None,
            }),
        )
        .ok_or_else(|| DbError::Sketch {
            reason: "cyclic above/below constraints".into(),
        })?;

        // 2. base grid placement: cell 40, icon 32, gap 8
        const CELL: i64 = 40;
        const SIZE: i64 = 32;
        let mut boxes: Vec<(i64, i64, i64, i64)> = (0..n)
            .map(|i| {
                let (xr, yr) = (x_rank[i] as i64, y_rank[i] as i64);
                (
                    xr * CELL + 4,
                    xr * CELL + 4 + SIZE,
                    yr * CELL + 4,
                    yr * CELL + 4 + SIZE,
                )
            })
            .collect();

        // 3. nesting: shrink children into parents, deepest-first; apply
        // repeatedly so chains (a inside b inside c) converge
        for _ in 0..n {
            for &(r, a, b) in &canonical {
                if r == CanonicalRelation::Inside {
                    let parent = boxes[b];
                    let margin = 3;
                    let child = (
                        parent.0 + margin,
                        parent.1 - margin,
                        parent.2 + margin,
                        parent.3 - margin,
                    );
                    if child.0 < child.1 && child.2 < child.3 {
                        boxes[a] = child;
                    }
                }
            }
        }

        // 4. overlap: pin `a` onto `b`, offset by a quarter of b's size —
        // a proper partial overlap with all four boundaries distinct
        for &(r, a, b) in &canonical {
            if r == CanonicalRelation::Overlaps {
                let bb = boxes[b];
                let (dx, dy) = ((bb.1 - bb.0) / 4, (bb.3 - bb.2) / 4);
                boxes[a] = (
                    bb.0 + dx.max(1),
                    bb.1 + dx.max(1),
                    bb.2 + dy.max(1),
                    bb.3 + dy.max(1),
                );
            }
        }

        // 5. normalise into the positive quadrant and build the scene
        let min_x = boxes.iter().map(|b| b.0).min().unwrap_or(0).min(0);
        let min_y = boxes.iter().map(|b| b.2).min().unwrap_or(0).min(0);
        let max_x = boxes.iter().map(|b| b.1).max().unwrap_or(1) - min_x;
        let max_y = boxes.iter().map(|b| b.3).max().unwrap_or(1) - min_y;
        let mut scene = Scene::new(max_x + 8, max_y + 8).map_err(|e| DbError::Sketch {
            reason: e.to_string(),
        })?;
        for (i, b) in boxes.iter().enumerate() {
            let rect = Rect::new(
                b.0 - min_x + 4,
                b.1 - min_x + 4,
                b.2 - min_y + 4,
                b.3 - min_y + 4,
            )
            .map_err(|e| DbError::Sketch {
                reason: e.to_string(),
            })?;
            scene
                .add(
                    ObjectClass::try_new(&self.names[i]).map_err(|e| DbError::Sketch {
                        reason: e.to_string(),
                    })?,
                    rect,
                )
                .map_err(|e| DbError::Sketch {
                    reason: e.to_string(),
                })?;
        }

        // 6. verify every original constraint on the placed MBRs
        for &(a, r, b) in &self.constraints {
            let (ra, rb) = (scene.objects()[a].mbr(), scene.objects()[b].mbr());
            let ok = match r {
                SketchRelation::LeftOf => ra.x_end() <= rb.x_begin(),
                SketchRelation::RightOf => rb.x_end() <= ra.x_begin(),
                SketchRelation::Below => ra.y_end() <= rb.y_begin(),
                SketchRelation::Above => rb.y_end() <= ra.y_begin(),
                SketchRelation::Inside => rb.contains(&ra) && ra != rb,
                SketchRelation::Contains => ra.contains(&rb) && ra != rb,
                SketchRelation::Overlaps => {
                    ra.overlaps(&rb) && !ra.contains(&rb) && !rb.contains(&ra)
                }
            };
            if !ok {
                return Err(DbError::Sketch {
                    reason: format!(
                        "unsatisfiable constraint: {} {} {}",
                        self.names[a], r, self.names[b]
                    ),
                });
            }
        }
        Ok(scene)
    }

    /// Longest-path ranks of a DAG given by `edges` (a before b), or
    /// `None` on a cycle.
    fn ranks(n: usize, edges: impl Iterator<Item = (usize, usize)>) -> Option<Vec<usize>> {
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut indeg = vec![0usize; n];
        for (a, b) in edges {
            adj.entry(a).or_default().push(b);
            indeg[b] += 1;
        }
        let mut rank = vec![0usize; n];
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in adj.get(&v).map_or(&[][..], Vec::as_slice) {
                rank[w] = rank[w].max(rank[v] + 1);
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        (seen == n).then_some(rank)
    }
}

impl fmt::Display for Sketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clauses: Vec<String> = self
            .constraints
            .iter()
            .map(|&(a, r, b)| format!("{} {} {}", self.names[a], r, self.names[b]))
            .collect();
        f.write_str(&clauses.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::AllenRelation;

    #[test]
    fn parse_basics() {
        let s = Sketch::parse("A left-of B; B left-of C").unwrap();
        assert_eq!(s.names(), ["A", "B", "C"]);
        assert_eq!(s.constraints().count(), 2);
        assert_eq!(s.to_string(), "A left-of B; B left-of C");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Sketch::parse("").is_err());
        assert!(Sketch::parse("A nextto B").is_err());
        assert!(Sketch::parse("A left-of").is_err());
        assert!(Sketch::parse("A left-of A").is_err());
        assert!(Sketch::parse("E left-of B").is_err(), "reserved name");
    }

    #[test]
    fn ordering_constraints_hold() {
        let scene = Sketch::parse("A left-of B, B left-of C, A below C")
            .unwrap()
            .to_scene()
            .unwrap();
        let m = |i: usize| scene.objects()[i].mbr();
        assert!(m(0).x_end() <= m(1).x_begin());
        assert!(m(1).x_end() <= m(2).x_begin());
        assert!(m(0).y_end() <= m(2).y_begin());
    }

    #[test]
    fn mirrored_relations() {
        let scene = Sketch::parse("A right-of B; A above B")
            .unwrap()
            .to_scene()
            .unwrap();
        let m = |i: usize| scene.objects()[i].mbr();
        assert!(m(1).x_end() <= m(0).x_begin());
        assert!(m(1).y_end() <= m(0).y_begin());
    }

    #[test]
    fn nesting_constraints_hold() {
        let scene = Sketch::parse("A inside B; B inside C")
            .unwrap()
            .to_scene()
            .unwrap();
        let m = |i: usize| scene.objects()[i].mbr();
        assert!(m(1).contains(&m(0)));
        assert!(m(2).contains(&m(1)));
        assert_eq!(m(2).x().allen_relation(&m(1).x()), AllenRelation::Contains);
    }

    #[test]
    fn contains_is_inside_mirrored() {
        let scene = Sketch::parse("A contains B").unwrap().to_scene().unwrap();
        assert!(scene.objects()[0].mbr().contains(&scene.objects()[1].mbr()));
    }

    #[test]
    fn overlap_constraint_holds() {
        let scene = Sketch::parse("A overlaps B; A left-of C")
            .unwrap()
            .to_scene()
            .unwrap();
        let (a, b) = (scene.objects()[0].mbr(), scene.objects()[1].mbr());
        assert!(a.overlaps(&b));
        assert!(!a.contains(&b) && !b.contains(&a));
    }

    #[test]
    fn cyclic_ordering_is_an_error() {
        let err = Sketch::parse("A left-of B; B left-of A")
            .unwrap()
            .to_scene();
        assert!(matches!(err, Err(DbError::Sketch { .. })));
        let err = Sketch::parse("A below B; B below C; C below A")
            .unwrap()
            .to_scene();
        assert!(err.is_err());
    }

    #[test]
    fn paper_intro_query_end_to_end() {
        use crate::{ImageDatabase, QueryOptions};
        use be2d_geometry::SceneBuilder;
        // "find all images which icon A locates at the left side and
        // icon B locates at the right"
        let query = Sketch::parse("A left-of B").unwrap().to_scene().unwrap();

        let mut db = ImageDatabase::new();
        db.insert_scene(
            "a-left-b",
            &SceneBuilder::new(100, 100)
                .object("A", (5, 25, 40, 60))
                .object("B", (60, 85, 40, 60))
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert_scene(
            "b-left-a",
            &SceneBuilder::new(100, 100)
                .object("B", (5, 25, 40, 60))
                .object("A", (60, 85, 40, 60))
                .build()
                .unwrap(),
        )
        .unwrap();
        let hits = db.search_scene(&query, &QueryOptions::default());
        assert_eq!(hits[0].name, "a-left-b");
        assert!(hits[0].score > hits[1].score);
    }
}
