//! The per-shard operation log: a sequence-numbered record of every
//! mutation, shared by three features of the replicated database.
//!
//! * **Incremental catch-up** — a replica that failed and healed while
//!   its gap still fits the in-memory ring replays only the ops it
//!   missed instead of re-cloning the whole shard.
//! * **WAL durability** — with a [`WalConfig`] the same ops are also
//!   appended (fsync-batched) to one write-ahead file per shard, so
//!   crash recovery is *snapshot + replay* instead of data loss back to
//!   the last snapshot.
//! * **Async replication** — under [`ReplicationMode::Quorum`] and
//!   [`ReplicationMode::Async`] writes acknowledge before every replica
//!   has applied them; trailing followers drain the ring in the
//!   background and reads are routed only to replicas within bounded
//!   lag.
//!
//! Sequence numbers come from **one global counter** assigned under the
//! owning shard's write mutex, so `seq` totally orders all mutations
//! across shards: every op with a sequence at or below a snapshot's
//! recorded watermark is fully applied in that snapshot, which makes
//! the watermark an exact replay floor.

use crate::database::{write_atomic, ImageDatabase, RecordId};
use crate::epoch::RoutingEpoch;
use crate::error::DbError;
use be2d_core::SymbolicImage;
use be2d_geometry::{ObjectClass, Rect};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How writes acknowledge across a shard's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// Every healthy replica applies the op before the write returns
    /// (the classic fan-out; the default and the pre-oplog behaviour).
    #[default]
    Sync,
    /// A majority of the replica set applies the op before the write
    /// returns; the rest drain in the background.
    Quorum,
    /// Only the leader applies the op before the write returns;
    /// followers drain in the background. Reads are routed to replicas
    /// whose lag is at most `max_lag` ops behind the shard head.
    Async {
        /// Maximum op-count lag a replica may have and still serve
        /// reads.
        max_lag: u64,
    },
}

impl ReplicationMode {
    /// A short stable name for stats and logs.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicationMode::Sync => "sync",
            ReplicationMode::Quorum => "quorum",
            ReplicationMode::Async { .. } => "async",
        }
    }
}

/// Write-ahead-log settings for the opt-in crash-durable mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding `shardK.wal` files and the `wal-anchor.json`
    /// recovery snapshot.
    pub dir: PathBuf,
    /// Fsync after this many appended records (1 = every acknowledged
    /// write is on disk before the call returns; larger values trade a
    /// bounded tail of acknowledged-but-unsynced writes for
    /// throughput).
    pub fsync_every: u64,
}

/// One logged mutation. Ids are **global** — replay re-routes them
/// through the routing epoch, so a log survives a reshard between the
/// write and the replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Op {
    /// Index an image under a pre-assigned global id.
    Insert {
        /// The global record id.
        id: usize,
        /// The image name.
        name: String,
        /// The symbolic image itself.
        symbolic: SymbolicImage,
    },
    /// Remove the image with this global id.
    Remove {
        /// The global record id.
        id: usize,
    },
    /// §3.2 incremental object insert.
    AddObject {
        /// The global record id.
        id: usize,
        /// The object class being added.
        class: ObjectClass,
        /// Its minimum bounding rectangle.
        mbr: Rect,
    },
    /// §3.2 incremental object removal.
    RemoveObject {
        /// The global record id.
        id: usize,
        /// The object class being removed.
        class: ObjectClass,
        /// Its minimum bounding rectangle.
        mbr: Rect,
    },
    /// A replay fence: state was mutated outside the log (restore, or
    /// a reshard batch moving records between shards). A gap that spans
    /// a barrier can never be replayed — catch-up falls back to a
    /// clone, and WAL recovery refuses to replay past one.
    Barrier,
}

impl Op {
    /// Whether this entry is a replay fence rather than a mutation.
    pub(crate) fn is_barrier(&self) -> bool {
        matches!(self, Op::Barrier)
    }

    /// The global record id this op touches (`None` for barriers).
    pub(crate) fn global_id(&self) -> Option<usize> {
        match self {
            Op::Insert { id, .. }
            | Op::Remove { id }
            | Op::AddObject { id, .. }
            | Op::RemoveObject { id, .. } => Some(*id),
            Op::Barrier => None,
        }
    }

    /// Applies this op to one replica of `shard`, routing the global id
    /// through `epoch`. Fails if the id routes elsewhere (the log and
    /// the topology disagree — a bug or a corrupt WAL).
    pub(crate) fn apply_local(
        &self,
        db: &mut ImageDatabase,
        epoch: &RoutingEpoch,
        shard: usize,
    ) -> Result<(), DbError> {
        let local = |id: usize| -> Result<RecordId, DbError> {
            let (routed, local) = epoch.route(id);
            if routed != shard {
                return Err(DbError::Replica {
                    reason: format!("logged op for id {id} routes to shard {routed}, not {shard}"),
                });
            }
            Ok(RecordId(local))
        };
        match self {
            Op::Insert { id, name, symbolic } => {
                db.insert_symbolic_with_id(local(*id)?, name, symbolic.clone())
            }
            Op::Remove { id } => db.remove(local(*id)?).map(|_| ()),
            Op::AddObject { id, class, mbr } => db.add_object(local(*id)?, class, *mbr),
            Op::RemoveObject { id, class, mbr } => db.remove_object(local(*id)?, class, *mbr),
            Op::Barrier => Ok(()),
        }
    }
}

/// The bounded in-memory ring of one shard's recent ops, ordered by
/// sequence number. Owned by the shard's replica set; pushed under the
/// shard write mutex, read by catch-up and the background drain.
#[derive(Debug)]
pub(crate) struct ShardLog {
    entries: VecDeque<(u64, Arc<Op>)>,
    capacity: usize,
    /// Highest sequence ever evicted from the front (0 = none): a
    /// replica whose last-applied sequence is below this has a gap the
    /// ring can no longer cover.
    evicted: u64,
}

impl ShardLog {
    pub(crate) fn new(capacity: usize) -> ShardLog {
        ShardLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// The sequence the next push will evict, if the ring is full.
    pub(crate) fn eviction_candidate(&self) -> Option<u64> {
        (self.entries.len() >= self.capacity)
            .then(|| self.entries.front().map(|(seq, _)| *seq))
            .flatten()
    }

    pub(crate) fn push(&mut self, seq: u64, op: Arc<Op>) {
        while self.entries.len() >= self.capacity {
            if let Some((dropped, _)) = self.entries.pop_front() {
                self.evicted = self.evicted.max(dropped);
            }
        }
        self.entries.push_back((seq, op));
    }

    /// Every entry with sequence strictly above `after`, or `None` when
    /// the gap cannot be replayed: the ring has evicted past `after`,
    /// or a barrier lies inside the range.
    pub(crate) fn collect_since(&self, after: u64) -> Option<Vec<(u64, Arc<Op>)>> {
        if after < self.evicted {
            return None;
        }
        let pending: Vec<(u64, Arc<Op>)> = self
            .entries
            .iter()
            .filter(|(seq, _)| *seq > after)
            .map(|(seq, op)| (*seq, Arc::clone(op)))
            .collect();
        if pending.iter().any(|(_, op)| op.is_barrier()) {
            return None;
        }
        Some(pending)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Per-replica replication position, as reported by stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaLag {
    /// The highest op sequence this replica has applied.
    pub last_applied_seq: u64,
    /// How many ops behind the shard head the replica is.
    pub lag: u64,
    /// Whether the replica is in rotation.
    pub healthy: bool,
}

/// One shard's replication positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReplication {
    /// The shard's newest logged sequence.
    pub head_seq: u64,
    /// Per-replica positions, indexed like the replica set.
    pub replicas: Vec<ReplicaLag>,
}

/// Replication state across the whole database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationStats {
    /// The configured acknowledgement mode.
    pub mode: ReplicationMode,
    /// Per-shard head and replica positions.
    pub shards: Vec<ShardReplication>,
    /// Replica heals that rejoined by replaying the log window.
    pub catchup_replays: u64,
    /// Replica heals that fell back to a full shard clone.
    pub catchup_clones: u64,
    /// Times a writer drained a lagging follower to stop the ring
    /// evicting an entry the follower still needed.
    pub writer_drains: u64,
    /// Bounded-lag reads that found no in-sync follower and fell back
    /// to the leader (see
    /// [`DbMetrics::replica_fallback_reads`](crate::DbMetrics)).
    pub fallback_reads: u64,
}

/// Write-ahead-log counters (all zero unless WAL mode is on).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended since boot.
    pub appended: u64,
    /// Fsync batches issued.
    pub fsyncs: u64,
    /// Log truncations (snapshot checkpoints advancing the floor).
    pub truncations: u64,
    /// Torn tails healed during recovery.
    pub healed_tails: u64,
    /// Ops replayed from the WAL at the last recovery.
    pub recovered: u64,
}

/// Operation-log state across the whole database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OplogStats {
    /// The configured per-shard ring capacity.
    pub window: usize,
    /// The newest sequence assigned anywhere (0 = no ops yet).
    pub last_seq: u64,
    /// Entries currently held across all shard rings.
    pub entries: usize,
    /// WAL counters, when durability mode is on.
    pub wal: Option<WalStats>,
}

/// 64-bit FNV-1a over `bytes` — the WAL record checksum. Dependency-free
/// and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash = (hash ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Encodes one WAL line: `{"seq":N,"sum":"<hex>","op":<op-json>}\n`.
/// The checksum covers `"{seq}:{op-json}"` over the exact bytes
/// written, so the reader verifies the raw substring and never depends
/// on re-serialisation being byte-identical.
fn encode_wal_line(seq: u64, op: &Op) -> Result<String, DbError> {
    let op_json = serde_json::to_string(op).map_err(|e| DbError::Persist {
        reason: format!("cannot encode op {seq}: {e}"),
    })?;
    let sum = fnv1a64(format!("{seq}:{op_json}").as_bytes());
    Ok(format!(
        "{{\"seq\":{seq},\"sum\":\"{sum:016x}\",\"op\":{op_json}}}\n"
    ))
}

/// Decodes one complete WAL line (no trailing newline). Returns `None`
/// for anything malformed or checksum-failed — the caller treats the
/// first bad line as the torn tail.
fn decode_wal_line(line: &str) -> Option<(u64, Op)> {
    // The writer controls the exact shape, so the op substring can be
    // extracted positionally: everything between `"op":` and the final
    // `}`. Parsing the whole line first would lose the raw bytes the
    // checksum was computed over.
    let rest = line.strip_prefix("{\"seq\":")?;
    let colon = rest.find(',')?;
    let seq: u64 = rest[..colon].parse().ok()?;
    let rest = rest[colon + 1..].strip_prefix("\"sum\":\"")?;
    let sum = u64::from_str_radix(rest.get(..16)?, 16).ok()?;
    let op_raw = rest
        .get(16..)?
        .strip_prefix("\",\"op\":")?
        .strip_suffix('}')?;
    if fnv1a64(format!("{seq}:{op_raw}").as_bytes()) != sum {
        return None;
    }
    let op: Op = serde_json::from_str(op_raw).ok()?;
    Some((seq, op))
}

/// One shard's WAL appender. Lazily opens (append/create) on first
/// write; fsyncs every `fsync_every` records.
#[derive(Debug)]
pub(crate) struct WalWriter {
    path: PathBuf,
    file: Option<File>,
    since_sync: u64,
}

impl WalWriter {
    pub(crate) fn new(path: PathBuf) -> WalWriter {
        WalWriter {
            path,
            file: None,
            since_sync: 0,
        }
    }

    fn open(&mut self) -> Result<&mut File, DbError> {
        if self.file.is_none() {
            if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)?;
            }
            let file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(&self.path)?;
            self.file = Some(file);
        }
        Ok(self.file.as_mut().expect("just opened"))
    }

    /// Appends one op, fsyncing when the batch fills. Returns how long
    /// the fsync took when this append issued one, `None` otherwise.
    pub(crate) fn append(
        &mut self,
        seq: u64,
        op: &Op,
        fsync_every: u64,
    ) -> Result<Option<std::time::Duration>, DbError> {
        let line = encode_wal_line(seq, op)?;
        self.open()?;
        let file = self.file.as_mut().expect("opened above");
        file.write_all(line.as_bytes())?;
        self.since_sync += 1;
        if self.since_sync >= fsync_every.max(1) {
            let start = std::time::Instant::now();
            file.sync_data()?;
            self.since_sync = 0;
            return Ok(Some(start.elapsed()));
        }
        Ok(None)
    }

    /// Drops every record with sequence at or below `floor`, rewriting
    /// the file atomically. Used by snapshot checkpoints: everything at
    /// or below the snapshot watermark is already durable in the
    /// snapshot.
    pub(crate) fn truncate_below(&mut self, floor: u64) -> Result<(), DbError> {
        // Close the append handle first: the rewrite replaces the file,
        // and a held handle would keep appending to the orphaned inode.
        self.file = None;
        self.since_sync = 0;
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let mut kept = String::new();
        for line in text.split_inclusive('\n') {
            let Some((seq, _)) = line.strip_suffix('\n').and_then(decode_wal_line) else {
                break;
            };
            if seq > floor {
                kept.push_str(line);
            }
        }
        write_atomic(&self.path, &kept)?;
        Ok(())
    }
}

/// One complete record recovered from a WAL file.
pub(crate) struct WalRecord {
    pub(crate) seq: u64,
    pub(crate) op: Op,
}

/// Reads a WAL file, stopping at the first incomplete, corrupt, or
/// out-of-order line (the torn tail). With `heal` the file is truncated
/// on disk to the last complete record and synced, so the next boot
/// sees a clean log. Returns the good records and whether a tail was
/// cut.
pub(crate) fn load_wal_file(path: &Path, heal: bool) -> Result<(Vec<WalRecord>, bool), DbError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut good_end = 0usize;
    let mut last_seq = 0u64;
    for line in text.split_inclusive('\n') {
        // A line without its newline is an interrupted append.
        let Some(complete) = line.strip_suffix('\n') else {
            break;
        };
        let Some((seq, op)) = decode_wal_line(complete) else {
            break;
        };
        // Sequences are strictly increasing within a file; a regression
        // means the tail predates a truncation that never finished.
        if seq <= last_seq && last_seq != 0 {
            break;
        }
        last_seq = seq;
        good_end += line.len();
        records.push(WalRecord { seq, op });
    }
    let truncated = good_end < text.len();
    if truncated && heal {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(good_end as u64)?;
        file.sync_data()?;
    }
    Ok((records, truncated))
}

/// Shared WAL state of a replicated database: one writer per shard
/// (created on demand as reshards grow the topology) plus counters.
#[derive(Debug)]
pub(crate) struct WalState {
    pub(crate) config: WalConfig,
    writers: parking_lot::RwLock<Vec<Arc<parking_lot::Mutex<WalWriter>>>>,
    pub(crate) appended: AtomicU64,
    pub(crate) fsyncs: AtomicU64,
    pub(crate) truncations: AtomicU64,
    pub(crate) healed_tails: AtomicU64,
    pub(crate) recovered: AtomicU64,
}

impl WalState {
    pub(crate) fn new(config: WalConfig) -> WalState {
        WalState {
            config,
            writers: parking_lot::RwLock::new(Vec::new()),
            appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            truncations: AtomicU64::new(0),
            healed_tails: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    /// The WAL file path of one shard.
    pub(crate) fn shard_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard{shard}.wal"))
    }

    /// The recovery-snapshot (anchor) path.
    pub(crate) fn anchor_path(dir: &Path) -> PathBuf {
        dir.join("wal-anchor.json")
    }

    /// The writer for `shard`, growing the table on demand.
    pub(crate) fn writer(&self, shard: usize) -> Arc<parking_lot::Mutex<WalWriter>> {
        if let Some(writer) = self.writers.read().get(shard) {
            return Arc::clone(writer);
        }
        let mut writers = self.writers.write();
        while writers.len() <= shard {
            let path = WalState::shard_path(&self.config.dir, writers.len());
            writers.push(Arc::new(parking_lot::Mutex::new(WalWriter::new(path))));
        }
        Arc::clone(&writers[shard])
    }

    /// Appends one op to `shard`'s log, bumping counters. Returns the
    /// fsync duration when this append flushed the batch to disk.
    pub(crate) fn append(
        &self,
        shard: usize,
        seq: u64,
        op: &Op,
    ) -> Result<Option<std::time::Duration>, DbError> {
        let writer = self.writer(shard);
        let synced = writer.lock().append(seq, op, self.config.fsync_every)?;
        self.appended.fetch_add(1, Ordering::Relaxed);
        if synced.is_some() {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(synced)
    }

    /// Current counters, for stats.
    pub(crate) fn stats(&self) -> WalStats {
        WalStats {
            appended: self.appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            healed_tails: self.healed_tails.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }
}

/// Lists the `shardK.wal` files in `dir`, sorted by shard index. A
/// missing directory is an empty WAL, not an error.
pub(crate) fn wal_shard_files(dir: &Path) -> Result<Vec<(usize, PathBuf)>, DbError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(DbError::Io(e)),
    };
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(DbError::Io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("shard")
            .and_then(|s| s.strip_suffix(".wal"))
        else {
            continue;
        };
        if let Ok(shard) = stem.parse::<usize>() {
            files.push((shard, entry.path()));
        }
    }
    files.sort_by_key(|&(shard, _)| shard);
    Ok(files)
}

#[cfg(test)]
mod wal_dir_tests {
    use super::*;

    #[test]
    fn wal_files_are_listed_in_shard_order() {
        let dir = std::env::temp_dir().join(format!("be2d-waldir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for k in [2usize, 0, 10] {
            std::fs::write(WalState::shard_path(&dir, k), b"").unwrap();
        }
        std::fs::write(dir.join("wal-anchor.json"), b"{}").unwrap();
        std::fs::write(dir.join("shardx.wal"), b"").unwrap();
        let files = wal_shard_files(&dir).unwrap();
        let shards: Vec<usize> = files.iter().map(|&(k, _)| k).collect();
        assert_eq!(shards, vec![0, 2, 10]);
        assert!(wal_shard_files(&dir.join("missing")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    fn sample_op(id: usize) -> Op {
        let scene = SceneBuilder::new(50, 50)
            .object("A", (1, 9, 1, 9))
            .build()
            .expect("scene");
        Op::Insert {
            id,
            name: format!("img-{id}"),
            symbolic: SymbolicImage::from_scene(&scene),
        }
    }

    #[test]
    fn ring_evicts_and_reports_gap() {
        let mut log = ShardLog::new(3);
        for seq in 1..=5 {
            log.push(seq, Arc::new(sample_op(seq as usize)));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted, 2);
        // Replica at 2 can still replay 3..=5; replica at 1 cannot.
        let pending = log.collect_since(2).expect("within window");
        assert_eq!(
            pending.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert!(log.collect_since(1).is_none());
        // Up to date: empty but replayable.
        assert_eq!(log.collect_since(5).expect("at head").len(), 0);
    }

    #[test]
    fn barriers_fence_replay() {
        let mut log = ShardLog::new(8);
        log.push(1, Arc::new(sample_op(1)));
        log.push(2, Arc::new(Op::Barrier));
        log.push(3, Arc::new(sample_op(3)));
        assert!(log.collect_since(0).is_none());
        assert!(log.collect_since(1).is_none());
        assert_eq!(log.collect_since(2).expect("past barrier").len(), 1);
    }

    #[test]
    fn wal_line_roundtrip_and_corruption() {
        let op = sample_op(7);
        let line = encode_wal_line(42, &op).expect("encode");
        let complete = line.strip_suffix('\n').expect("newline-terminated");
        let (seq, back) = decode_wal_line(complete).expect("decode");
        assert_eq!(seq, 42);
        assert_eq!(back, op);
        // Any single-byte flip in the op payload fails the checksum.
        let mut bytes = complete.as_bytes().to_vec();
        let target = complete.find("img-7").expect("payload") + 1;
        bytes[target] = bytes[target].wrapping_add(1);
        let flipped = String::from_utf8(bytes).expect("utf8");
        assert!(decode_wal_line(&flipped).is_none());
        // Barriers round-trip too.
        let line = encode_wal_line(9, &Op::Barrier).expect("encode");
        let (seq, back) = decode_wal_line(line.trim_end()).expect("decode");
        assert_eq!((seq, back), (9, Op::Barrier));
    }

    #[test]
    fn torn_tail_is_detected_and_healed() {
        let dir = std::env::temp_dir().join(format!("be2d-oplog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("torn.wal");
        let mut writer = WalWriter::new(path.clone());
        for seq in 1..=3 {
            writer
                .append(seq, &sample_op(seq as usize), 1)
                .expect("append");
        }
        drop(writer);
        // Tear the last record mid-line.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() - 10]).expect("tear");
        let (records, truncated) = load_wal_file(&path, true).expect("load");
        assert!(truncated);
        assert_eq!(records.len(), 2);
        assert_eq!(records.last().map(|r| r.seq), Some(2));
        // Healed on disk: a second load is clean.
        let (records, truncated) = load_wal_file(&path, false).expect("reload");
        assert!(!truncated);
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_below_drops_checkpointed_records() {
        let dir = std::env::temp_dir().join(format!("be2d-oplog-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trunc.wal");
        let mut writer = WalWriter::new(path.clone());
        for seq in 1..=4 {
            writer
                .append(seq, &sample_op(seq as usize), 1)
                .expect("append");
        }
        writer.truncate_below(2).expect("truncate");
        let (records, truncated) = load_wal_file(&path, false).expect("load");
        assert!(!truncated);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // The writer still appends correctly after the rewrite.
        writer.append(5, &sample_op(5), 1).expect("append");
        let (records, _) = load_wal_file(&path, false).expect("load");
        assert_eq!(records.last().map(|r| r.seq), Some(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ops_route_and_apply_locally() {
        let epoch = RoutingEpoch::steady(2);
        let mut shard1 = ImageDatabase::new();
        // Global id 3 routes to shard 1 slot 1 under n=2.
        let op = sample_op(3);
        assert_eq!(op.global_id(), Some(3));
        op.apply_local(&mut shard1, &epoch, 1).expect("apply");
        assert_eq!(shard1.len(), 1);
        // The same op on the wrong shard is refused.
        let mut shard0 = ImageDatabase::new();
        let err = op.apply_local(&mut shard0, &epoch, 0).unwrap_err();
        assert!(matches!(err, DbError::Replica { .. }));
        assert_eq!(shard0.len(), 0);
    }
}
