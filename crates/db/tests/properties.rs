//! Stateful property tests of the image database: random operation
//! sequences must keep every access path consistent.

use be2d_core::SymbolicImage;
use be2d_db::{CandidateSource, ImageDatabase, PrefilterMode, QueryOptions, RecordId};
use be2d_geometry::{ObjectClass, Rect, Scene};
use proptest::prelude::*;

const CLASS_NAMES: [&str; 5] = ["A", "B", "C", "D", "F"];
const FRAME: i64 = 64;

/// One step of the stateful test.
#[derive(Debug, Clone)]
enum Op {
    InsertImage {
        objects: Vec<(usize, i64, i64, i64, i64)>,
    },
    RemoveImage {
        slot: usize,
    },
    AddObject {
        slot: usize,
        class: usize,
        rect: (i64, i64, i64, i64),
    },
    RemoveObject {
        slot: usize,
    },
}

fn arb_rect_tuple() -> impl Strategy<Value = (i64, i64, i64, i64)> {
    (0..FRAME - 1, 0..FRAME - 1).prop_flat_map(|(xb, yb)| {
        (1..=FRAME - xb, 1..=FRAME - yb).prop_map(move |(w, h)| (xb, xb + w, yb, yb + h))
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(
            (0..CLASS_NAMES.len(), arb_rect_tuple()).prop_map(|(c, (a, b, d, e))| (c, a, b, d, e)),
            0..5
        )
        .prop_map(|objects| Op::InsertImage { objects }),
        (0usize..24).prop_map(|slot| Op::RemoveImage { slot }),
        (0usize..24, 0..CLASS_NAMES.len(), arb_rect_tuple())
            .prop_map(|(slot, class, rect)| Op::AddObject { slot, class, rect }),
        (0usize..24).prop_map(|slot| Op::RemoveObject { slot }),
    ]
}

/// A shadow model: the set of live (RecordId, Scene) pairs maintained by
/// plain re-computation.
#[derive(Default)]
struct Model {
    live: Vec<(RecordId, Scene)>,
}

impl Model {
    fn scene_of(&mut self, slot: usize) -> Option<&mut (RecordId, Scene)> {
        if self.live.is_empty() {
            None
        } else {
            let i = slot % self.live.len();
            self.live.get_mut(i)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence: every live record's symbolic picture
    /// equals the batch conversion of its shadow scene, dead records stay
    /// dead, and the scan/index search paths agree.
    #[test]
    fn database_stays_consistent(ops in prop::collection::vec(arb_op(), 1..24)) {
        let mut db = ImageDatabase::new();
        let mut model = Model::default();
        let mut removed: Vec<RecordId> = Vec::new();

        for op in ops {
            match op {
                Op::InsertImage { objects } => {
                    let mut scene = Scene::new(FRAME, FRAME).expect("frame");
                    for (c, xb, xe, yb, ye) in objects {
                        scene
                            .add(
                                ObjectClass::new(CLASS_NAMES[c]),
                                Rect::new(xb, xe, yb, ye).expect("rect"),
                            )
                            .expect("fits");
                    }
                    let id = db.insert_scene("img", &scene).expect("insert");
                    model.live.push((id, scene));
                }
                Op::RemoveImage { slot } => {
                    if let Some(&(id, _)) = model.scene_of(slot).map(|p| &*p) {
                        db.remove(id).expect("live record removable");
                        model.live.retain(|(i, _)| *i != id);
                        removed.push(id);
                    }
                }
                Op::AddObject { slot, class, rect } => {
                    if let Some((id, scene)) = model.scene_of(slot) {
                        let class = ObjectClass::new(CLASS_NAMES[class]);
                        let rect = Rect::new(rect.0, rect.1, rect.2, rect.3).expect("rect");
                        db.add_object(*id, &class, rect).expect("add");
                        scene.add(class, rect).expect("fits");
                    }
                }
                Op::RemoveObject { slot } => {
                    if let Some((id, scene)) = model.scene_of(slot) {
                        if !scene.is_empty() {
                            let target = scene.objects()[0].clone();
                            db.remove_object(*id, target.class(), target.mbr())
                                .expect("object present");
                            scene.remove(be2d_geometry::ObjectId(0)).expect("present");
                        }
                    }
                }
            }

            // invariant: every live record equals its shadow conversion
            for (id, scene) in &model.live {
                let record = db.get(*id).expect("live record");
                prop_assert_eq!(&record.symbolic, &SymbolicImage::from_scene(scene));
            }
            // invariant: removed ids stay dead
            for id in &removed {
                prop_assert!(db.get(*id).is_none());
            }
            prop_assert_eq!(db.len(), model.live.len());
        }

        // final: scan and index search paths agree for a class query
        let query = {
            let mut s = Scene::new(FRAME, FRAME).expect("frame");
            s.add(ObjectClass::new("A"), Rect::new(0, 10, 0, 10).expect("rect"))
                .expect("fits");
            s
        };
        for prefilter in [PrefilterMode::AnyClass, PrefilterMode::AllClasses] {
            let scan = db.search_scene(
                &query,
                &QueryOptions {
                    prefilter,
                    candidates: CandidateSource::Scan,
                    top_k: None,
                    ..QueryOptions::default()
                },
            );
            let index = db.search_scene(
                &query,
                &QueryOptions {
                    prefilter,
                    candidates: CandidateSource::ClassIndex,
                    top_k: None,
                    ..QueryOptions::default()
                },
            );
            prop_assert_eq!(scan.len(), index.len());
            for (a, b) in scan.iter().zip(&index) {
                prop_assert_eq!(a.id, b.id);
                prop_assert!((a.score - b.score).abs() < 1e-12);
            }
        }

        // final: persistence roundtrip preserves everything
        let json = db.to_json().expect("serialise");
        let back = ImageDatabase::from_json(&json).expect("deserialise");
        prop_assert_eq!(db, back);
    }
}
