//! The scatter planner under concurrent §3.2 edits: skipping a shard
//! is only sound when its class postings *provably* cannot contribute,
//! and the prune decision must be taken under the same lock acquisition
//! as the scan — postings changing mid-scatter must never prune a shard
//! that could contribute. `planner_skipped` has to count exactly the
//! provable skips, never a racy one.

use be2d_db::{
    CandidateSource, CandidateStrategy, PlannerMode, PrefilterMode, QueryOptions, RecordId,
    ReplicaConfig, ReplicatedImageDatabase, ReplicationMode, Resharder,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn base_scene(x: i64) -> Scene {
    SceneBuilder::new(100, 100)
        .object("A", (x, x + 10, 10, 20))
        .object("B", (50, 90, 50, 90))
        .build()
        .unwrap()
}

fn all_classes_options() -> QueryOptions {
    QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: None,
        ..QueryOptions::default()
    }
}

/// Deterministic accounting: `planner_skipped` counts exactly the
/// shards whose posting intersection is provably empty, tracking §3.2
/// edits as classes appear and disappear.
#[test]
fn planner_skipped_tracks_posting_changes_exactly() {
    let db = ReplicatedImageDatabase::with_topology(4, 1);
    for i in 0..12 {
        db.insert_scene(&format!("img-{i}"), &base_scene(i % 40))
            .unwrap();
    }
    let q = ObjectClass::new("Q");
    let mbr = Rect::new(0, 5, 0, 5).unwrap();
    let query = SceneBuilder::new(100, 100)
        .object("Q", (0, 5, 0, 5))
        .build()
        .unwrap();
    let options = all_classes_options();

    // No Q anywhere: all four shards are provably empty for the query.
    assert!(db.search_scene(&query, &options).unwrap().is_empty());
    assert_eq!(db.planner_skipped(), 4);

    // Q lands on record 0 → shard 0: exactly three shards skippable.
    db.add_object(RecordId(0), &q, mbr).unwrap();
    let hits = db.search_scene(&query, &options).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].id, RecordId(0));
    assert_eq!(db.planner_skipped(), 4 + 3);

    // A second Q on record 5 → shard 1: two shards skippable.
    db.add_object(RecordId(5), &q, mbr).unwrap();
    assert_eq!(db.search_scene(&query, &options).unwrap().len(), 2);
    assert_eq!(db.planner_skipped(), 4 + 3 + 2);

    // Removing the §3.2 objects restores full pruning.
    db.remove_object(RecordId(0), &q, mbr).unwrap();
    db.remove_object(RecordId(5), &q, mbr).unwrap();
    assert!(db.search_scene(&query, &options).unwrap().is_empty());
    assert_eq!(db.planner_skipped(), 4 + 3 + 2 + 4);

    // Scan-mode candidates are never pruned.
    let scan = QueryOptions {
        candidates: CandidateSource::Scan,
        ..all_classes_options()
    };
    let _ = db.search_scene(&query, &scan).unwrap();
    assert_eq!(db.planner_skipped(), 13, "scan mode must not skip");
}

/// The race the prune must survive: a writer toggles class Q on one
/// record while searches run. Queries whose class set is satisfied
/// independently of Q must **always** see their records — if the prune
/// decision ever used stale postings (a different lock acquisition than
/// the scan), the target record would intermittently vanish.
#[test]
fn concurrent_edits_never_prune_a_contributing_shard() {
    let db = ReplicatedImageDatabase::with_topology(4, 2);
    for i in 0..24 {
        db.insert_scene(&format!("img-{i}"), &base_scene(i % 40))
            .unwrap();
    }
    // The toggled record lives on shard 3 (23 % 4).
    let toggled = RecordId(23);
    let q = ObjectClass::new("Q");
    let mbr = Rect::new(0, 5, 0, 5).unwrap();

    // Query on {A}: every record has A, so with AllClasses prefilter no
    // shard is ever skippable, whatever happens to Q.
    let a_query = SceneBuilder::new(100, 100)
        .object("A", (3, 13, 10, 20))
        .build()
        .unwrap();
    // Query on {A, Q} with AnyClass: the union contains all A-records,
    // so again no shard is skippable — a planner that wrongly applied
    // intersection logic (or read stale postings) would drop shard 3's
    // records whenever Q is mid-toggle.
    let aq_query = SceneBuilder::new(100, 100)
        .object("A", (3, 13, 10, 20))
        .object("Q", (0, 5, 0, 5))
        .build()
        .unwrap();
    let all = all_classes_options();
    let any = QueryOptions {
        prefilter: PrefilterMode::AnyClass,
        ..all_classes_options()
    };

    let stop = AtomicBool::new(false);
    let searches = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let writer = {
            let db = db.clone();
            let stop = &stop;
            let q = q.clone();
            scope.spawn(move || {
                let mut toggles = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    db.add_object(toggled, &q, mbr).unwrap();
                    db.remove_object(toggled, &q, mbr).unwrap();
                    toggles += 1;
                }
                toggles
            })
        };
        for _ in 0..2 {
            let db = db.clone();
            let stop = &stop;
            let searches = &searches;
            let (a_query, aq_query) = (&a_query, &aq_query);
            let (all, any) = (&all, &any);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let hits = db.search_scene(a_query, all).unwrap();
                    assert_eq!(hits.len(), 24, "an A-record vanished mid-toggle");
                    let hits = db.search_scene(aq_query, any).unwrap();
                    assert!(
                        hits.iter().any(|h| h.id == toggled),
                        "the toggled record was pruned out of an any-class union"
                    );
                    assert!(hits.len() >= 24, "any-class union lost records");
                    searches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // And the same invariants hold while a reshard migrates the
        // postings shard-to-shard under the toggling writer.
        Resharder::new(&db)
            .batch_ids(6)
            .run_with_checkpoints(7, |_| {
                let target = searches.load(Ordering::Relaxed) + 1;
                let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
                while searches.load(Ordering::Relaxed) < target
                    && std::time::Instant::now() < deadline
                {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while searches.load(Ordering::Relaxed) < 30 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        assert!(writer.join().unwrap() > 0, "writer actually toggled");
    });
    assert_eq!(db.shard_count(), 7);

    // Quiesced: Q is absent, so a Q-only query skips all shards and the
    // counter still only ever counted provable skips.
    let q_query = SceneBuilder::new(100, 100)
        .object("Q", (0, 5, 0, 5))
        .build()
        .unwrap();
    let before = db.planner_skipped();
    assert!(db.search_scene(&q_query, &all).unwrap().is_empty());
    assert_eq!(db.planner_skipped(), before + 7);
}

// ---------------------------------------------------------------------
// Planner v2: the selectivity-ordered scatter, per-shard candidate
// strategy, and least-outstanding replica picker must be pure execution
// optimisations — every ranking stays bit-identical to the naive
// index-order scatter, whatever the topology, mid-reshard, and with
// replicas failed.
// ---------------------------------------------------------------------

fn with_planner(shards: usize, replicas: usize, planner: PlannerMode) -> ReplicatedImageDatabase {
    ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards,
        replicas,
        mode: ReplicationMode::Sync,
        oplog_window: 512,
        planner,
        wal: None,
    })
    .expect("in-memory topology always opens")
}

/// A skewed corpus: every record carries the hot class `H`, a minority
/// carry the rare class `R`, and positions vary so scores differ. The
/// skew is what gives planner v2 something to order and a dense-scan
/// opportunity (H's posting covers each shard).
fn skewed_scene(i: i64) -> Scene {
    let x = (i * 7) % 80;
    let y = (i * 13) % 70;
    let mut b = SceneBuilder::new(200, 200)
        .object("H", (x, x + 12, y, y + 10))
        .object("B", ((i * 3) % 60 + 20, (i * 3) % 60 + 40, 100, 130));
    if i % 7 == 0 {
        b = b.object("R", (x + 2, x + 6, y + 2, y + 6));
    }
    b.build().unwrap()
}

fn fill_skewed(db: &ReplicatedImageDatabase, n: i64) {
    for i in 0..n {
        db.insert_scene(&format!("img-{i}"), &skewed_scene(i))
            .unwrap();
    }
}

/// Queries hitting the rare class (high selectivity), the hot class
/// (dense postings), both, and a class the corpus lacks.
fn planner_queries() -> Vec<Scene> {
    let rare = SceneBuilder::new(200, 200)
        .object("R", (2, 6, 2, 6))
        .build()
        .unwrap();
    let hot = SceneBuilder::new(200, 200)
        .object("H", (0, 12, 0, 10))
        .build()
        .unwrap();
    let both = SceneBuilder::new(200, 200)
        .object("H", (7, 19, 13, 23))
        .object("R", (9, 13, 15, 19))
        .build()
        .unwrap();
    let absent = SceneBuilder::new(200, 200)
        .object("Z", (0, 5, 0, 5))
        .build()
        .unwrap();
    vec![rare, hot, both, absent]
}

/// The option battery: every combination the planner treats
/// differently — index walk vs scan candidates, any/all prefilter,
/// exhaustive vs two-stage, unbounded vs top-k.
fn option_battery() -> Vec<(&'static str, QueryOptions)> {
    let index_all = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: None,
        ..QueryOptions::default()
    };
    vec![
        ("default", QueryOptions::default()),
        ("index-all", index_all.clone()),
        (
            "index-any-topk",
            QueryOptions {
                prefilter: PrefilterMode::AnyClass,
                top_k: Some(10),
                ..index_all.clone()
            },
        ),
        (
            "index-all-two-stage",
            QueryOptions {
                top_k: Some(8),
                ..index_all.clone()
            }
            .with_two_stage(4),
        ),
        (
            "scan-all-two-stage",
            QueryOptions {
                candidates: CandidateSource::Scan,
                top_k: Some(6),
                ..index_all.clone()
            }
            .with_two_stage(8),
        ),
        ("serving", QueryOptions::serving()),
    ]
}

fn assert_identical(naive: &ReplicatedImageDatabase, v2: &ReplicatedImageDatabase, when: &str) {
    for (label, options) in option_battery() {
        for (qi, query) in planner_queries().iter().enumerate() {
            let expect = naive.search_scene(query, &options).unwrap();
            let got = v2.search_scene(query, &options).unwrap();
            assert_eq!(expect.len(), got.len(), "{when}: {label} q{qi} length");
            for (rank, (a, b)) in expect.iter().zip(&got).enumerate() {
                assert_eq!(a.id, b.id, "{when}: {label} q{qi} rank {rank}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{when}: {label} q{qi} rank {rank} score bits"
                );
            }
        }
    }
}

/// The headline invariant: across topologies, with and without failed
/// replicas, planner v2 returns bit-identical rankings to the naive
/// scatter for the whole option battery.
#[test]
fn v2_rankings_bit_identical_to_naive_across_topologies() {
    for (shards, replicas) in [(1usize, 1usize), (2, 2), (4, 1), (3, 3), (5, 2)] {
        let naive = with_planner(shards, replicas, PlannerMode::Naive);
        let v2 = with_planner(shards, replicas, PlannerMode::V2);
        fill_skewed(&naive, 56);
        fill_skewed(&v2, 56);
        assert_identical(&naive, &v2, &format!("{shards}x{replicas}"));

        if replicas > 1 {
            for shard in 0..shards {
                naive.fail_replica(shard, shard % replicas).unwrap();
                v2.fail_replica(shard, (shard + 1) % replicas).unwrap();
            }
            assert_identical(&naive, &v2, &format!("{shards}x{replicas} degraded"));
        }
    }
}

/// Mid-reshard identity: while the v2 database migrates 4 → 7 shards,
/// every checkpoint's rankings still match a naive database that never
/// resharded — and the quiesced end state matches too.
#[test]
fn v2_stays_bit_identical_mid_reshard() {
    let naive = with_planner(4, 2, PlannerMode::Naive);
    let v2 = with_planner(4, 2, PlannerMode::V2);
    fill_skewed(&naive, 48);
    fill_skewed(&v2, 48);

    let mut checkpoints = 0;
    Resharder::new(&v2)
        .batch_ids(5)
        .run_with_checkpoints(7, |_| {
            assert_identical(&naive, &v2, "mid-reshard checkpoint");
            checkpoints += 1;
        })
        .unwrap();
    assert!(checkpoints >= 5, "reshard actually checkpointed");
    assert_eq!(v2.shard_count(), 7);
    assert_identical(&naive, &v2, "after reshard");
}

/// The ordered scatter engages exactly when a cross-shard threshold
/// exists, and the trace exposes the plan: a permutation of visit
/// positions, one sequenced first wave on the most selective shard,
/// and selectivity estimates. Naive mode reports an unordered plan.
#[test]
fn ordered_scatter_engages_and_traces_the_plan() {
    let v2 = with_planner(4, 1, PlannerMode::V2);
    fill_skewed(&v2, 48);
    let query = &planner_queries()[2]; // H + R: selectivity differs per shard
    let staged = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: Some(5),
        ..QueryOptions::default()
    }
    .with_two_stage(4);

    let before = v2.metrics().planner_ordered_scatters.get();
    let (_, trace) = v2.search_scene_traced(query, &staged).unwrap();
    assert!(trace.ordered, "threshold present => ordered scatter");
    assert_eq!(v2.metrics().planner_ordered_scatters.get(), before + 1);

    // Trace entries stay in shard order; their `order` fields form a
    // permutation and exactly one shard is the sequenced first wave —
    // the one the planner estimated most selective.
    let shards: Vec<usize> = trace.shards.iter().map(|s| s.shard).collect();
    assert_eq!(shards, vec![0, 1, 2, 3]);
    let mut orders: Vec<usize> = trace.shards.iter().map(|s| s.order).collect();
    orders.sort_unstable();
    assert_eq!(orders, vec![0, 1, 2, 3]);
    let first: Vec<&_> = trace.shards.iter().filter(|s| s.first_wave).collect();
    assert_eq!(first.len(), 1, "exactly one sequenced first wave");
    assert_eq!(first[0].order, 0, "the first wave is visited first");
    // The first wave is the smallest shard that can still fill top-k
    // (seed a k-th score); with no such shard, the global minimum.
    let k = 5;
    let seed_est = trace
        .shards
        .iter()
        .map(|s| s.est_candidates)
        .filter(|&est| est >= k)
        .min()
        .or_else(|| trace.shards.iter().map(|s| s.est_candidates).min())
        .unwrap();
    assert_eq!(
        first[0].est_candidates, seed_est,
        "first wave = most selective shard that can seed the threshold"
    );

    // No threshold (exhaustive search) => nothing to tighten, no
    // ordering; and naive mode never orders even with a threshold.
    let (_, trace) = v2
        .search_scene_traced(query, &option_battery()[1].1)
        .unwrap();
    assert!(!trace.ordered, "no threshold => no ordered scatter");

    let naive = with_planner(4, 1, PlannerMode::Naive);
    fill_skewed(&naive, 48);
    let (_, trace) = naive.search_scene_traced(query, &staged).unwrap();
    assert!(!trace.ordered);
    for s in &trace.shards {
        assert_eq!(s.order, s.shard, "naive visits in index order");
        assert!(!s.first_wave);
        assert_eq!(s.strategy, CandidateStrategy::IndexWalk);
    }
}

/// Selectivity-driven strategy: a hot-class query (postings covering
/// the shard) runs as a dense scan, a rare-class query walks the
/// postings — and both answer bit-identically to naive mode.
#[test]
fn dense_scan_strategy_engages_on_dense_postings_only() {
    let v2 = with_planner(3, 1, PlannerMode::V2);
    fill_skewed(&v2, 42);
    let options = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: Some(10),
        ..QueryOptions::default()
    };

    // Hot class: every record in every shard carries H, so the planner
    // must choose the dense scan everywhere.
    let before = v2.metrics().planner_dense_scans.get();
    let (_, trace) = v2
        .search_scene_traced(&planner_queries()[1], &options)
        .unwrap();
    for s in &trace.shards {
        assert_eq!(
            s.strategy,
            CandidateStrategy::DenseScan,
            "shard {}",
            s.shard
        );
    }
    assert_eq!(v2.metrics().planner_dense_scans.get(), before + 3);

    // Rare class: sparse postings walk the index.
    let (_, trace) = v2
        .search_scene_traced(&planner_queries()[0], &options)
        .unwrap();
    for s in &trace.shards {
        if !s.skipped {
            assert_eq!(
                s.strategy,
                CandidateStrategy::IndexWalk,
                "shard {}",
                s.shard
            );
        }
    }
}

/// Satellite: bounded-lag reads under `async` replication during a
/// live reshard. A read acknowledged at the leader must be visible to
/// the very next search — if the picker ever served a follower beyond
/// the lag bound, the freshly inserted record would vanish. Once
/// drained, picks spread across the in-sync copies, and admin fault
/// injection can never fail a shard's last copy out from under reads.
#[test]
fn async_bounded_reads_stay_exact_during_live_reshard() {
    let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards: 3,
        replicas: 3,
        mode: ReplicationMode::Async { max_lag: 0 },
        oplog_window: 512,
        planner: PlannerMode::V2,
        wal: None,
    })
    .unwrap();
    fill_skewed(&db, 30);

    let options = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: None,
        ..QueryOptions::default()
    };
    let probe = SceneBuilder::new(200, 200)
        .object("P", (0, 8, 0, 8))
        .build()
        .unwrap();

    let inserted = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let db2 = db.clone();
        let (inserted_ref, stop_ref) = (&inserted, &stop);
        let (probe_ref, options_ref) = (&probe, &options);
        let reader = scope.spawn(move || {
            let mut rounds = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                // Every acked P-record must be in the result: a read
                // routed to a follower lagging past the bound would
                // miss the newest ones.
                let floor = inserted_ref.load(Ordering::Acquire);
                let hits = db2.search_scene(probe_ref, options_ref).unwrap();
                assert!(
                    hits.len() >= floor,
                    "bounded read lost acked writes: {} < {floor}",
                    hits.len()
                );
                rounds += 1;
            }
            rounds
        });

        // Writer keeps appending probe records while the reshard runs.
        for i in 0..40 {
            db.insert_scene(&format!("probe-{i}"), &probe).unwrap();
            inserted.fetch_add(1, Ordering::Release);
            if i == 10 {
                Resharder::new(&db).batch_ids(7).run(5).unwrap();
            }
            std::thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        assert!(reader.join().unwrap() > 0, "reader actually raced");
    });
    assert_eq!(db.shard_count(), 5);

    // Quiesced and drained: every copy is in-sync, and the idle picker
    // rotates reads across them rather than pinning one replica. A
    // follower failed out of rotation here would betray a reshard step
    // that stamped (or moved) a lagging copy without draining it first.
    db.flush_replication();
    for (shard, rep) in db.replication_stats().shards.iter().enumerate() {
        for (r, lag) in rep.replicas.iter().enumerate() {
            assert!(lag.healthy, "shard {shard} replica {r} fell out: {lag:?}");
            assert_eq!(lag.lag, 0, "shard {shard} replica {r} lagging: {lag:?}");
        }
    }
    let mut used: Vec<std::collections::HashSet<usize>> = vec![Default::default(); 5];
    for _ in 0..12 {
        let (_, trace) = db.search_scene_traced(&probe, &options).unwrap();
        for s in &trace.shards {
            used[s.shard].insert(s.replica);
        }
    }
    for (shard, replicas) in used.iter().enumerate() {
        if !replicas.is_empty() {
            assert!(
                replicas.len() >= 2,
                "shard {shard} pinned replica {replicas:?} while idle; stats: {:?}",
                db.replication_stats()
            );
        }
    }

    // The all-failed race is a drain-divergence unit concern (covered
    // in replica.rs); through the admin surface the last healthy copy
    // is explicitly unfailable, so reads always have a replica left.
    db.fail_replica(0, 0).unwrap();
    db.fail_replica(0, 1).unwrap();
    let err = db.fail_replica(0, 2).unwrap_err();
    assert!(err.to_string().contains("last healthy"), "{err}");
    assert!(!db.search_scene(&probe, &options).unwrap().is_empty());
}
