//! The scatter planner under concurrent §3.2 edits: skipping a shard
//! is only sound when its class postings *provably* cannot contribute,
//! and the prune decision must be taken under the same lock acquisition
//! as the scan — postings changing mid-scatter must never prune a shard
//! that could contribute. `planner_skipped` has to count exactly the
//! provable skips, never a racy one.

use be2d_db::{
    CandidateSource, PrefilterMode, QueryOptions, RecordId, ReplicatedImageDatabase, Resharder,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn base_scene(x: i64) -> Scene {
    SceneBuilder::new(100, 100)
        .object("A", (x, x + 10, 10, 20))
        .object("B", (50, 90, 50, 90))
        .build()
        .unwrap()
}

fn all_classes_options() -> QueryOptions {
    QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: None,
        ..QueryOptions::default()
    }
}

/// Deterministic accounting: `planner_skipped` counts exactly the
/// shards whose posting intersection is provably empty, tracking §3.2
/// edits as classes appear and disappear.
#[test]
fn planner_skipped_tracks_posting_changes_exactly() {
    let db = ReplicatedImageDatabase::with_topology(4, 1);
    for i in 0..12 {
        db.insert_scene(&format!("img-{i}"), &base_scene(i % 40))
            .unwrap();
    }
    let q = ObjectClass::new("Q");
    let mbr = Rect::new(0, 5, 0, 5).unwrap();
    let query = SceneBuilder::new(100, 100)
        .object("Q", (0, 5, 0, 5))
        .build()
        .unwrap();
    let options = all_classes_options();

    // No Q anywhere: all four shards are provably empty for the query.
    assert!(db.search_scene(&query, &options).is_empty());
    assert_eq!(db.planner_skipped(), 4);

    // Q lands on record 0 → shard 0: exactly three shards skippable.
    db.add_object(RecordId(0), &q, mbr).unwrap();
    let hits = db.search_scene(&query, &options);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].id, RecordId(0));
    assert_eq!(db.planner_skipped(), 4 + 3);

    // A second Q on record 5 → shard 1: two shards skippable.
    db.add_object(RecordId(5), &q, mbr).unwrap();
    assert_eq!(db.search_scene(&query, &options).len(), 2);
    assert_eq!(db.planner_skipped(), 4 + 3 + 2);

    // Removing the §3.2 objects restores full pruning.
    db.remove_object(RecordId(0), &q, mbr).unwrap();
    db.remove_object(RecordId(5), &q, mbr).unwrap();
    assert!(db.search_scene(&query, &options).is_empty());
    assert_eq!(db.planner_skipped(), 4 + 3 + 2 + 4);

    // Scan-mode candidates are never pruned.
    let scan = QueryOptions {
        candidates: CandidateSource::Scan,
        ..all_classes_options()
    };
    let _ = db.search_scene(&query, &scan);
    assert_eq!(db.planner_skipped(), 13, "scan mode must not skip");
}

/// The race the prune must survive: a writer toggles class Q on one
/// record while searches run. Queries whose class set is satisfied
/// independently of Q must **always** see their records — if the prune
/// decision ever used stale postings (a different lock acquisition than
/// the scan), the target record would intermittently vanish.
#[test]
fn concurrent_edits_never_prune_a_contributing_shard() {
    let db = ReplicatedImageDatabase::with_topology(4, 2);
    for i in 0..24 {
        db.insert_scene(&format!("img-{i}"), &base_scene(i % 40))
            .unwrap();
    }
    // The toggled record lives on shard 3 (23 % 4).
    let toggled = RecordId(23);
    let q = ObjectClass::new("Q");
    let mbr = Rect::new(0, 5, 0, 5).unwrap();

    // Query on {A}: every record has A, so with AllClasses prefilter no
    // shard is ever skippable, whatever happens to Q.
    let a_query = SceneBuilder::new(100, 100)
        .object("A", (3, 13, 10, 20))
        .build()
        .unwrap();
    // Query on {A, Q} with AnyClass: the union contains all A-records,
    // so again no shard is skippable — a planner that wrongly applied
    // intersection logic (or read stale postings) would drop shard 3's
    // records whenever Q is mid-toggle.
    let aq_query = SceneBuilder::new(100, 100)
        .object("A", (3, 13, 10, 20))
        .object("Q", (0, 5, 0, 5))
        .build()
        .unwrap();
    let all = all_classes_options();
    let any = QueryOptions {
        prefilter: PrefilterMode::AnyClass,
        ..all_classes_options()
    };

    let stop = AtomicBool::new(false);
    let searches = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let writer = {
            let db = db.clone();
            let stop = &stop;
            let q = q.clone();
            scope.spawn(move || {
                let mut toggles = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    db.add_object(toggled, &q, mbr).unwrap();
                    db.remove_object(toggled, &q, mbr).unwrap();
                    toggles += 1;
                }
                toggles
            })
        };
        for _ in 0..2 {
            let db = db.clone();
            let stop = &stop;
            let searches = &searches;
            let (a_query, aq_query) = (&a_query, &aq_query);
            let (all, any) = (&all, &any);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let hits = db.search_scene(a_query, all);
                    assert_eq!(hits.len(), 24, "an A-record vanished mid-toggle");
                    let hits = db.search_scene(aq_query, any);
                    assert!(
                        hits.iter().any(|h| h.id == toggled),
                        "the toggled record was pruned out of an any-class union"
                    );
                    assert!(hits.len() >= 24, "any-class union lost records");
                    searches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // And the same invariants hold while a reshard migrates the
        // postings shard-to-shard under the toggling writer.
        Resharder::new(&db)
            .batch_ids(6)
            .run_with_checkpoints(7, |_| {
                let target = searches.load(Ordering::Relaxed) + 1;
                let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
                while searches.load(Ordering::Relaxed) < target
                    && std::time::Instant::now() < deadline
                {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        while searches.load(Ordering::Relaxed) < 30 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        assert!(writer.join().unwrap() > 0, "writer actually toggled");
    });
    assert_eq!(db.shard_count(), 7);

    // Quiesced: Q is absent, so a Q-only query skips all shards and the
    // counter still only ever counted provable skips.
    let q_query = SceneBuilder::new(100, 100)
        .object("Q", (0, 5, 0, 5))
        .build()
        .unwrap();
    let before = db.planner_skipped();
    assert!(db.search_scene(&q_query, &all).is_empty());
    assert_eq!(db.planner_skipped(), before + 7);
}
