//! Query tracing and metrics instrumentation: traced searches must be
//! bit-identical to untraced ones, stage timings must nest inside the
//! measured total, and the always-on histograms must observe traffic.

use be2d_db::{QueryOptions, ReplicatedImageDatabase};
use be2d_geometry::{Scene, SceneBuilder};

const CLASSES: [&str; 6] = ["A", "B", "C", "D", "F", "G"];

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> i64 {
        i64::try_from(self.next() % n).expect("small bound")
    }
}

fn random_scene(rng: &mut Lcg) -> Scene {
    let objects = 2 + rng.below(4);
    let mut builder = SceneBuilder::new(256, 256);
    for _ in 0..objects {
        let class = CLASSES[usize::try_from(rng.below(6)).unwrap()];
        let xb = rng.below(200);
        let yb = rng.below(200);
        let w = 8 + rng.below(48);
        let h = 8 + rng.below(48);
        builder = builder.object(class, (xb, xb + w, yb, yb + h));
    }
    builder.build().expect("generated scene is valid")
}

fn populated(shards: usize, replicas: usize, n: usize) -> (ReplicatedImageDatabase, Vec<Scene>) {
    let mut rng = Lcg(0xbe2d | 1);
    let db = ReplicatedImageDatabase::with_topology(shards, replicas);
    let mut scenes = Vec::with_capacity(n);
    for i in 0..n {
        let scene = random_scene(&mut rng);
        db.insert_scene(&format!("img{i}"), &scene).unwrap();
        scenes.push(scene);
    }
    (db, scenes)
}

/// Tracing rides the same code path as plain search, so ids, order,
/// and scores must match to the last bit of the `f64`.
#[test]
fn traced_search_is_bit_identical_to_untraced() {
    let (db, scenes) = populated(4, 2, 120);
    let options = QueryOptions::default();
    for scene in scenes.iter().take(25) {
        let plain = db.search_scene(scene, &options).unwrap();
        let (traced, _) = db.search_scene_traced(scene, &options).unwrap();
        assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "scores must match bit-for-bit"
            );
        }
    }
}

/// Stage timings are measured disjointly inside the total, the shard
/// list covers the topology, and per-shard hit counts bound the merged
/// result.
#[test]
fn trace_stages_nest_inside_the_total() {
    let (db, scenes) = populated(4, 2, 120);
    let options = QueryOptions {
        top_k: Some(10),
        ..QueryOptions::default()
    };
    for scene in scenes.iter().take(10) {
        let (hits, trace) = db.search_scene_traced(scene, &options).unwrap();
        assert!(
            trace.stage_sum_ns() <= trace.total_ns,
            "stage sum {} must fit in total {}",
            trace.stage_sum_ns(),
            trace.total_ns
        );
        assert_eq!(trace.shards.len(), 4, "one entry per shard");
        let contributed: usize = trace.shards.iter().map(|s| s.hits).sum();
        assert!(contributed >= hits.len());
        for shard in &trace.shards {
            assert!(shard.replica < 2);
            if shard.skipped {
                assert_eq!(shard.hits, 0, "a skipped shard contributes nothing");
            }
        }
    }
}

/// A single-shard topology still produces a coherent trace.
#[test]
fn single_shard_trace_has_one_entry() {
    let (db, scenes) = populated(1, 1, 40);
    let (_, trace) = db
        .search_scene_traced(&scenes[0], &QueryOptions::default())
        .unwrap();
    assert_eq!(trace.shards.len(), 1);
    assert_eq!(trace.planner_ns, 0);
    assert_eq!(trace.gather_ns, 0);
    assert!(trace.scatter_ns <= trace.total_ns);
}

/// The always-on histograms and counters observe every search and
/// every logged mutation without any trace flag.
#[test]
fn metrics_observe_traffic() {
    let (db, scenes) = populated(4, 2, 80);
    let m = db.metrics();
    assert_eq!(m.oplog_append.snapshot().count, 80, "one append per insert");
    let before = m.search_total.snapshot().count;
    for scene in scenes.iter().take(5) {
        let _ = db.search_scene(scene, &QueryOptions::default()).unwrap();
    }
    let total = m.search_total.snapshot();
    assert_eq!(total.count, before + 5);
    assert!(total.sum_ns > 0);
    let scatter0 = m.scatter.get(0).snapshot();
    assert!(scatter0.count >= 5, "shard 0 scanned every search");
    assert!(m.replica_picks.get() >= 20, "4 picks per 4-shard search");
    assert_eq!(
        m.outstanding_reads.get(),
        0,
        "reads all returned, gauge back to zero"
    );
}
