//! Two-stage retrieval equivalence: ranking by admissible score bound
//! with exact §3 re-ranking of a frontier must return results
//! **bit-identical** (`f64::to_bits`, ties included) to exhaustive
//! scoring — across option sets, topologies, concurrent §3.2 edits,
//! mid-reshard checkpoints, and replica failures.

use be2d_db::{
    CandidateSource, ImageDatabase, Parallelism, PrefilterMode, QueryOptions, RecordId,
    ReplicatedImageDatabase, Resharder, SearchHit, ShardedImageDatabase,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder, Transform};

/// A discriminating corpus: objects vary in position, size, class set,
/// and relation order, so scores spread out and pruning has teeth.
fn varied_scene(i: i64) -> Scene {
    let x = (i * 7) % 80;
    let y = (i * 13) % 70;
    let mut builder = SceneBuilder::new(120, 120)
        .object("A", (x, x + 9, y, y + 12))
        .object("B", (30, 60, 40, 70));
    if i % 3 == 0 {
        builder = builder.object("C", (x / 2, x / 2 + 5, 80, 95));
    }
    if i % 4 == 1 {
        builder = builder.object("D", (90, 110, y / 2, y / 2 + 8));
    }
    builder.build().unwrap()
}

fn corpus(n: i64) -> Vec<(String, Scene)> {
    (0..n)
        .map(|i| (format!("img-{i}"), varied_scene(i)))
        .collect()
}

/// The option matrix: every combination the query planner treats
/// differently, each paired with a descriptive label.
fn option_battery() -> Vec<(&'static str, QueryOptions)> {
    let base = QueryOptions::default();
    vec![
        ("default", base.clone()),
        (
            "top5",
            QueryOptions {
                top_k: Some(5),
                ..base.clone()
            },
        ),
        (
            "top1",
            QueryOptions {
                top_k: Some(1),
                ..base.clone()
            },
        ),
        (
            "top0",
            QueryOptions {
                top_k: Some(0),
                ..base.clone()
            },
        ),
        (
            "unbounded",
            QueryOptions {
                top_k: None,
                ..base.clone()
            },
        ),
        (
            "min-score",
            QueryOptions {
                top_k: Some(8),
                min_score: 0.35,
                ..base.clone()
            },
        ),
        (
            "prefilter-all",
            QueryOptions {
                prefilter: PrefilterMode::AllClasses,
                top_k: Some(6),
                ..base.clone()
            },
        ),
        (
            "class-index",
            QueryOptions {
                candidates: CandidateSource::ClassIndex,
                top_k: Some(6),
                ..base.clone()
            },
        ),
        (
            "all-transforms",
            QueryOptions {
                transforms: Transform::ALL.to_vec(),
                top_k: Some(5),
                ..base.clone()
            },
        ),
        (
            "serial",
            QueryOptions {
                parallel: Parallelism::Off,
                top_k: Some(7),
                ..base.clone()
            },
        ),
        (
            "parallel",
            QueryOptions {
                parallel: Parallelism::On,
                top_k: Some(7),
                ..base
            },
        ),
    ]
}

fn assert_hits_identical(expect: &[SearchHit], got: &[SearchHit], when: &str) {
    assert_eq!(expect.len(), got.len(), "{when}: result length");
    for (rank, (a, b)) in expect.iter().zip(got).enumerate() {
        assert_eq!(a.id, b.id, "{when}: rank {rank} id");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{when}: rank {rank} score bits"
        );
        assert_eq!(a.transform, b.transform, "{when}: rank {rank} transform");
    }
}

/// Runs the full option battery × frontier sizes against one search
/// function, comparing two-stage output to exhaustive output.
fn assert_two_stage_equivalent<F>(search: F, queries: &[Scene], label: &str)
where
    F: Fn(&Scene, &QueryOptions) -> Vec<SearchHit>,
{
    for (opt_name, options) in option_battery() {
        for (qi, query) in queries.iter().enumerate() {
            let exhaustive = search(query, &options);
            for frontier in [1usize, 4, 64] {
                let staged = search(query, &options.clone().with_two_stage(frontier));
                assert_hits_identical(
                    &exhaustive,
                    &staged,
                    &format!("{label}/{opt_name}/q{qi}/frontier={frontier}"),
                );
            }
        }
    }
}

fn battery_queries() -> Vec<Scene> {
    vec![varied_scene(4), varied_scene(9), varied_scene(21)]
}

/// Single database: the whole option matrix is bit-identical.
#[test]
fn single_database_matches_exhaustive() {
    let mut db = ImageDatabase::new();
    for (name, scene) in corpus(60) {
        db.insert_scene(&name, &scene).unwrap();
    }
    assert_two_stage_equivalent(|q, o| db.search_scene(q, o), &battery_queries(), "single");
}

/// Sharded topologies (including the single-shard fast path) share the
/// same guarantee; multi-shard runs exercise the cross-shard threshold.
#[test]
fn sharded_databases_match_exhaustive() {
    for shards in [1usize, 4] {
        let db = ShardedImageDatabase::with_shards(shards);
        for (name, scene) in corpus(60) {
            db.insert_scene(&name, &scene).unwrap();
        }
        assert_two_stage_equivalent(
            |q, o| db.search_scene(q, o),
            &battery_queries(),
            &format!("sharded-{shards}"),
        );
    }
}

/// Replicated scatter-gather (the traced search path) is bit-identical,
/// and stays so with a replica failed out of every shard.
#[test]
fn replicated_database_matches_exhaustive_even_with_failed_replicas() {
    let db = ReplicatedImageDatabase::with_topology(3, 2);
    for (name, scene) in corpus(60) {
        db.insert_scene(&name, &scene).unwrap();
    }
    assert_two_stage_equivalent(
        |q, o| db.search_scene(q, o).unwrap(),
        &battery_queries(),
        "replicated-3x2",
    );

    for shard in 0..3 {
        db.fail_replica(shard, (shard + 1) % 2).unwrap();
    }
    assert_two_stage_equivalent(
        |q, o| db.search_scene(q, o).unwrap(),
        &battery_queries(),
        "replicated-3x2-degraded",
    );
}

/// §3.2 edits between searches keep the sketches (and therefore the
/// two-stage ranking) exact: after every add/remove/insert/delete the
/// staged result still matches exhaustive bit-for-bit.
#[test]
fn equivalence_survives_incremental_edits() {
    let db = ReplicatedImageDatabase::with_topology(2, 2);
    let mut ids: Vec<RecordId> = corpus(40)
        .iter()
        .map(|(name, scene)| db.insert_scene(name, scene).unwrap())
        .collect();
    let class = ObjectClass::new("W");
    let mbr = Rect::new(0, 4, 0, 4).unwrap();
    let queries = battery_queries();

    for step in 0..12usize {
        match step % 4 {
            0 => {
                let id = ids[step * 3 % ids.len()];
                db.add_object(id, &class, mbr).unwrap();
            }
            1 => {
                let id = ids[(step * 5 + 1) % ids.len()];
                // Only remove where the previous step added; tolerate
                // misses so the schedule stays simple.
                let _ = db.remove_object(id, &class, mbr);
            }
            2 => {
                let id = db
                    .insert_scene(&format!("edit-{step}"), &varied_scene(step as i64 + 100))
                    .unwrap();
                ids.push(id);
            }
            _ => {
                let id = ids.remove(step % ids.len());
                db.remove(id).unwrap();
            }
        }
        let options = QueryOptions {
            top_k: Some(6),
            ..QueryOptions::default()
        };
        for (qi, query) in queries.iter().enumerate() {
            let exhaustive = db.search_scene(query, &options).unwrap();
            let staged = db
                .search_scene(query, &options.clone().with_two_stage(4))
                .unwrap();
            assert_hits_identical(&exhaustive, &staged, &format!("edit step {step} q{qi}"));
        }
    }
}

/// Mid-reshard: at every migration checkpoint (old and new shards both
/// live, routed by the epoch) two-stage search still equals exhaustive.
#[test]
fn equivalence_holds_at_every_reshard_checkpoint() {
    let db = ReplicatedImageDatabase::with_topology(2, 2);
    for (name, scene) in corpus(70) {
        db.insert_scene(&name, &scene).unwrap();
    }
    let queries = battery_queries();
    let options = QueryOptions {
        top_k: Some(5),
        ..QueryOptions::default()
    };
    let mut checkpoints = 0usize;
    for (target, batch) in [(5usize, 9usize), (3, 13)] {
        Resharder::new(&db)
            .batch_ids(batch)
            .run_with_checkpoints(target, |_| {
                for (qi, query) in queries.iter().enumerate() {
                    let exhaustive = db.search_scene(query, &options).unwrap();
                    let staged = db
                        .search_scene(query, &options.clone().with_two_stage(8))
                        .unwrap();
                    assert_hits_identical(
                        &exhaustive,
                        &staged,
                        &format!("reshard->{target} checkpoint {checkpoints} q{qi}"),
                    );
                }
                checkpoints += 1;
            })
            .unwrap();
        assert_eq!(db.shard_count(), target);
    }
    assert!(checkpoints >= 6, "checkpoints exercised: {checkpoints}");
}

/// Two-stage pruning actually prunes: with a small top-k on a corpus
/// with a clear score gradient, fewer candidates are exactly scored
/// than exist, and stats account for every candidate.
#[test]
fn stats_show_real_pruning_and_account_for_every_candidate() {
    let mut db = ImageDatabase::new();
    for (name, scene) in corpus(120) {
        db.insert_scene(&name, &scene).unwrap();
    }
    let query = varied_scene(4);
    let options = QueryOptions {
        top_k: Some(3),
        ..QueryOptions::default()
    }
    .with_two_stage(8);
    let (hits, stats) = db.search_bounded(
        &be2d_core::SymbolicImage::from_scene(&query).to_be_string_2d(),
        &options,
        None,
    );
    assert_eq!(hits.len(), 3);
    assert_eq!(
        stats.scored + stats.bound_pruned,
        stats.candidates,
        "every candidate is either scored or pruned: {stats:?}"
    );
    assert!(
        stats.scored < stats.candidates,
        "pruning never fired on a 120-image corpus: {stats:?}"
    );

    // Exhaustive mode scores everything and prunes nothing.
    let exhaustive = QueryOptions {
        top_k: Some(3),
        ..QueryOptions::default()
    };
    let (_, stats) = db.search_bounded(
        &be2d_core::SymbolicImage::from_scene(&query).to_be_string_2d(),
        &exhaustive,
        None,
    );
    assert_eq!(stats.scored, stats.candidates);
    assert_eq!(stats.bound_pruned, 0);
}

/// The traced scatter path reports per-shard stage-2 stats that add up,
/// and the shared cross-shard threshold never changes the merged top-k.
#[test]
fn traces_carry_stage_counts_across_shards() {
    let db = ReplicatedImageDatabase::with_topology(4, 1);
    for (name, scene) in corpus(100) {
        db.insert_scene(&name, &scene).unwrap();
    }
    let query = varied_scene(9);
    let options = QueryOptions {
        top_k: Some(4),
        ..QueryOptions::default()
    }
    .with_two_stage(8);
    let (hits, trace) = db.search_scene_traced(&query, &options).unwrap();
    assert_eq!(hits.len(), 4);
    let scored: usize = trace.shards.iter().map(|s| s.scored).sum();
    let pruned: usize = trace.shards.iter().map(|s| s.bound_pruned).sum();
    assert!(scored > 0, "{trace:?}");
    assert!(
        scored + pruned >= hits.len(),
        "stage totals too small: {trace:?}"
    );
    let exhaustive = db.search_scene(
        &query,
        &QueryOptions {
            top_k: Some(4),
            ..QueryOptions::default()
        },
    );
    let exhaustive = exhaustive.unwrap();
    assert_hits_identical(&exhaustive, &hits, "traced scatter");

    let m = db.metrics();
    assert!(m.stage2_scored.get() >= scored as u64);
}
