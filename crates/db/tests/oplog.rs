//! Write-ahead-log durability: every **acknowledged** write survives an
//! abrupt shutdown (drop without snapshot or checkpoint), torn trailing
//! records are detected and healed rather than poisoning recovery, and
//! snapshot checkpoints bound how much log a reboot has to replay. The
//! recovered corpus must rank bit-identically to one built live.

use be2d_db::{
    PlannerMode, QueryOptions, RecordId, ReplicaConfig, ReplicatedImageDatabase, ReplicationMode,
    WalConfig,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scene(i: i64) -> Scene {
    SceneBuilder::new(120, 120)
        .object("A", ((i * 7) % 80, (i * 7) % 80 + 12, 5, 25))
        .object("B", (30, 70, (i * 11) % 60, (i * 11) % 60 + 18))
        .build()
        .unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "be2d_oplog_{tag}_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(shards: usize, dir: &Path, fsync_every: u64) -> ReplicaConfig {
    ReplicaConfig {
        shards,
        replicas: 1,
        mode: ReplicationMode::Sync,
        oplog_window: 256,
        planner: PlannerMode::default(),
        wal: Some(WalConfig {
            dir: dir.to_path_buf(),
            fsync_every,
        }),
    }
}

/// Mixed mutations (inserts, a remove, an incremental object edit) are
/// appended to the WAL; dropping the database without any snapshot and
/// rebooting from the same directory reproduces the corpus exactly —
/// including bit-identical rankings against a database built live.
#[test]
fn reboot_replays_every_acknowledged_write() {
    let dir = fresh_dir("reboot");

    let reference = ReplicatedImageDatabase::with_topology(2, 1);
    {
        let db = ReplicatedImageDatabase::with_config(wal_config(2, &dir, 1)).unwrap();
        for target in [&db, &reference] {
            for i in 0..12 {
                target.insert_scene(&format!("img-{i}"), &scene(i)).unwrap();
            }
            target.remove(RecordId(5)).unwrap();
            target
                .add_object(
                    RecordId(3),
                    &ObjectClass::new("Z"),
                    Rect::new(0, 9, 0, 9).unwrap(),
                )
                .unwrap();
        }
        assert_eq!(db.len(), 11);
        // Dropped here: no save_snapshot, no checkpoint — the WAL is
        // the only persistent state.
    }

    let back = ReplicatedImageDatabase::with_config(wal_config(2, &dir, 1)).unwrap();
    assert_eq!(back.len(), 11);
    assert!(back.get(RecordId(5)).unwrap().is_none());
    for i in (0..12).filter(|&i| i != 5) {
        assert_eq!(
            back.get(RecordId(i)).unwrap().unwrap().name,
            format!("img-{i}")
        );
    }
    assert!(back.oplog_stats().wal.expect("wal on").recovered >= 14);

    let options = QueryOptions::default();
    for probe in 0..12 {
        let a = reference.search_scene(&scene(probe), &options).unwrap();
        let b = back.search_scene(&scene(probe), &options).unwrap();
        assert_eq!(a.len(), b.len(), "probe {probe}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "probe {probe}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "probe {probe}");
        }
    }

    // Id healing is monotonic: the next insert collides with nothing.
    let next = back.insert_scene("after", &scene(40)).unwrap();
    assert!(next.index() >= 12, "{next:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn trailing record — half a line, as an abrupt kill mid-append
/// leaves behind — is detected by the per-record checksum, truncated
/// away, and counted; every complete record before it still replays.
#[test]
fn torn_tail_is_healed_and_prefix_replays() {
    let dir = fresh_dir("torn");
    {
        let db = ReplicatedImageDatabase::with_config(wal_config(1, &dir, 1)).unwrap();
        for i in 0..6 {
            db.insert_scene(&format!("img-{i}"), &scene(i)).unwrap();
        }
    }

    // Simulate the kill: a partial record with no trailing newline.
    let wal = dir.join("shard0.wal");
    let before = std::fs::metadata(&wal).unwrap().len();
    let mut file = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    file.write_all(b"{\"seq\":99,\"sum\":\"00000000").unwrap();
    drop(file);

    let back = ReplicatedImageDatabase::with_config(wal_config(1, &dir, 1)).unwrap();
    assert_eq!(back.len(), 6);
    for i in 0..6 {
        assert_eq!(
            back.get(RecordId(i)).unwrap().unwrap().name,
            format!("img-{i}")
        );
    }
    let wal_stats = back.oplog_stats().wal.expect("wal on");
    assert_eq!(wal_stats.healed_tails, 1);
    assert_eq!(wal_stats.recovered, 6);

    // The torn bytes are gone from disk (boot heals in place, then the
    // recovery checkpoint rewrites the file), and the sequence counter
    // moved past every replayed record: new writes append cleanly and
    // survive another reboot.
    assert!(std::fs::metadata(&wal).unwrap().len() < before);
    back.insert_scene("post-heal", &scene(30)).unwrap();
    drop(back);
    let again = ReplicatedImageDatabase::with_config(wal_config(1, &dir, 1)).unwrap();
    assert_eq!(again.len(), 7);
    std::fs::remove_dir_all(&dir).ok();
}

/// `checkpoint_wal` anchors a snapshot and drops the replayed prefix:
/// only ops logged after the checkpoint are replayed on the next boot.
#[test]
fn checkpoint_bounds_replay_to_the_tail() {
    let dir = fresh_dir("ckpt");
    {
        let db = ReplicatedImageDatabase::with_config(wal_config(2, &dir, 1)).unwrap();
        for i in 0..10 {
            db.insert_scene(&format!("img-{i}"), &scene(i)).unwrap();
        }
        assert_eq!(db.checkpoint_wal().unwrap(), 10);
        for i in 10..13 {
            db.insert_scene(&format!("img-{i}"), &scene(i)).unwrap();
        }
    }

    let back = ReplicatedImageDatabase::with_config(wal_config(2, &dir, 1)).unwrap();
    assert_eq!(back.len(), 13);
    for i in 0..13 {
        assert_eq!(
            back.get(RecordId(i)).unwrap().unwrap().name,
            format!("img-{i}")
        );
    }
    // Exactly the three post-checkpoint inserts replayed; the first ten
    // came from the anchor snapshot.
    assert_eq!(back.oplog_stats().wal.expect("wal on").recovered, 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// WAL durability composes with asynchronous replication: acks return
/// from the leader, the background pump drains the follower, and after
/// an abrupt drop the reboot still owns every acknowledged write.
#[test]
fn async_mode_with_wal_survives_reboot() {
    let dir = fresh_dir("async");
    {
        let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
            shards: 2,
            replicas: 2,
            mode: ReplicationMode::Async { max_lag: 8 },
            oplog_window: 256,
            planner: PlannerMode::default(),
            wal: Some(WalConfig {
                dir: dir.clone(),
                fsync_every: 1,
            }),
        })
        .unwrap();
        for i in 0..9 {
            db.insert_scene(&format!("img-{i}"), &scene(i)).unwrap();
        }
        db.flush_replication();
        let stats = db.replication_stats();
        assert_eq!(stats.mode.name(), "async");
        for shard in &stats.shards {
            for replica in &replica_lags(shard) {
                assert_eq!(*replica, 0);
            }
        }
    }

    let back = ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards: 2,
        replicas: 2,
        mode: ReplicationMode::Async { max_lag: 8 },
        oplog_window: 256,
        planner: PlannerMode::default(),
        wal: Some(WalConfig {
            dir: dir.clone(),
            fsync_every: 4,
        }),
    })
    .unwrap();
    assert_eq!(back.len(), 9);
    for i in 0..9 {
        assert_eq!(
            back.get(RecordId(i)).unwrap().unwrap().name,
            format!("img-{i}")
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn replica_lags(shard: &be2d_db::ShardReplication) -> Vec<u64> {
    shard.replicas.iter().map(|r| r.lag).collect()
}
