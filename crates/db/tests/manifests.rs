//! Property tests for snapshot manifests: arbitrary v1–v4 manifests
//! either round-trip exactly or are **rejected cleanly** — a failed
//! restore never leaves a partial corpus behind, and id-counter healing
//! is always monotonic (an insert after any successful restore can
//! never collide with a restored record or reuse a pre-restore id).

use be2d_db::{RecordId, ReplicatedImageDatabase, ShardedImageDatabase};
use be2d_geometry::{Scene, SceneBuilder};
use proptest::prelude::*;
use serde::{Deserialize, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scene(i: i64) -> Scene {
    SceneBuilder::new(80, 80)
        .object("A", ((i * 5) % 60, (i * 5) % 60 + 8, 4, 14))
        .object("B", (20, 50, 30, 60))
        .build()
        .unwrap()
}

fn fresh_dir() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "be2d_manifest_prop_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The fields of a parsed manifest, extracted through the JSON tree so
/// the test can re-emit any manifest version (with optional damage).
struct ManifestFields {
    format: String,
    snapshot_id: u64,
    writer: u64,
    shards: u64,
    next_id: u64,
    records: u64,
    files: Vec<String>,
    file_snapshots: Vec<u64>,
    edits: Vec<u64>,
    old_shards: u64,
    new_shards: u64,
    boundary: u64,
    log_heads: Vec<u64>,
    wal_seq: u64,
}

fn field<'v>(map: &'v [(String, Value)], key: &str) -> &'v Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("manifest field {key} missing"))
}

fn num(map: &[(String, Value)], key: &str) -> u64 {
    u64::from_value(field(map, key)).unwrap_or_else(|_| panic!("field {key} is not a number"))
}

fn parse_fields(path: &Path) -> ManifestFields {
    let text = std::fs::read_to_string(path).unwrap();
    let value: Value = serde_json::from_str(&text).unwrap();
    let map = value.as_map().expect("manifest is a JSON object");
    let strings = |key: &str| -> Vec<String> {
        field(map, key)
            .as_seq()
            .unwrap()
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.clone(),
                other => panic!("{key} holds {other:?}"),
            })
            .collect()
    };
    let numbers = |key: &str| -> Vec<u64> {
        field(map, key)
            .as_seq()
            .unwrap()
            .iter()
            .map(|v| u64::from_value(v).unwrap())
            .collect()
    };
    ManifestFields {
        format: match field(map, "format") {
            Value::Str(s) => s.clone(),
            other => panic!("format holds {other:?}"),
        },
        snapshot_id: num(map, "snapshot_id"),
        writer: num(map, "writer"),
        shards: num(map, "shards"),
        next_id: num(map, "next_id"),
        records: num(map, "records"),
        files: strings("files"),
        file_snapshots: numbers("file_snapshots"),
        edits: numbers("edits"),
        old_shards: num(map, "old_shards"),
        new_shards: num(map, "new_shards"),
        boundary: num(map, "boundary"),
        log_heads: numbers("log_heads"),
        wal_seq: num(map, "wal_seq"),
    }
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn join_files(files: &[String]) -> String {
    files
        .iter()
        .map(|f| format!("{f:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Re-emits the manifest in the requested on-disk version.
fn emit(fields: &ManifestFields, version: u8) -> String {
    match version {
        1 => format!(
            r#"{{"format":{:?},"version":1,"snapshot_id":{},"shards":{},"next_id":{},"records":{},"files":[{}]}}"#,
            fields.format,
            fields.snapshot_id,
            fields.shards,
            fields.next_id,
            fields.records,
            join_files(&fields.files),
        ),
        2 => format!(
            r#"{{"format":{:?},"version":2,"snapshot_id":{},"writer":{},"shards":{},"next_id":{},"records":{},"files":[{}],"file_snapshots":[{}],"edits":[{}]}}"#,
            fields.format,
            fields.snapshot_id,
            fields.writer,
            fields.shards,
            fields.next_id,
            fields.records,
            join_files(&fields.files),
            join_u64(&fields.file_snapshots),
            join_u64(&fields.edits),
        ),
        3 => format!(
            r#"{{"format":{:?},"version":3,"snapshot_id":{},"writer":{},"shards":{},"next_id":{},"records":{},"files":[{}],"file_snapshots":[{}],"edits":[{}],"old_shards":{},"new_shards":{},"boundary":{}}}"#,
            fields.format,
            fields.snapshot_id,
            fields.writer,
            fields.shards,
            fields.next_id,
            fields.records,
            join_files(&fields.files),
            join_u64(&fields.file_snapshots),
            join_u64(&fields.edits),
            fields.old_shards,
            fields.new_shards,
            fields.boundary,
        ),
        4 => format!(
            r#"{{"format":{:?},"version":4,"snapshot_id":{},"writer":{},"shards":{},"next_id":{},"records":{},"files":[{}],"file_snapshots":[{}],"edits":[{}],"old_shards":{},"new_shards":{},"boundary":{},"log_heads":[{}],"wal_seq":{}}}"#,
            fields.format,
            fields.snapshot_id,
            fields.writer,
            fields.shards,
            fields.next_id,
            fields.records,
            join_files(&fields.files),
            join_u64(&fields.file_snapshots),
            join_u64(&fields.edits),
            fields.old_shards,
            fields.new_shards,
            fields.boundary,
            join_u64(&fields.log_heads),
            fields.wal_seq,
        ),
        other => panic!("no manifest version {other}"),
    }
}

/// What the strategy does to an otherwise-valid manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Damage {
    /// Leave it valid (must round-trip).
    None,
    /// Understate `next_id` (must round-trip: healing is monotonic).
    UnderstateNextId,
    /// Unknown format string (rejected).
    BadFormat,
    /// `shards` disagrees with the file list (rejected).
    ShardCountLie,
    /// One shard file vanished from disk (rejected).
    MissingFile,
    /// One file generation disagrees with the shard file (rejected —
    /// a torn snapshot must never restore silently).
    TornGeneration,
    /// Epoch does not fit the physical shards (rejected; v3 only —
    /// lower versions carry no epoch, so they get `ShardCountLie`).
    BadEpoch,
    /// A file name tries to escape the snapshot directory (rejected).
    EscapingFileName,
}

const DAMAGES: [Damage; 8] = [
    Damage::None,
    Damage::UnderstateNextId,
    Damage::BadFormat,
    Damage::ShardCountLie,
    Damage::MissingFile,
    Damage::TornGeneration,
    Damage::BadEpoch,
    Damage::EscapingFileName,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for any source topology, record count,
    /// manifest version, and damage, a restore either reproduces the
    /// saved corpus exactly (valid manifests, including understated id
    /// counters, which heal monotonically) or fails cleanly with the
    /// target database untouched.
    #[test]
    fn manifests_roundtrip_or_reject_cleanly(
        source_shards in 1usize..5,
        records in 0usize..14,
        removed_every in 2usize..5,
        target_shards in 1usize..5,
        replicas in 1usize..3,
        version in 1u8..5,
        damage_index in 0usize..DAMAGES.len(),
    ) {
        let mut damage = DAMAGES[damage_index];
        if version < 3 && damage == Damage::BadEpoch {
            damage = Damage::ShardCountLie;
        }
        let dir = fresh_dir();
        let path = dir.join("m.json");

        // Source corpus with some dead ids, saved as a v3 manifest.
        let source = ShardedImageDatabase::with_shards(source_shards);
        let mut live: Vec<usize> = Vec::new();
        for i in 0..records {
            source.insert_scene(&format!("img-{i}"), &scene(i as i64)).unwrap();
            if i % removed_every == 0 {
                source.remove(RecordId(i)).unwrap();
            } else {
                live.push(i);
            }
        }
        source.save_snapshot(&path).unwrap();

        // Re-emit at the requested version, with the requested damage.
        let mut fields = parse_fields(&path);
        match damage {
            Damage::None => {}
            Damage::UnderstateNextId => fields.next_id = 0,
            Damage::BadFormat => fields.format = "be2d-something-else".into(),
            Damage::ShardCountLie => fields.shards += 1,
            Damage::MissingFile => std::fs::remove_file(dir.join(&fields.files[0])).unwrap(),
            Damage::TornGeneration => {
                fields.file_snapshots[0] = fields.file_snapshots[0].wrapping_add(1);
                // v1 derives generations from snapshot_id; tear that instead.
                if version == 1 {
                    fields.snapshot_id = fields.snapshot_id.wrapping_add(1);
                }
            }
            Damage::BadEpoch => fields.new_shards = fields.shards + 3,
            Damage::EscapingFileName => fields.files[0] = "../escape.json".into(),
        }
        std::fs::write(&path, emit(&fields, version)).unwrap();

        // A busy target: 3 pre-existing records that must survive any
        // *failed* restore untouched.
        let target = ReplicatedImageDatabase::with_topology(target_shards, replicas);
        for i in 0..3 {
            target.insert_scene(&format!("busy-{i}"), &scene(40 + i)).unwrap();
        }

        let expect_ok = matches!(damage, Damage::None | Damage::UnderstateNextId);
        match target.restore_from(&path) {
            Ok(restored) => {
                prop_assert!(expect_ok, "damage {damage:?} restored successfully");
                prop_assert_eq!(restored, live.len());
                prop_assert_eq!(target.len(), live.len());
                for &i in &live {
                    let record = target.get(RecordId(i)).unwrap();
                    prop_assert!(record.is_some(), "record {} lost", i);
                    prop_assert_eq!(record.unwrap().name, format!("img-{i}"));
                }
                // Counter healing is monotonic: the next insert must
                // collide with no restored record, and the counter can
                // never move backwards past ids this instance already
                // handed out — even when the manifest understated
                // next_id. (Dead ids *above* every live record carry no
                // state a corrupt manifest is obliged to preserve.)
                let next = target.insert_scene("after", &scene(70)).unwrap();
                prop_assert!(next.index() >= 3, "{:?}", next);
                prop_assert!(!live.contains(&next.index()), "{:?} collided", next);
                if damage == Damage::None {
                    prop_assert!(next.index() >= records.max(3), "{:?}", next);
                }
                prop_assert!(target.get(next).unwrap().is_some());
            }
            Err(e) => {
                prop_assert!(!expect_ok, "valid manifest rejected: {e}");
                // Clean rejection: no partial restore, the busy corpus
                // is exactly as it was.
                prop_assert_eq!(target.len(), 3, "partial restore after {}", e);
                for i in 0..3usize {
                    let record = target.get(RecordId(i)).unwrap();
                    prop_assert!(record.is_some());
                    prop_assert_eq!(record.unwrap().name, format!("busy-{i}"));
                }
                // Nothing escaped the snapshot directory.
                prop_assert!(!dir.join("../escape.json").exists());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
