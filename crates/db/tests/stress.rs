//! Concurrent-correctness stress test: one [`ShardedImageDatabase`]
//! hammered by mixed reader/writer threads, with every observed search
//! result set checked for internal consistency — no torn reads, no
//! panics, no half-applied edits visible to readers.

use be2d_db::{
    ImageDatabase, Parallelism, PrefilterMode, QueryOptions, RecordId, ShardedImageDatabase,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};
use std::sync::atomic::{AtomicBool, Ordering};

fn scene(x: i64, extra: bool) -> Scene {
    let mut b = SceneBuilder::new(200, 200)
        .object("A", (x % 50, x % 50 + 20, 10, 40))
        .object("B", (80, 150, x % 40 + 10, x % 40 + 60));
    if extra {
        b = b.object("C", (160, 190, 160, 190));
    }
    b.build().expect("valid scene")
}

/// Asserts the invariants every coherent result set satisfies,
/// regardless of which database version the search observed.
fn check_consistent(hits: &[be2d_db::SearchHit], options: &QueryOptions) {
    if let Some(k) = options.top_k {
        assert!(hits.len() <= k, "top_k respected");
    }
    let mut seen = std::collections::HashSet::new();
    for window in hits.windows(2) {
        assert!(
            window[0].score >= window[1].score,
            "scores sorted descending"
        );
    }
    for hit in hits {
        assert!(seen.insert(hit.id), "duplicate id {} in results", hit.id);
        assert!(
            (0.0..=1.0 + 1e-9).contains(&hit.score),
            "score in range: {}",
            hit.score
        );
        assert!(hit.score >= options.min_score, "score floor respected");
        assert!(!hit.name.is_empty(), "name survived the read");
    }
}

#[test]
fn mixed_readers_and_writers_stay_consistent() {
    // 4 shards: the stress covers cross-shard scatter-gather reads
    // racing per-shard writes (with_shards(1) is the single-lock case,
    // which the unit tests already exercise).
    let db = ShardedImageDatabase::with_shards(4);
    for i in 0..64 {
        db.insert_scene(&format!("seed{i}"), &scene(i, i % 3 == 0))
            .expect("seed insert");
    }
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // --- searchers: three different option shapes, including the
        // threaded scan, all validating every result set they see.
        for worker in 0..3 {
            let db = db.clone();
            let stop = &stop;
            s.spawn(move || {
                let options = match worker {
                    0 => QueryOptions::default(),
                    1 => QueryOptions {
                        prefilter: PrefilterMode::None,
                        parallel: Parallelism::On,
                        top_k: None,
                        ..QueryOptions::default()
                    },
                    _ => QueryOptions::serving(),
                };
                let query = scene(17, true);
                let mut searches = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let hits = db.search_scene(&query, &options);
                    check_consistent(&hits, &options);
                    searches += 1;
                }
                assert!(searches > 0, "searcher made progress");
            });
        }

        // --- serialisation reader: snapshots must always be complete,
        // parseable documents even while writers churn.
        {
            let db = db.clone();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (shards, _) = db.snapshot_shards();
                    for shard in &shards {
                        let json = shard.to_json().expect("serialises");
                        let back = ImageDatabase::from_json(&json).expect("parses back");
                        assert_eq!(back.len(), shard.len(), "no torn shard snapshot");
                    }
                }
            });
        }

        // --- inserter/remover: grows the db, trims its own inserts.
        {
            let db = db.clone();
            s.spawn(move || {
                let mut mine = Vec::new();
                for i in 64..256i64 {
                    let id = db
                        .insert_scene(&format!("w{i}"), &scene(i, i % 2 == 0))
                        .expect("insert");
                    mine.push(id);
                    if i % 3 == 0 {
                        let victim = mine.remove(mine.len() / 2);
                        db.remove(victim).expect("remove own insert");
                    }
                }
            });
        }

        // --- object editor: §3.2 add/remove on the stable seed rows.
        {
            let db = db.clone();
            s.spawn(move || {
                let class = ObjectClass::new("X");
                let mbr = Rect::new(0, 9, 0, 9).expect("rect");
                for round in 0..96usize {
                    let id = RecordId(round % 32);
                    db.add_object(id, &class, mbr).expect("add to seed record");
                    db.remove_object(id, &class, mbr).expect("remove again");
                }
            });
        }

        // Writers finish on their own; searchers poll until told to stop.
        // The scope guarantees the writers above completed before this
        // sleep ends only if they are fast — so give them a real window.
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    // Post-conditions: seed rows all alive, writer net growth applied,
    // and the §3.2 editor left no stray X objects behind.
    assert!(db.len() >= 64, "seed records survived");
    let x_query = SceneBuilder::new(200, 200)
        .object("X", (0, 9, 0, 9))
        .build()
        .expect("query");
    assert!(
        db.search_scene(&x_query, &QueryOptions::default())
            .is_empty(),
        "every add_object was matched by its remove_object"
    );
    let (shards, _) = db.snapshot_shards();
    let restored: usize = shards
        .iter()
        .map(|shard| {
            let json = shard.to_json().expect("final snapshot");
            ImageDatabase::from_json(&json).expect("parses").len()
        })
        .sum();
    assert_eq!(restored, db.len());
}
