//! Live-migration test harness for online resharding: a seeded corpus
//! is resharded while concurrent writers edit and readers search, and
//! at every migration checkpoint the ranked results must be
//! **bit-identical** (`f64::to_bits`, ties included) to a never-sharded
//! reference database holding the same records.

use be2d_db::{
    DbError, ImageDatabase, PrefilterMode, QueryOptions, RecordId, ReplicatedImageDatabase,
    Resharder, ShardedImageDatabase,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

fn scene(x: i64) -> Scene {
    SceneBuilder::new(100, 100)
        .object("A", (x, x + 10, 10, 20))
        .object("B", (50, 90, 50, 90))
        .build()
        .unwrap()
}

fn varied_scene(i: i64) -> Scene {
    // Three shapes so queries discriminate: position, extra class, size.
    let x = (i * 7) % 80;
    let mut builder = SceneBuilder::new(100, 100)
        .object("A", (x, x + 9, 5, 15))
        .object("B", (30, 60, 40, 70));
    if i % 3 == 0 {
        builder = builder.object("C", (x / 2, x / 2 + 5, 80, 90));
    }
    builder.build().unwrap()
}

fn query_battery() -> Vec<(Scene, QueryOptions)> {
    let default = QueryOptions::default();
    let prefiltered = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        ..QueryOptions::default()
    };
    let top5 = QueryOptions {
        top_k: Some(5),
        ..QueryOptions::default()
    };
    vec![
        (varied_scene(4), default.clone()),
        (varied_scene(9), prefiltered.clone()),
        (scene(12), top5),
        (varied_scene(21), default),
        (scene(3), prefiltered),
    ]
}

/// Asserts `db` ranks every battery query bit-identically to the
/// never-sharded `reference`.
fn assert_bit_identical(reference: &ImageDatabase, db: &ReplicatedImageDatabase, when: &str) {
    for (i, (query, options)) in query_battery().iter().enumerate() {
        let expect = reference.search_scene(query, options);
        let hits = db.search_scene(query, options).unwrap();
        assert_eq!(expect.len(), hits.len(), "{when}: query {i} length");
        for (rank, (a, b)) in expect.iter().zip(&hits).enumerate() {
            assert_eq!(a.id, b.id, "{when}: query {i} rank {rank}");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{when}: query {i} rank {rank} score"
            );
        }
    }
}

/// A writer thread that mirrors every edit into the reference database
/// and can be paused at a consistent point for checkpoint comparisons.
struct MirroredWriter {
    pause: AtomicBool,
    parked: AtomicBool,
    stop: AtomicBool,
    edits: AtomicUsize,
}

impl MirroredWriter {
    fn new() -> MirroredWriter {
        MirroredWriter {
            pause: AtomicBool::new(false),
            parked: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            edits: AtomicUsize::new(0),
        }
    }

    /// Blocks the writer at its next op boundary (both databases in the
    /// same state) and waits until it is parked.
    fn park(&self) {
        self.pause.store(true, Ordering::SeqCst);
        while !self.parked.load(Ordering::SeqCst) && !self.stop.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
    }

    fn resume(&self) {
        self.pause.store(false, Ordering::SeqCst);
    }

    /// The writer's main loop: insert, edit objects, and remove records
    /// on `db`, mirroring every successful op into `reference` so the
    /// pair is equal whenever the writer is parked.
    fn run(&self, db: &ReplicatedImageDatabase, reference: &Mutex<ImageDatabase>) {
        let class = ObjectClass::new("W");
        let mbr = Rect::new(0, 4, 0, 4).unwrap();
        let mut owned: Vec<RecordId> = Vec::new();
        let mut step = 0usize;
        while !self.stop.load(Ordering::SeqCst) {
            if self.pause.load(Ordering::SeqCst) {
                self.parked.store(true, Ordering::SeqCst);
                while self.pause.load(Ordering::SeqCst) && !self.stop.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                self.parked.store(false, Ordering::SeqCst);
                continue;
            }
            step += 1;
            match step % 5 {
                0 if owned.len() > 4 => {
                    let id = owned.remove(step % owned.len());
                    db.remove(id).unwrap();
                    reference.lock().unwrap().remove(id).unwrap();
                }
                1 | 2 if !owned.is_empty() => {
                    // §3.2 edit pair: add then remove one object, so the
                    // record's classes are unchanged at op boundaries.
                    let id = owned[step % owned.len()];
                    db.add_object(id, &class, mbr).unwrap();
                    reference
                        .lock()
                        .unwrap()
                        .add_object(id, &class, mbr)
                        .unwrap();
                    db.remove_object(id, &class, mbr).unwrap();
                    reference
                        .lock()
                        .unwrap()
                        .remove_object(id, &class, mbr)
                        .unwrap();
                }
                _ => {
                    let scene = varied_scene((step % 37) as i64);
                    let id = db.insert_scene(&format!("writer-{step}"), &scene).unwrap();
                    reference
                        .lock()
                        .unwrap()
                        .insert_symbolic_with_id(
                            id,
                            &format!("writer-{step}"),
                            be2d_core::SymbolicImage::from_scene(&scene),
                        )
                        .unwrap();
                    owned.push(id);
                }
            }
            self.edits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The headline satellite: reshard 2→4 and then 4→3 while a writer
/// thread edits, asserting bit-identical rankings at every migration
/// checkpoint against a never-sharded reference.
#[test]
fn mid_migration_rankings_match_reference_under_concurrent_writes() {
    let db = ReplicatedImageDatabase::with_topology(2, 2);
    let reference = Mutex::new(ImageDatabase::new());
    for i in 0..70 {
        let scene = varied_scene(i);
        let id = db.insert_scene(&format!("seed-{i}"), &scene).unwrap();
        reference
            .lock()
            .unwrap()
            .insert_symbolic_with_id(
                id,
                &format!("seed-{i}"),
                be2d_core::SymbolicImage::from_scene(&scene),
            )
            .unwrap();
    }

    let writer = MirroredWriter::new();
    let mut checkpoints = 0usize;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| writer.run(&db, &reference));

        for (target, batch) in [(4usize, 9usize), (3, 13)] {
            Resharder::new(&db)
                .batch_ids(batch)
                .run_with_checkpoints(target, |_| {
                    // Park the writer at an op boundary: both databases
                    // now hold exactly the same records.
                    writer.park();
                    let reference = reference.lock().unwrap();
                    assert_bit_identical(&reference, &db, &format!("reshard->{target}"));
                    drop(reference);
                    writer.resume();
                    // Let the writer land at least two edits before the
                    // next batch, so edits genuinely interleave with
                    // every stage of the migration.
                    let target_edits = writer.edits.load(Ordering::Relaxed) + 2;
                    let deadline =
                        std::time::Instant::now() + std::time::Duration::from_millis(200);
                    while writer.edits.load(Ordering::Relaxed) < target_edits
                        && std::time::Instant::now() < deadline
                    {
                        std::thread::yield_now();
                    }
                    checkpoints += 1;
                })
                .unwrap();
            assert_eq!(db.shard_count(), target);
        }

        writer.stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    });

    assert!(checkpoints >= 6, "checkpoints exercised: {checkpoints}");
    assert!(
        writer.edits.load(Ordering::Relaxed) > 10,
        "writer actually raced the migration: {} edits",
        writer.edits.load(Ordering::Relaxed)
    );
    // Quiesced end state: still bit-identical, and still serving.
    assert_bit_identical(&reference.lock().unwrap(), &db, "after both reshards");
    let next = db.insert_scene("post", &varied_scene(5)).unwrap();
    assert!(db.get(next).unwrap().is_some());
}

/// Fault-injection satellite: one replica per shard dies mid-reshard,
/// the migration completes without it, and the heal rebuilds each dead
/// replica **on the new topology**, exactly up to date with its peer.
#[test]
fn replica_killed_mid_reshard_heals_onto_new_topology() {
    let db = ReplicatedImageDatabase::with_topology(2, 3);
    for i in 0..60 {
        db.insert_scene(&format!("seed-{i}"), &varied_scene(i))
            .unwrap();
    }

    let mut injected = false;
    Resharder::new(&db)
        .batch_ids(7)
        .run_with_checkpoints(4, |progress| {
            if !injected && progress.active && progress.migrated_ids >= 14 {
                injected = true;
                // One replica per physical shard (old and new layout
                // shards alike) goes dark mid-migration.
                for shard in 0..4 {
                    db.fail_replica(shard, 1).unwrap();
                }
            }
            if injected && progress.active {
                // Writes keep landing on the healthy copies only.
                let id = db
                    .insert_scene(&format!("during-{}", progress.batches), &scene(9))
                    .unwrap();
                if progress.batches % 2 == 0 {
                    db.remove(id).unwrap();
                }
            }
        })
        .unwrap();
    assert!(injected, "the fault actually fired mid-migration");
    assert_eq!(db.shard_count(), 4);

    let health = db.replica_health();
    assert!(
        health.iter().all(|shard| !shard[1]),
        "failed replicas stayed out of rotation: {health:?}"
    );

    // Heal: every rebuilt replica must equal its shard's surviving copy
    // bit-for-bit — i.e. land on the *new* topology exactly up to date,
    // not on the pre-reshard layout it died under.
    for shard in 0..4 {
        db.rebuild_replica(shard, 1).unwrap();
        let primary = db.with_replica_read(shard, 0, Clone::clone);
        let rebuilt = db.with_replica_read(shard, 1, Clone::clone);
        assert_eq!(primary, rebuilt, "shard {shard} rebuilt copy diverges");
    }
    assert!(db.replica_health().iter().flatten().all(|&h| h));

    // And the healed copies serve: force reads onto replica 1 by
    // failing replica 0 and 2, then search.
    for shard in 0..4 {
        db.fail_replica(shard, 0).unwrap();
        db.fail_replica(shard, 2).unwrap();
    }
    let hits = db
        .search_scene(&varied_scene(4), &QueryOptions::default())
        .unwrap();
    assert!(!hits.is_empty());
}

/// Readers hammer the database throughout a grow and a shrink; every
/// result must be duplicate-free and globally ordered (score desc, id
/// asc) — the observable fingerprint of exactly-once scatter coverage.
#[test]
fn concurrent_searches_stay_consistent_through_grow_and_shrink() {
    let db = ReplicatedImageDatabase::with_topology(3, 2);
    for i in 0..90 {
        db.insert_scene(&format!("seed-{i}"), &varied_scene(i))
            .unwrap();
    }

    let stop = AtomicBool::new(false);
    let searches = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for reader in 0..3 {
            let db = db.clone();
            let stop = &stop;
            let searches = &searches;
            scope.spawn(move || {
                let options = QueryOptions::default();
                let mut i = reader;
                while !stop.load(Ordering::Relaxed) {
                    let hits = db
                        .search_scene(&varied_scene((i % 30) as i64), &options)
                        .unwrap();
                    let mut seen = std::collections::HashSet::new();
                    for window in hits.windows(2) {
                        let ordered = window[0].score > window[1].score
                            || (window[0].score == window[1].score && window[0].id < window[1].id);
                        assert!(ordered, "ranking order broke mid-reshard");
                    }
                    for hit in &hits {
                        assert!(seen.insert(hit.id), "duplicate id {} in result", hit.id);
                    }
                    searches.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        let writer_db = db.clone();
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let id = writer_db
                    .insert_scene(&format!("churn-{i}"), &varied_scene((i % 23) as i64))
                    .unwrap();
                if i.is_multiple_of(2) {
                    writer_db.remove(id).unwrap();
                }
                i += 1;
                std::thread::yield_now();
            }
        });

        // Each checkpoint waits until at least one search completed
        // since the previous batch, so the scatter path provably
        // overlaps every stage of both migrations.
        let wait_for_a_search = |_: &be2d_db::ReshardProgress| {
            let target = searches.load(Ordering::Relaxed) + 1;
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
            while searches.load(Ordering::Relaxed) < target && std::time::Instant::now() < deadline
            {
                std::thread::yield_now();
            }
        };
        Resharder::new(&db)
            .batch_ids(11)
            .run_with_checkpoints(8, wait_for_a_search)
            .unwrap();
        Resharder::new(&db)
            .batch_ids(17)
            .run_with_checkpoints(2, wait_for_a_search)
            .unwrap();
        stop.store(true, Ordering::SeqCst);
    });

    assert_eq!(db.shard_count(), 2);
    assert!(
        searches.load(Ordering::Relaxed) > 10,
        "readers actually overlapped the migration: {} searches",
        searches.load(Ordering::Relaxed)
    );
    // All seed records survived the round trip.
    for i in 0..90 {
        assert_eq!(
            db.get(RecordId(i)).unwrap().unwrap().name,
            format!("seed-{i}"),
            "seed record {i}"
        );
    }
}

/// A snapshot taken mid-migration carries the routing epoch (manifest
/// v4) and restores exactly — into replicated databases of any
/// topology and into the sharded database alike.
#[test]
fn mid_migration_snapshot_restores_exactly() {
    let dir = std::env::temp_dir().join(format!("be2d_reshard_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.json");

    let db = ReplicatedImageDatabase::with_topology(4, 2);
    for i in 0..50 {
        db.insert_scene(&format!("seed-{i}"), &varied_scene(i))
            .unwrap();
    }
    db.remove(RecordId(17)).unwrap();

    let mut saved_mid = false;
    Resharder::new(&db)
        .batch_ids(6)
        .run_with_checkpoints(6, |progress| {
            if !saved_mid && progress.active && progress.migrated_ids >= 18 {
                saved_mid = true;
                assert_eq!(db.save_snapshot(&path).unwrap(), 49);
            }
        })
        .unwrap();
    assert!(saved_mid, "snapshot was taken mid-migration");

    let manifest = std::fs::read_to_string(&path).unwrap();
    assert!(manifest.contains("\"version\":4"), "{manifest}");
    assert!(manifest.contains("\"old_shards\":4"), "{manifest}");
    assert!(manifest.contains("\"new_shards\":6"), "{manifest}");

    // The restored corpus equals the migrating corpus at save time
    // (contents were quiescent, so that is the full seed set).
    for (shards, replicas) in [(1usize, 1usize), (5, 2), (6, 1)] {
        let back = ReplicatedImageDatabase::with_topology(shards, replicas);
        assert_eq!(back.restore_from(&path).unwrap(), 49, "{shards}x{replicas}");
        for i in 0..50usize {
            match (i, back.get(RecordId(i)).unwrap()) {
                (17, found) => assert!(found.is_none()),
                (_, Some(record)) => assert_eq!(record.name, format!("seed-{i}")),
                (_, None) => panic!("record {i} lost restoring into {shards}x{replicas}"),
            }
        }
        assert_eq!(
            back.insert_scene("next", &scene(0)).unwrap(),
            RecordId(50),
            "id counter heals across a mid-migration restore"
        );
    }
    let sharded = ShardedImageDatabase::with_shards(3);
    assert_eq!(sharded.restore_from(&path).unwrap(), 49);
    assert_eq!(sharded.get(RecordId(3)).unwrap().name, "seed-3");
    std::fs::remove_dir_all(&dir).ok();
}

/// Degenerate topologies: 1→N and N→1 round-trip with full fidelity.
#[test]
fn reshard_to_and_from_a_single_shard() {
    let db = ReplicatedImageDatabase::with_topology(1, 1);
    for i in 0..25 {
        db.insert_scene(&format!("img-{i}"), &varied_scene(i))
            .unwrap();
    }
    let reference = {
        let mut reference = ImageDatabase::new();
        for i in 0..25 {
            reference
                .insert_scene(&format!("img-{i}"), &varied_scene(i))
                .unwrap();
        }
        reference
    };

    Resharder::new(&db).batch_ids(3).run(6).unwrap();
    assert_eq!(db.shard_count(), 6);
    assert_bit_identical(&reference, &db, "1->6");

    Resharder::new(&db).batch_ids(4).run(1).unwrap();
    assert_eq!(db.shard_count(), 1);
    assert_bit_identical(&reference, &db, "6->1");
    assert_eq!(db.len(), 25);

    // Clamped and invalid targets.
    let report = Resharder::new(&db).run(0).unwrap();
    assert_eq!(report.to, 1, "0 clamps to 1 (a no-op here)");
    assert!(matches!(
        db.remove(RecordId(99)),
        Err(DbError::UnknownRecord { id: 99 })
    ));
}
