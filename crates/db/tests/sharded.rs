//! Scatter-gather equivalence: `ShardedImageDatabase::search` must
//! return the **bit-identical** ranked ids and scores of a single-shard
//! [`ImageDatabase`] holding the same records — for every shard count,
//! every option combination, and including score ties — plus a
//! concurrent reader/writer stress test over the sharded topology.

use be2d_db::{
    CandidateSource, ImageDatabase, Parallelism, PrefilterMode, QueryOptions, RecordId,
    ShardedImageDatabase,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};

/// Tiny deterministic generator (xorshift64*), so the corpus is seeded
/// without pulling a rand dependency into the db crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> i64 {
        i64::try_from(self.next() % n).expect("small bound")
    }
}

const CLASSES: [&str; 6] = ["A", "B", "C", "D", "F", "G"];

/// A random scene with 2–5 objects over a 6-class alphabet. Positions
/// and sizes vary enough that scores spread over (0, 1].
fn random_scene(rng: &mut Lcg) -> Scene {
    let objects = 2 + rng.below(4);
    let mut builder = SceneBuilder::new(256, 256);
    for _ in 0..objects {
        let class = CLASSES[usize::try_from(rng.below(6)).unwrap()];
        let xb = rng.below(200);
        let yb = rng.below(200);
        let w = 8 + rng.below(48);
        let h = 8 + rng.below(48);
        builder = builder.object(class, (xb, xb + w, yb, yb + h));
    }
    builder.build().expect("generated scene is valid")
}

/// The seeded corpus: mostly unique scenes plus deliberate duplicates
/// (every 5th scene repeats an earlier one) so ranked ties are common
/// and the cross-shard tie-break is genuinely exercised.
fn corpus(seed: u64, n: usize) -> Vec<Scene> {
    let mut rng = Lcg(seed | 1);
    let mut scenes: Vec<Scene> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 5 == 4 {
            let back = usize::try_from(rng.below(i as u64)).unwrap();
            scenes.push(scenes[back].clone());
        } else {
            scenes.push(random_scene(&mut rng));
        }
    }
    scenes
}

/// Applies the same mutation history (inserts, removals, object edits)
/// to a single-shard and an N-shard database, so both hold identical
/// records under identical global ids.
fn build_pair(scenes: &[Scene], shards: usize) -> (ImageDatabase, ShardedImageDatabase) {
    let mut single = ImageDatabase::new();
    let sharded = ShardedImageDatabase::with_shards(shards);
    for (i, scene) in scenes.iter().enumerate() {
        let a = single.insert_scene(&format!("img{i}"), scene).unwrap();
        let b = sharded.insert_scene(&format!("img{i}"), scene).unwrap();
        assert_eq!(a, b, "id assignment must match the single-shard path");
    }
    // A few removals and §3.2 edits keep dead slots and refreshed
    // signatures in the picture.
    for i in [3usize, 11, 17] {
        if i < scenes.len() {
            single.remove(RecordId(i)).unwrap();
            sharded.remove(RecordId(i)).unwrap();
        }
    }
    let extra = Rect::new(240, 250, 240, 250).unwrap();
    for i in [1usize, 8] {
        if i < scenes.len() {
            single
                .add_object(RecordId(i), &ObjectClass::new("Z"), extra)
                .unwrap();
            sharded
                .add_object(RecordId(i), &ObjectClass::new("Z"), extra)
                .unwrap();
        }
    }
    (single, sharded)
}

fn option_variants() -> Vec<(&'static str, QueryOptions)> {
    vec![
        ("default", QueryOptions::default()),
        (
            "unbounded, no prefilter",
            QueryOptions {
                top_k: None,
                min_score: 0.0,
                prefilter: PrefilterMode::None,
                ..QueryOptions::default()
            },
        ),
        (
            "all-classes via index",
            QueryOptions {
                top_k: None,
                prefilter: PrefilterMode::AllClasses,
                candidates: CandidateSource::ClassIndex,
                ..QueryOptions::default()
            },
        ),
        (
            "serving preset",
            QueryOptions {
                top_k: Some(25),
                ..QueryOptions::serving()
            },
        ),
        (
            "transform invariant, floored",
            QueryOptions {
                min_score: 0.35,
                top_k: None,
                ..QueryOptions::transform_invariant()
            },
        ),
        (
            "forced parallel scan",
            QueryOptions {
                parallel: Parallelism::On,
                top_k: Some(40),
                ..QueryOptions::default()
            },
        ),
    ]
}

#[test]
fn sharded_ranking_is_bit_identical_to_single_shard() {
    let scenes = corpus(0xBE2D, 72);
    let queries: Vec<Scene> = corpus(0x517C, 12);

    for shards in [1usize, 2, 4, 8] {
        let (single, sharded) = build_pair(&scenes, shards);
        assert_eq!(single.len(), sharded.len());
        for (label, options) in option_variants() {
            for (qi, query) in queries.iter().enumerate() {
                let expect = single.search_scene(query, &options);
                let got = sharded.search_scene(query, &options);
                assert_eq!(
                    expect.len(),
                    got.len(),
                    "{shards} shards, options {label}, query {qi}"
                );
                for (a, b) in expect.iter().zip(&got) {
                    assert_eq!(a.id, b.id, "{shards} shards, {label}, query {qi}");
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "score must be bit-identical: {shards} shards, {label}, query {qi}"
                    );
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.transform, b.transform);
                }
            }
        }
    }
}

#[test]
fn duplicate_corpus_ties_preserve_global_order() {
    // An all-duplicates corpus: every record scores identically, so the
    // entire ranking is one big tie and ordering is purely the id
    // tie-break — the hardest case for a distributed merge.
    let mut rng = Lcg(99);
    let scene = random_scene(&mut rng);
    for shards in [2usize, 4, 8] {
        let sharded = ShardedImageDatabase::with_shards(shards);
        let mut single = ImageDatabase::new();
        for i in 0..33 {
            single.insert_scene(&format!("dup{i}"), &scene).unwrap();
            sharded.insert_scene(&format!("dup{i}"), &scene).unwrap();
        }
        let options = QueryOptions {
            top_k: None,
            ..QueryOptions::default()
        };
        let expect = single.search_scene(&scene, &options);
        let got = sharded.search_scene(&scene, &options);
        assert_eq!(expect.len(), 33);
        assert_eq!(got.len(), 33);
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(a.id, b.id, "{shards} shards, position {i}");
            assert_eq!(a.id, RecordId(i), "pure ties order by id");
        }
    }
}

#[test]
fn concurrent_writers_on_other_shards_during_search() {
    let scenes = corpus(0xABCD, 64);
    let sharded = ShardedImageDatabase::with_shards(4);
    for (i, scene) in scenes.iter().enumerate() {
        sharded.insert_scene(&format!("img{i}"), scene).unwrap();
    }
    let queries = corpus(0x1234, 6);
    let options = QueryOptions {
        top_k: Some(20),
        parallel: Parallelism::Auto,
        ..QueryOptions::default()
    };

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for reader in 0..4 {
            let db = sharded.clone();
            let queries = &queries;
            let options = &options;
            readers.push(scope.spawn(move || {
                let mut total = 0usize;
                for round in 0..40 {
                    let hits = db.search_scene(&queries[(reader + round) % queries.len()], options);
                    // Whatever interleaving the writers produce, every
                    // observed result set must be internally coherent.
                    assert!(hits.len() <= 20);
                    let mut seen = std::collections::HashSet::new();
                    for window in hits.windows(2) {
                        assert!(
                            window[0].score > window[1].score
                                || (window[0].score == window[1].score
                                    && window[0].id < window[1].id),
                            "global order holds under concurrent writes"
                        );
                    }
                    for hit in &hits {
                        assert!(seen.insert(hit.id), "duplicate id {}", hit.id);
                    }
                    total += hits.len();
                }
                total
            }));
        }
        // Two writers churn inserts/removals; their writes land on
        // whichever shard owns the freshly assigned id, so all four
        // shards see write traffic while searches are in flight.
        for writer in 0..2u64 {
            let db = sharded.clone();
            let scenes = &scenes;
            scope.spawn(move || {
                let mut rng = Lcg(writer * 7919 + 13);
                for i in 0..60 {
                    let scene = &scenes[usize::try_from(rng.below(scenes.len() as u64)).unwrap()];
                    let id = db.insert_scene(&format!("w{writer}-{i}"), scene).unwrap();
                    if i % 3 == 0 {
                        db.remove(id).unwrap();
                    }
                }
            });
        }
        for handle in readers {
            assert!(handle.join().expect("reader panicked") > 0);
        }
    });
    // 2 writers × 60 inserts, a third removed again.
    assert_eq!(sharded.len(), 64 + 120 - 40);
}

#[test]
fn inserts_racing_restore_never_fail_or_reuse_ids() {
    let scenes = corpus(0xD00D, 24);
    let dir = std::env::temp_dir().join(format!("be2d_shard_race_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.json");

    // Snapshot a populated database, then restore it repeatedly into a
    // *fresh* database (id counter at 0) while writer threads insert:
    // every insert must succeed with a unique id even when its
    // pre-allocated slot is suddenly occupied by restored records.
    let source = ShardedImageDatabase::with_shards(4);
    for (i, scene) in scenes.iter().enumerate() {
        source.insert_scene(&format!("img{i}"), scene).unwrap();
    }
    source.save_snapshot(&path).unwrap();

    for round in 0..8 {
        let db = ShardedImageDatabase::with_shards(4);
        let ids = std::thread::scope(|scope| {
            let restorer = {
                let db = db.clone();
                let path = path.clone();
                scope.spawn(move || db.restore_from(&path).unwrap())
            };
            let writers: Vec<_> = (0..3)
                .map(|w| {
                    let db = db.clone();
                    let scene = &scenes[w];
                    scope.spawn(move || {
                        (0..12)
                            .map(|i| {
                                db.insert_scene(&format!("r{round}-w{w}-{i}"), scene)
                                    .unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            assert_eq!(restorer.join().expect("restore"), 24);
            writers
                .into_iter()
                .flat_map(|h| h.join().expect("writer"))
                .collect::<Vec<_>>()
        });
        let unique: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "no id handed out twice");
        // An insert either linearised before the restore (its slot now
        // holds a restored "img*" record, or nothing) or after it (its
        // own record survives). Nothing else may occupy a handed-out id.
        for id in ids {
            if let Some(record) = db.get(id) {
                assert!(
                    record.name.starts_with(&format!("r{round}-w"))
                        || record.name.starts_with("img"),
                    "unexpected record {} under {id:?}",
                    record.name
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_snapshot_survives_topology_change_with_identical_ranking() {
    let scenes = corpus(0xFEED, 40);
    let (single, sharded) = build_pair(&scenes, 4);
    let dir = std::env::temp_dir().join(format!("be2d_shard_equiv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.json");
    sharded.save_snapshot(&path).unwrap();

    let restored = ShardedImageDatabase::with_shards(2);
    restored.restore_from(&path).unwrap();
    let options = QueryOptions {
        top_k: None,
        prefilter: PrefilterMode::None,
        ..QueryOptions::default()
    };
    for query in corpus(0x77, 5) {
        let expect = single.search_scene(&query, &options);
        let got = restored.search_scene(&query, &options);
        assert_eq!(expect.len(), got.len());
        for (a, b) in expect.iter().zip(&got) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
