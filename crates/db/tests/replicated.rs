//! Replication equivalence and fault tolerance:
//! `ReplicatedImageDatabase::search` must return the **bit-identical**
//! ranked ids and scores of the unreplicated ranking for every replica
//! count — while replicas fail, rebuild, and rejoin under concurrent
//! write traffic.

use be2d_db::{
    ImageDatabase, Parallelism, PrefilterMode, QueryOptions, RecordId, ReplicatedImageDatabase,
};
use be2d_geometry::{ObjectClass, Rect, Scene, SceneBuilder};

/// Tiny deterministic generator (xorshift64*), matching the sharded
/// equivalence suite.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> i64 {
        i64::try_from(self.next() % n).expect("small bound")
    }
}

const CLASSES: [&str; 6] = ["A", "B", "C", "D", "F", "G"];

fn random_scene(rng: &mut Lcg) -> Scene {
    let objects = 2 + rng.below(4);
    let mut builder = SceneBuilder::new(256, 256);
    for _ in 0..objects {
        let class = CLASSES[usize::try_from(rng.below(6)).unwrap()];
        let xb = rng.below(200);
        let yb = rng.below(200);
        let w = 8 + rng.below(48);
        let h = 8 + rng.below(48);
        builder = builder.object(class, (xb, xb + w, yb, yb + h));
    }
    builder.build().expect("generated scene is valid")
}

/// Mostly unique scenes plus deliberate duplicates (every 5th repeats
/// an earlier one) so ranked ties are common.
fn corpus(seed: u64, n: usize) -> Vec<Scene> {
    let mut rng = Lcg(seed | 1);
    let mut scenes: Vec<Scene> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 5 == 4 {
            let back = usize::try_from(rng.below(i as u64)).unwrap();
            scenes.push(scenes[back].clone());
        } else {
            scenes.push(random_scene(&mut rng));
        }
    }
    scenes
}

/// Applies the same mutation history to a single unreplicated database
/// and a shards×replicas topology, so both hold identical records.
fn build_pair(
    scenes: &[Scene],
    shards: usize,
    replicas: usize,
) -> (ImageDatabase, ReplicatedImageDatabase) {
    let mut single = ImageDatabase::new();
    let replicated = ReplicatedImageDatabase::with_topology(shards, replicas);
    for (i, scene) in scenes.iter().enumerate() {
        let a = single.insert_scene(&format!("img{i}"), scene).unwrap();
        let b = replicated.insert_scene(&format!("img{i}"), scene).unwrap();
        assert_eq!(a, b, "id assignment must match the unreplicated path");
    }
    for i in [3usize, 11, 17] {
        if i < scenes.len() {
            single.remove(RecordId(i)).unwrap();
            replicated.remove(RecordId(i)).unwrap();
        }
    }
    let extra = Rect::new(240, 250, 240, 250).unwrap();
    for i in [1usize, 8] {
        if i < scenes.len() {
            single
                .add_object(RecordId(i), &ObjectClass::new("Z"), extra)
                .unwrap();
            replicated
                .add_object(RecordId(i), &ObjectClass::new("Z"), extra)
                .unwrap();
        }
    }
    (single, replicated)
}

fn option_variants() -> Vec<(&'static str, QueryOptions)> {
    vec![
        ("default", QueryOptions::default()),
        (
            "unbounded, no prefilter",
            QueryOptions {
                top_k: None,
                min_score: 0.0,
                prefilter: PrefilterMode::None,
                ..QueryOptions::default()
            },
        ),
        (
            "serving preset",
            QueryOptions {
                top_k: Some(25),
                ..QueryOptions::serving()
            },
        ),
        (
            "transform invariant, floored",
            QueryOptions {
                min_score: 0.35,
                top_k: None,
                ..QueryOptions::transform_invariant()
            },
        ),
    ]
}

#[test]
fn replicated_ranking_is_bit_identical_to_unreplicated() {
    let scenes = corpus(0xBE2D, 60);
    let queries: Vec<Scene> = corpus(0x517C, 10);

    for replicas in [1usize, 2, 3] {
        let (single, replicated) = build_pair(&scenes, 4, replicas);
        assert_eq!(single.len(), replicated.len());
        for (label, options) in option_variants() {
            for (qi, query) in queries.iter().enumerate() {
                let expect = single.search_scene(query, &options);
                let got = replicated.search_scene(query, &options).unwrap();
                assert_eq!(
                    expect.len(),
                    got.len(),
                    "{replicas} replicas, options {label}, query {qi}"
                );
                for (a, b) in expect.iter().zip(&got) {
                    assert_eq!(a.id, b.id, "{replicas} replicas, {label}, query {qi}");
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "score must be bit-identical: {replicas} replicas, {label}, query {qi}"
                    );
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.transform, b.transform);
                }
            }
        }
    }
}

#[test]
fn ranking_is_identical_with_replicas_failed() {
    // With one replica per shard failed, every search still answers
    // from the survivors — with the exact same ranked result, because
    // healthy replicas hold identical records.
    let scenes = corpus(0xFACE, 48);
    let (single, replicated) = build_pair(&scenes, 3, 2);
    for shard in 0..3 {
        replicated.fail_replica(shard, shard % 2).unwrap();
    }
    let queries: Vec<Scene> = corpus(0x99, 8);
    let options = QueryOptions {
        top_k: None,
        ..QueryOptions::default()
    };
    // Repeat so the round-robin picker cycles over its (reduced) choices.
    for round in 0..4 {
        for query in &queries {
            let expect = single.search_scene(query, &options);
            let got = replicated.search_scene(query, &options).unwrap();
            assert_eq!(expect.len(), got.len(), "round {round}");
            for (a, b) in expect.iter().zip(&got) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }
}

#[test]
fn replica_loss_under_concurrent_writes() {
    // Readers, writers, and a fault injector all run concurrently:
    // searches must stay internally coherent and never error while a
    // replica is failed and later rebuilt mid-traffic.
    let scenes = corpus(0xABCD, 48);
    let db = ReplicatedImageDatabase::with_topology(2, 3);
    for (i, scene) in scenes.iter().enumerate() {
        db.insert_scene(&format!("img{i}"), scene).unwrap();
    }
    let queries = corpus(0x1234, 6);
    let options = QueryOptions {
        top_k: Some(20),
        parallel: Parallelism::Auto,
        ..QueryOptions::default()
    };

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for reader in 0..4 {
            let db = db.clone();
            let queries = &queries;
            let options = &options;
            readers.push(scope.spawn(move || {
                let mut total = 0usize;
                for round in 0..40 {
                    let hits = db
                        .search_scene(&queries[(reader + round) % queries.len()], options)
                        .unwrap();
                    assert!(hits.len() <= 20);
                    let mut seen = std::collections::HashSet::new();
                    for window in hits.windows(2) {
                        assert!(
                            window[0].score > window[1].score
                                || (window[0].score == window[1].score
                                    && window[0].id < window[1].id),
                            "global order holds under faults + writes"
                        );
                    }
                    for hit in &hits {
                        assert!(seen.insert(hit.id), "duplicate id {}", hit.id);
                    }
                    total += hits.len();
                }
                total
            }));
        }
        // Two writers churn inserts/removals across both shards.
        for writer in 0..2u64 {
            let db = db.clone();
            let scenes = &scenes;
            scope.spawn(move || {
                let mut rng = Lcg(writer * 7919 + 13);
                for i in 0..60 {
                    let scene = &scenes[usize::try_from(rng.below(scenes.len() as u64)).unwrap()];
                    let id = db.insert_scene(&format!("w{writer}-{i}"), scene).unwrap();
                    if i % 3 == 0 {
                        db.remove(id).unwrap();
                    }
                }
            });
        }
        // The fault injector fails and rebuilds replicas in a rolling
        // pattern while the traffic above is in flight.
        {
            let db = db.clone();
            scope.spawn(move || {
                for round in 0..12 {
                    let shard = round % 2;
                    let replica = round % 3;
                    if db.fail_replica(shard, replica).is_ok() {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        db.rebuild_replica(shard, replica).unwrap();
                    }
                }
            });
        }
        for handle in readers {
            assert!(handle.join().expect("reader panicked") > 0);
        }
    });
    // 2 writers × 60 inserts, a third removed again.
    assert_eq!(db.len(), 48 + 120 - 40);

    // After the dust settles, rebuild anything still out of rotation;
    // every replica of a shard must then be byte-identical.
    for shard in 0..2 {
        for replica in 0..3 {
            db.rebuild_replica(shard, replica).unwrap();
        }
        let reference = db.with_replica_read(shard, 0, Clone::clone);
        for replica in 1..3 {
            let copy = db.with_replica_read(shard, replica, Clone::clone);
            assert_eq!(reference, copy, "shard {shard} replica {replica} diverged");
        }
    }
}

#[test]
fn rebuild_then_rejoin_is_consistent() {
    let scenes = corpus(0xD00D, 30);
    let (single, replicated) = build_pair(&scenes, 2, 2);

    // Fail one replica per shard, then mutate: the failed copies stay
    // frozen while the survivors absorb every write.
    replicated.fail_replica(0, 1).unwrap();
    replicated.fail_replica(1, 0).unwrap();
    let mut single = single;
    let late = corpus(0xEE, 6);
    for (i, scene) in late.iter().enumerate() {
        let a = single.insert_scene(&format!("late{i}"), scene).unwrap();
        let b = replicated.insert_scene(&format!("late{i}"), scene).unwrap();
        assert_eq!(a, b);
    }
    single.remove(RecordId(5)).unwrap();
    replicated.remove(RecordId(5)).unwrap();

    // Rebuild + rejoin, then prove the rejoined replicas serve the
    // exact unreplicated ranking (force reads onto them by failing the
    // formerly healthy copies).
    replicated.rebuild_replica(0, 1).unwrap();
    replicated.rebuild_replica(1, 0).unwrap();
    replicated.fail_replica(0, 0).unwrap();
    replicated.fail_replica(1, 1).unwrap();

    let options = QueryOptions {
        top_k: None,
        ..QueryOptions::default()
    };
    for query in corpus(0x77, 6) {
        let expect = single.search_scene(&query, &options);
        let got = replicated.search_scene(&query, &options).unwrap();
        assert_eq!(expect.len(), got.len());
        for (a, b) in expect.iter().zip(&got) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
    assert_eq!(replicated.len(), single.len());
}
