//! Property-based tests of the 2D BE-string model invariants.
//!
//! Every paper-level guarantee is exercised on randomised scenes:
//! storage bounds (§3.1), conversion/maintenance agreement (§3.2), the
//! modified-LCS contracts (§4), and the transform-commutation law (§4).

use be2d_core::{
    be_lcs_length, convert_scene, exact_constrained_lcs_length, similarity, similarity_with,
    transformed, BeString, BeSymbol, LcsTable, Normalization, SimilarityConfig, SymbolicImage,
};
use be2d_geometry::{ObjectClass, Rect, Scene, Transform};
use proptest::prelude::*;

const CLASS_NAMES: [&str; 6] = ["A", "B", "C", "D", "F", "G"];

fn arb_rect(w: i64, h: i64) -> impl Strategy<Value = Rect> {
    (0..w, 0..h).prop_flat_map(move |(xb, yb)| {
        (1..=w - xb, 1..=h - yb)
            .prop_map(move |(xw, yw)| Rect::new(xb, xb + xw, yb, yb + yw).expect("non-empty"))
    })
}

fn arb_scene(max_objects: usize) -> impl Strategy<Value = Scene> {
    (8i64..100, 8i64..100).prop_flat_map(move |(w, h)| {
        prop::collection::vec((arb_rect(w, h), 0..CLASS_NAMES.len()), 0..max_objects).prop_map(
            move |objs| {
                let mut scene = Scene::new(w, h).expect("positive frame");
                for (rect, class_idx) in objs {
                    scene
                        .add(ObjectClass::new(CLASS_NAMES[class_idx]), rect)
                        .expect("rect generated in-frame");
                }
                scene
            },
        )
    })
}

fn is_subsequence(needle: &[BeSymbol], hay: &[BeSymbol]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

proptest! {
    /// §3.1: per-axis storage is between 2n+1 and 4n+1 symbols.
    #[test]
    fn storage_bounds(scene in arb_scene(12)) {
        let n = scene.len();
        let s = convert_scene(&scene);
        for axis in [s.x(), s.y()] {
            if n == 0 {
                prop_assert_eq!(axis.len(), 1);
            } else {
                prop_assert!(axis.len() > 2 * n, "len {} < 2n+1", axis.len());
                prop_assert!(axis.len() <= 4 * n + 1, "len {} > 4n+1", axis.len());
            }
            prop_assert_eq!(axis.object_count(), n);
            // revalidate through the checked constructor
            prop_assert!(BeString::new(axis.symbols().to_vec()).is_ok());
        }
    }

    /// Conversion output survives the textual round-trip.
    #[test]
    fn display_parse_roundtrip(scene in arb_scene(10)) {
        let s = convert_scene(&scene);
        let x: BeString = s.x().to_string().parse().expect("parse back");
        let y: BeString = s.y().to_string().parse().expect("parse back");
        prop_assert_eq!(&x, s.x());
        prop_assert_eq!(&y, s.y());
    }

    /// §3.2: inserting the objects one at a time through the annotated
    /// string produces exactly the batch conversion.
    #[test]
    fn incremental_equals_batch(scene in arb_scene(10)) {
        let batch = SymbolicImage::from_scene(&scene);
        let mut incremental = SymbolicImage::empty(scene.width(), scene.height())
            .expect("valid frame");
        for obj in &scene {
            incremental.add_object(obj.class(), obj.mbr()).expect("fits");
        }
        prop_assert_eq!(&batch, &incremental);
        prop_assert_eq!(batch.to_be_string_2d(), incremental.to_be_string_2d());
    }

    /// §3.2: removing every object again (in arbitrary order) restores the
    /// empty picture, with a valid string at every intermediate step.
    #[test]
    fn remove_all_restores_empty(scene in arb_scene(8), seed in any::<u64>()) {
        let mut img = SymbolicImage::from_scene(&scene);
        let mut objs: Vec<_> = scene.iter().cloned().collect();
        // deterministic shuffle from the seed
        let mut state = seed;
        for i in (1..objs.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            objs.swap(i, j);
        }
        for obj in objs {
            img.remove_object(obj.class(), obj.mbr()).expect("object present");
            let s = img.to_be_string_2d();
            prop_assert!(BeString::new(s.x().symbols().to_vec()).is_ok());
            prop_assert!(BeString::new(s.y().symbols().to_vec()).is_ok());
        }
        prop_assert_eq!(img.object_count(), 0);
    }

    /// §4 LCS: length contracts — identity, symmetry, upper bound.
    #[test]
    fn lcs_length_contracts(a in arb_scene(8), b in arb_scene(8)) {
        let sa = convert_scene(&a);
        let sb = convert_scene(&b);
        let (qa, qb) = (sa.x(), sb.x());
        prop_assert_eq!(be_lcs_length(qa, qa), qa.len(), "self LCS is the string itself");
        prop_assert_eq!(be_lcs_length(qa, qb), be_lcs_length(qb, qa), "symmetry");
        prop_assert!(be_lcs_length(qa, qb) <= qa.len().min(qb.len()), "bounded");
    }

    /// §4 LCS: the reconstructed string is a common subsequence of both
    /// inputs, has the reported length, and never contains two adjacent
    /// dummy objects; the recursive and iterative reconstructions agree.
    #[test]
    fn lcs_reconstruction_contracts(a in arb_scene(8), b in arb_scene(8)) {
        for (qa, qb) in [
            (convert_scene(&a).x().clone(), convert_scene(&b).x().clone()),
            (convert_scene(&a).y().clone(), convert_scene(&b).y().clone()),
        ] {
            let t = LcsTable::build(&qa, &qb);
            let lcs = t.lcs_string();
            prop_assert_eq!(lcs.len(), t.length());
            prop_assert!(is_subsequence(&lcs, qa.symbols()));
            prop_assert!(is_subsequence(&lcs, qb.symbols()));
            prop_assert!(
                lcs.windows(2).all(|w| !(w[0].is_dummy() && w[1].is_dummy())),
                "adjacent dummies in {:?}", lcs
            );
            prop_assert_eq!(t.lcs_string_recursive(), lcs);
        }
    }

    /// §4 LCS: Algorithm 2's signed-table heuristic never *exceeds* the
    /// exact constrained LCS, and both agree on self-matches.
    #[test]
    fn paper_dp_bounded_by_exact_reference(a in arb_scene(8), b in arb_scene(8)) {
        let sa = convert_scene(&a);
        let sb = convert_scene(&b);
        for (qa, qb) in [(sa.x(), sb.x()), (sa.y(), sb.y())] {
            let paper = be_lcs_length(qa, qb);
            let exact = exact_constrained_lcs_length(qa, qb);
            prop_assert!(paper <= exact, "paper {} > exact {}", paper, exact);
            prop_assert_eq!(exact_constrained_lcs_length(qa, qa), qa.len());
        }
    }

    /// §4: similarity scores live in [0, 1]; self-similarity is 1.
    #[test]
    fn similarity_contracts(a in arb_scene(8), b in arb_scene(8)) {
        let sa = convert_scene(&a);
        let sb = convert_scene(&b);
        let sim = similarity(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&sim.score), "score {}", sim.score);
        prop_assert!((similarity(&sa, &sa).score - 1.0).abs() < 1e-12);
        // Dice is symmetric
        let sim_rev = similarity(&sb, &sa);
        prop_assert!((sim.score - sim_rev.score).abs() < 1e-12);
        // query coverage of a string against itself is also 1
        let cfg = SimilarityConfig {
            normalization: Normalization::QueryCoverage,
            ..SimilarityConfig::default()
        };
        prop_assert!((similarity_with(&sb, &sb, &cfg).score - 1.0).abs() < 1e-12);
    }

    /// §4: a query made of a subset of the image's objects reaches full
    /// query coverage — the partial-match behaviour the paper claims.
    #[test]
    fn subset_query_full_coverage(scene in arb_scene(8), keep in any::<u64>()) {
        prop_assume!(!scene.is_empty());
        let mut query_scene = Scene::new(scene.width(), scene.height()).expect("frame");
        for (i, obj) in scene.iter().enumerate() {
            if keep & (1 << (i % 64)) != 0 {
                query_scene.add(obj.class().clone(), obj.mbr()).expect("fits");
            }
        }
        // keep at least one object to avoid the trivial case
        prop_assume!(!query_scene.is_empty());
        let cfg = SimilarityConfig {
            normalization: Normalization::QueryCoverage,
            count_dummies: false,
            ..SimilarityConfig::default()
        };
        let sim = similarity_with(
            &convert_scene(&query_scene),
            &convert_scene(&scene),
            &cfg,
        );
        prop_assert!(
            (sim.score - 1.0).abs() < 1e-12,
            "subset query should be fully covered, got {} (x {}, y {})",
            sim.score, sim.x.score, sim.y.score
        );
    }

    /// §4: symbolic transforms commute with geometric transforms for all
    /// eight group elements, on arbitrary scenes.
    #[test]
    fn transform_commutes(scene in arb_scene(8)) {
        let s = convert_scene(&scene);
        for t in Transform::ALL {
            let symbolic = transformed(&s, t);
            let geometric = convert_scene(&scene.transformed(t));
            prop_assert_eq!(&symbolic, &geometric, "transform {}", t);
        }
    }

    /// §4: transforming both query and target by the same element leaves
    /// the similarity score unchanged (the group action is a similarity
    /// isometry).
    #[test]
    fn transform_is_similarity_isometry(a in arb_scene(6), b in arb_scene(6)) {
        let sa = convert_scene(&a);
        let sb = convert_scene(&b);
        let base = similarity(&sa, &sb).score;
        for t in Transform::ALL {
            let moved = similarity(&transformed(&sa, t), &transformed(&sb, t)).score;
            prop_assert!((base - moved).abs() < 1e-12, "{}: {} vs {}", t, base, moved);
        }
    }
}
