//! Serde round-trips for every serialisable public type in `be2d-core` —
//! the contract the database persistence layer builds on.

use be2d_core::{
    convert_scene, similarity, AnnotatedBeString, BeString, BeString2D, BeSymbol, Boundary,
    SimilarityConfig, SymbolicImage,
};
use be2d_geometry::{ObjectClass, SceneBuilder};

fn figure1() -> be2d_geometry::Scene {
    SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()
        .unwrap()
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialise");
    serde_json::from_str(&json).expect("deserialise")
}

#[test]
fn symbols_roundtrip() {
    for symbol in [
        BeSymbol::Dummy,
        BeSymbol::begin(ObjectClass::new("A")),
        BeSymbol::end(ObjectClass::new("house2")),
    ] {
        assert_eq!(roundtrip(&symbol), symbol);
    }
    assert_eq!(roundtrip(&Boundary::Begin), Boundary::Begin);
}

#[test]
fn bestrings_roundtrip() {
    let s = convert_scene(&figure1());
    let x: BeString = s.x().clone();
    assert_eq!(roundtrip(&x), x);
    let full: BeString2D = s.clone();
    assert_eq!(roundtrip(&full), full);
}

#[test]
fn annotated_forms_roundtrip() {
    let img = SymbolicImage::from_scene(&figure1());
    assert_eq!(roundtrip(&img), img);
    let axis: AnnotatedBeString = img.x().clone();
    assert_eq!(roundtrip(&axis), axis);
    // the materialised view survives the round trip too
    assert_eq!(roundtrip(&img).to_be_string_2d(), img.to_be_string_2d());
}

#[test]
fn similarity_results_roundtrip() {
    let s = convert_scene(&figure1());
    let sim = similarity(&s, &s);
    let back = roundtrip(&sim);
    assert_eq!(back.score, sim.score);
    assert_eq!(back.x.lcs_len, sim.x.lcs_len);
    assert_eq!(
        roundtrip(&SimilarityConfig::default()),
        SimilarityConfig::default()
    );
}

#[test]
fn geometry_types_roundtrip() {
    let scene = figure1();
    assert_eq!(roundtrip(&scene), scene);
    let rect = scene.objects()[0].mbr();
    assert_eq!(roundtrip(&rect), rect);
    let class = scene.objects()[0].class().clone();
    assert_eq!(roundtrip(&class), class);
    use be2d_geometry::Transform;
    for t in Transform::ALL {
        assert_eq!(roundtrip(&t), t);
    }
}

#[test]
fn tampered_json_is_rejected() {
    // deserialisation revalidates nothing fancy, but malformed structures
    // must error rather than panic
    assert!(serde_json::from_str::<BeString>("{\"symbols\": 3}").is_err());
    assert!(serde_json::from_str::<SymbolicImage>("[1, 2, 3]").is_err());
}
