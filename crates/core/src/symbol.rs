//! BE-string symbols: boundary markers and the dummy object.

use crate::BeStringError;
use be2d_geometry::ObjectClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which MBR boundary of an object a symbol denotes.
///
/// The 2D B-string of Lee et al. introduced representing an object by two
/// symbols — one for each MBR boundary — and the 2D BE-string keeps that
/// encoding (§3.1 of the paper: "they present an object by its MBR
/// boundaries and need nothing to be cut").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Boundary {
    /// The begin (left/bottom) boundary — the paper's `x_b` / `y_b`.
    Begin,
    /// The end (right/top) boundary — the paper's `x_e` / `y_e`.
    End,
}

impl Boundary {
    /// The opposite boundary. Mirroring an axis swaps begins and ends,
    /// which is how the symbolic D4 transforms work.
    #[must_use]
    pub const fn flipped(self) -> Boundary {
        match self {
            Boundary::Begin => Boundary::End,
            Boundary::End => Boundary::Begin,
        }
    }

    /// The suffix used in the textual rendering (`_b` / `_e`).
    #[must_use]
    pub const fn suffix(self) -> &'static str {
        match self {
            Boundary::Begin => "b",
            Boundary::End => "e",
        }
    }
}

impl fmt::Display for Boundary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// One symbol of a BE-string.
///
/// A BE-string is a sequence over two kinds of symbols (§3.1):
///
/// * **boundary symbols** — the begin or end boundary of an object of some
///   class, written `A_b` / `A_e`;
/// * the **dummy object** `E` (ε) — "not a real object in the original
///   image; it can be specified as any size of space". A dummy between two
///   boundary symbols states that their projections are *distinct*; the
///   absence of a dummy states they are *identical*. This replaces every
///   spatial operator of the earlier 2-D string models.
///
/// Symbol equality (used by the LCS matching) is class + boundary identity;
/// all dummies are equal to each other.
///
/// # Example
///
/// ```
/// use be2d_core::{BeSymbol, Boundary};
/// use be2d_geometry::ObjectClass;
///
/// let a_begin = BeSymbol::begin(ObjectClass::new("A"));
/// assert!(a_begin.is_boundary());
/// assert_eq!(a_begin.to_string(), "A_b");
/// assert_eq!(BeSymbol::Dummy.to_string(), "E");
/// assert_ne!(a_begin, BeSymbol::end(ObjectClass::new("A")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BeSymbol {
    /// The dummy object ε: a witness that adjacent boundary projections
    /// differ (or that free space borders the image frame).
    Dummy,
    /// A begin/end boundary of an object of the given class.
    Bound {
        /// The object's class.
        class: ObjectClass,
        /// Which of the two MBR boundaries this symbol marks.
        boundary: Boundary,
    },
}

impl BeSymbol {
    /// Convenience constructor for a begin boundary symbol.
    #[must_use]
    pub const fn begin(class: ObjectClass) -> Self {
        BeSymbol::Bound {
            class,
            boundary: Boundary::Begin,
        }
    }

    /// Convenience constructor for an end boundary symbol.
    #[must_use]
    pub const fn end(class: ObjectClass) -> Self {
        BeSymbol::Bound {
            class,
            boundary: Boundary::End,
        }
    }

    /// Whether this is the dummy object ε.
    #[must_use]
    pub const fn is_dummy(&self) -> bool {
        matches!(self, BeSymbol::Dummy)
    }

    /// Whether this is a boundary symbol.
    #[must_use]
    pub const fn is_boundary(&self) -> bool {
        matches!(self, BeSymbol::Bound { .. })
    }

    /// The class of a boundary symbol, or `None` for the dummy.
    #[must_use]
    pub fn class(&self) -> Option<&ObjectClass> {
        match self {
            BeSymbol::Dummy => None,
            BeSymbol::Bound { class, .. } => Some(class),
        }
    }

    /// The boundary kind of a boundary symbol, or `None` for the dummy.
    #[must_use]
    pub fn boundary(&self) -> Option<Boundary> {
        match self {
            BeSymbol::Dummy => None,
            BeSymbol::Bound { boundary, .. } => Some(*boundary),
        }
    }

    /// The symbol with begin/end swapped; the dummy is unchanged.
    ///
    /// This is the per-symbol half of the string-reversal transforms of §4.
    #[must_use]
    pub fn flipped(&self) -> BeSymbol {
        match self {
            BeSymbol::Dummy => BeSymbol::Dummy,
            BeSymbol::Bound { class, boundary } => BeSymbol::Bound {
                class: class.clone(),
                boundary: boundary.flipped(),
            },
        }
    }

    /// Parses one space-separated token of the textual rendering.
    ///
    /// `"E"` is the dummy; `"<name>_b"` / `"<name>_e"` are boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::Parse`] for malformed tokens.
    pub fn parse_token(token: &str) -> Result<Self, BeStringError> {
        if token == "E" {
            return Ok(BeSymbol::Dummy);
        }
        let (name, suffix) = token.rsplit_once('_').ok_or_else(|| BeStringError::Parse {
            token: token.to_owned(),
        })?;
        let boundary = match suffix {
            "b" => Boundary::Begin,
            "e" => Boundary::End,
            _ => {
                return Err(BeStringError::Parse {
                    token: token.to_owned(),
                })
            }
        };
        let class = ObjectClass::try_new(name).map_err(|_| BeStringError::Parse {
            token: token.to_owned(),
        })?;
        Ok(BeSymbol::Bound { class, boundary })
    }
}

impl fmt::Display for BeSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeSymbol::Dummy => f.write_str("E"),
            BeSymbol::Bound { class, boundary } => write!(f, "{class}_{boundary}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(name: &str) -> ObjectClass {
        ObjectClass::new(name)
    }

    #[test]
    fn boundary_flip_is_involution() {
        assert_eq!(Boundary::Begin.flipped(), Boundary::End);
        assert_eq!(Boundary::End.flipped(), Boundary::Begin);
        assert_eq!(Boundary::Begin.flipped().flipped(), Boundary::Begin);
    }

    #[test]
    fn symbol_constructors_and_accessors() {
        let b = BeSymbol::begin(class("A"));
        assert!(b.is_boundary());
        assert!(!b.is_dummy());
        assert_eq!(b.class().unwrap().name(), "A");
        assert_eq!(b.boundary(), Some(Boundary::Begin));

        assert!(BeSymbol::Dummy.is_dummy());
        assert_eq!(BeSymbol::Dummy.class(), None);
        assert_eq!(BeSymbol::Dummy.boundary(), None);
    }

    #[test]
    fn symbol_equality_is_class_and_boundary() {
        assert_eq!(BeSymbol::begin(class("A")), BeSymbol::begin(class("A")));
        assert_ne!(BeSymbol::begin(class("A")), BeSymbol::end(class("A")));
        assert_ne!(BeSymbol::begin(class("A")), BeSymbol::begin(class("B")));
        assert_eq!(BeSymbol::Dummy, BeSymbol::Dummy);
        assert_ne!(BeSymbol::Dummy, BeSymbol::begin(class("A")));
    }

    #[test]
    fn symbol_flip() {
        let b = BeSymbol::begin(class("A"));
        assert_eq!(b.flipped(), BeSymbol::end(class("A")));
        assert_eq!(b.flipped().flipped(), b);
        assert_eq!(BeSymbol::Dummy.flipped(), BeSymbol::Dummy);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in [
            BeSymbol::Dummy,
            BeSymbol::begin(class("A")),
            BeSymbol::end(class("A")),
            BeSymbol::begin(class("house2")),
        ] {
            let text = s.to_string();
            assert_eq!(BeSymbol::parse_token(&text).unwrap(), s, "token {text}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "A", "A_x", "_b", "E_b_"] {
            assert!(BeSymbol::parse_token(bad).is_err(), "should reject {bad:?}");
        }
        // "E_b" would need class "E" which is reserved
        assert!(BeSymbol::parse_token("E_b").is_err());
    }

    #[test]
    fn display_examples() {
        assert_eq!(BeSymbol::end(class("car")).to_string(), "car_e");
        assert_eq!(Boundary::Begin.to_string(), "b");
    }
}
