//! Coordinate-annotated BE-strings: the stored form that supports the
//! paper's §3.2 maintenance operations.
//!
//! §3.2: *"Because the 2D BE-string is an order data, if we save the 2D
//! BE-string with their MBR coordinates, we can easy find the location to be
//! inserted for a new object and its MBR boundaries using binary search […]
//! When we want to drop an object […] delete it directly and eliminate the
//! redundant dummy object."*
//!
//! [`AnnotatedBeString`] stores exactly that: the ordered boundary events
//! with their coordinates plus the axis extent. The dummy objects are a
//! *function* of the coordinates (a dummy sits wherever two adjacent
//! boundary projections differ, and at the frame edges with free space), so
//! the materialised [`BeString`] view derives them on demand in O(n) —
//! keeping the dummy-placement rule of Algorithm 1 in one place while edits
//! stay binary-search + splice, never a full re-sort.

use crate::{BeString, BeString2D, BeStringError, BeSymbol, Boundary};
use be2d_geometry::{ObjectClass, Rect, Scene, Transform};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One boundary of one object projected onto an axis, with its coordinate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoundaryEvent {
    /// Projection coordinate of the boundary.
    pub coord: i64,
    /// Class of the object the boundary belongs to.
    pub class: ObjectClass,
    /// Which MBR boundary this is.
    pub boundary: Boundary,
}

impl BoundaryEvent {
    /// Creates a boundary event.
    #[must_use]
    pub const fn new(coord: i64, class: ObjectClass, boundary: Boundary) -> Self {
        BoundaryEvent {
            coord,
            class,
            boundary,
        }
    }

    /// The symbol this event contributes within a same-coordinate group
    /// has no geometric meaning (no dummy separates the group), but the
    /// LCS is order-sensitive, so a canonical tie-break is required — and
    /// the §4 reversal claim requires that tie-break to be
    /// **mirror-symmetric**: flipping begin↔end must exactly reverse the
    /// order. End boundaries sort before begin boundaries (objects close
    /// before new ones open, matching the Figure 1 example), with class
    /// names ascending among ends and descending among begins — `flip` is
    /// then order-reversing, which the `mirrored` tests verify.
    fn group_rank(&self) -> u8 {
        match self.boundary {
            Boundary::End => 0,
            Boundary::Begin => 1,
        }
    }

    /// The symbol this event contributes to the materialised string.
    #[must_use]
    pub fn symbol(&self) -> BeSymbol {
        BeSymbol::Bound {
            class: self.class.clone(),
            boundary: self.boundary,
        }
    }
}

impl fmt::Display for BoundaryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}@{}", self.class, self.boundary, self.coord)
    }
}

fn cmp_events(a: &BoundaryEvent, b: &BoundaryEvent) -> Ordering {
    a.coord
        .cmp(&b.coord)
        .then_with(|| a.group_rank().cmp(&b.group_rank()))
        .then_with(|| match a.boundary {
            Boundary::End => a.class.name().cmp(b.class.name()),
            Boundary::Begin => b.class.name().cmp(a.class.name()),
        })
}

/// A one-axis BE-string stored with its boundary coordinates (§3.2).
///
/// Invariants (enforced by every constructor and edit):
///
/// * all coordinates lie in `[0, extent]`;
/// * events are sorted by coordinate, with the mirror-symmetric tie-break
///   described on [`BoundaryEvent`] (ends before begins; class ascending
///   among ends, descending among begins);
/// * per class, begins and ends are balanced and every prefix has at least
///   as many begins as ends.
///
/// # Example
///
/// ```
/// use be2d_core::{AnnotatedBeString, Boundary};
/// use be2d_geometry::ObjectClass;
///
/// let mut s = AnnotatedBeString::new(100)?;
/// s.insert_object(ObjectClass::new("A"), 10, 50)?;
/// s.insert_object(ObjectClass::new("B"), 50, 90)?;
/// assert_eq!(s.to_be_string().to_string(), "E A_b E A_e B_b E B_e E");
/// # Ok::<(), be2d_core::BeStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotatedBeString {
    events: Vec<BoundaryEvent>,
    extent: i64,
}

impl AnnotatedBeString {
    /// Creates an empty annotated string for an axis of the given extent.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::OutOfExtent`] when `extent` is not positive.
    pub fn new(extent: i64) -> Result<Self, BeStringError> {
        if extent <= 0 {
            return Err(BeStringError::OutOfExtent { coord: 0, extent });
        }
        Ok(AnnotatedBeString {
            events: Vec::new(),
            extent,
        })
    }

    /// Builds an annotated string from unsorted events (Algorithm 1 lines
    /// 14–19: combine coordinate and identifier as key, sort ascending).
    ///
    /// # Errors
    ///
    /// Returns an error when a coordinate is outside `[0, extent]` or the
    /// begin/end events are not balanced per class.
    pub fn from_events(mut events: Vec<BoundaryEvent>, extent: i64) -> Result<Self, BeStringError> {
        if extent <= 0 {
            return Err(BeStringError::OutOfExtent { coord: 0, extent });
        }
        for e in &events {
            if e.coord < 0 || e.coord > extent {
                return Err(BeStringError::OutOfExtent {
                    coord: e.coord,
                    extent,
                });
            }
        }
        events.sort_by(cmp_events);
        let s = AnnotatedBeString { events, extent };
        s.check_balance()?;
        Ok(s)
    }

    fn check_balance(&self) -> Result<(), BeStringError> {
        use std::collections::HashMap;
        let mut balance: HashMap<&ObjectClass, i64> = HashMap::new();
        for e in &self.events {
            let v = balance.entry(&e.class).or_insert(0);
            match e.boundary {
                Boundary::Begin => *v += 1,
                Boundary::End => {
                    *v -= 1;
                    if *v < 0 {
                        return Err(BeStringError::InvalidString {
                            reason: format!("end of class {} precedes its begin", e.class),
                        });
                    }
                }
            }
        }
        if balance.values().any(|v| *v != 0) {
            return Err(BeStringError::InvalidString {
                reason: "unbalanced begin/end events".into(),
            });
        }
        Ok(())
    }

    /// The axis extent (the paper's `X_max`/`Y_max`).
    #[must_use]
    pub const fn extent(&self) -> i64 {
        self.extent
    }

    /// The sorted boundary events.
    #[must_use]
    pub fn events(&self) -> &[BoundaryEvent] {
        &self.events
    }

    /// Number of objects represented on this axis.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.events.len() / 2
    }

    /// Inserts one boundary event at its sorted position.
    ///
    /// Position lookup is a binary search (O(log n)); the splice is O(n) —
    /// the §3.2 maintenance cost, cheaper than re-running the O(n log n)
    /// conversion.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::OutOfExtent`] for coordinates outside
    /// `[0, extent]`.
    pub fn insert_boundary(
        &mut self,
        class: ObjectClass,
        boundary: Boundary,
        coord: i64,
    ) -> Result<(), BeStringError> {
        if coord < 0 || coord > self.extent {
            return Err(BeStringError::OutOfExtent {
                coord,
                extent: self.extent,
            });
        }
        let ev = BoundaryEvent::new(coord, class, boundary);
        let pos = self
            .events
            .partition_point(|e| cmp_events(e, &ev) != Ordering::Greater);
        self.events.insert(pos, ev);
        Ok(())
    }

    /// Inserts a whole object (its begin and end boundary) on this axis.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::InvalidString`] when `begin >= end`, or
    /// [`BeStringError::OutOfExtent`] when either coordinate is outside the
    /// frame; the string is unchanged on error.
    pub fn insert_object(
        &mut self,
        class: ObjectClass,
        begin: i64,
        end: i64,
    ) -> Result<(), BeStringError> {
        if begin >= end {
            return Err(BeStringError::InvalidString {
                reason: format!("object extent [{begin}, {end}) is empty"),
            });
        }
        if begin < 0 || end > self.extent {
            let coord = if begin < 0 { begin } else { end };
            return Err(BeStringError::OutOfExtent {
                coord,
                extent: self.extent,
            });
        }
        self.insert_boundary(class.clone(), Boundary::Begin, begin)?;
        self.insert_boundary(class, Boundary::End, end)?;
        Ok(())
    }

    /// Removes one object identified by class and boundary coordinates
    /// (the §3.2 drop operation).
    ///
    /// When several same-class objects share the exact boundary pair, one
    /// of them is removed (they are indistinguishable in the model).
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::ObjectNotFound`] when no matching pair of
    /// events exists; the string is unchanged on error.
    pub fn remove_object(
        &mut self,
        class: &ObjectClass,
        begin: i64,
        end: i64,
    ) -> Result<(), BeStringError> {
        let not_found = || BeStringError::ObjectNotFound {
            class: class.name().to_owned(),
            begin,
            end,
        };
        let b = self
            .find_event(class, Boundary::Begin, begin)
            .ok_or_else(not_found)?;
        let e = self
            .find_event(class, Boundary::End, end)
            .ok_or_else(not_found)?;
        // Remove the later index first so the earlier index stays valid.
        let (first, second) = if b < e { (b, e) } else { (e, b) };
        self.events.remove(second);
        self.events.remove(first);
        Ok(())
    }

    /// Binary-searches for an event with the exact `(coord, class,
    /// boundary)` key, returning its index.
    fn find_event(&self, class: &ObjectClass, boundary: Boundary, coord: i64) -> Option<usize> {
        let probe = BoundaryEvent::new(coord, class.clone(), boundary);
        let idx = self
            .events
            .partition_point(|e| cmp_events(e, &probe) == Ordering::Less);
        (idx < self.events.len() && cmp_events(&self.events[idx], &probe) == Ordering::Equal)
            .then_some(idx)
    }

    /// Whether an object with this class and boundary pair is present.
    #[must_use]
    pub fn contains_object(&self, class: &ObjectClass, begin: i64, end: i64) -> bool {
        self.find_event(class, Boundary::Begin, begin).is_some()
            && self.find_event(class, Boundary::End, end).is_some()
    }

    /// Materialises the BE-string view, deriving the dummy objects
    /// (Algorithm 1 lines 21–32 / 34–45).
    ///
    /// A dummy is emitted:
    /// * before the first boundary symbol when its coordinate is `> 0`
    ///   ("insert E at the leftmost");
    /// * between two consecutive boundary symbols when their coordinates
    ///   differ;
    /// * after the last boundary symbol when its coordinate is `< extent`
    ///   ("insert E at the rightmost").
    ///
    /// The empty axis materialises to the single dummy `E`.
    #[must_use]
    pub fn to_be_string(&self) -> BeString {
        if self.events.is_empty() {
            return BeString::empty_axis();
        }
        let mut out = Vec::with_capacity(2 * self.events.len() + 1);
        if self.events[0].coord > 0 {
            out.push(BeSymbol::Dummy);
        }
        for (i, e) in self.events.iter().enumerate() {
            out.push(e.symbol());
            match self.events.get(i + 1) {
                Some(next) => {
                    if next.coord != e.coord {
                        out.push(BeSymbol::Dummy);
                    }
                }
                None => {
                    if e.coord < self.extent {
                        out.push(BeSymbol::Dummy);
                    }
                }
            }
        }
        BeString::from_symbols_unchecked(out)
    }

    /// Number of symbols the materialised string will have, in O(n)
    /// without allocating.
    #[must_use]
    pub fn symbol_len(&self) -> usize {
        if self.events.is_empty() {
            return 1;
        }
        let mut len = self.events.len();
        if self.events[0].coord > 0 {
            len += 1;
        }
        if self.events.last().expect("non-empty").coord < self.extent {
            len += 1;
        }
        len += self
            .events
            .windows(2)
            .filter(|w| w[0].coord != w[1].coord)
            .count();
        len
    }

    /// The mirrored axis (`coord ↦ extent − coord`): order reversed,
    /// begin/end swapped, same extent.
    #[must_use]
    pub fn mirrored(&self) -> AnnotatedBeString {
        let events = self
            .events
            .iter()
            .rev()
            .map(|e| {
                BoundaryEvent::new(self.extent - e.coord, e.class.clone(), e.boundary.flipped())
            })
            .collect();
        let out = AnnotatedBeString {
            events,
            extent: self.extent,
        };
        debug_assert!(out.is_sorted());
        out
    }

    fn is_sorted(&self) -> bool {
        self.events
            .windows(2)
            .all(|w| cmp_events(&w[0], &w[1]) != Ordering::Greater)
    }
}

impl fmt::Display for AnnotatedBeString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_be_string())
    }
}

/// A symbolic picture: both annotated axis strings of one image (§3.2).
///
/// This is the unit stored in an image database: it materialises to a
/// [`BeString2D`] for similarity retrieval and supports the incremental
/// object insert/drop of §3.2.
///
/// # Example
///
/// ```
/// use be2d_core::SymbolicImage;
/// use be2d_geometry::{SceneBuilder, ObjectClass, Rect};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (10, 50, 25, 85))
///     .build()?;
/// let mut img = SymbolicImage::from_scene(&scene);
/// img.add_object(&ObjectClass::new("B"), Rect::new(30, 90, 5, 45)?)?;
/// assert_eq!(img.object_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolicImage {
    x: AnnotatedBeString,
    y: AnnotatedBeString,
}

impl SymbolicImage {
    /// Builds the symbolic picture of a scene — the end-to-end Algorithm 1.
    ///
    /// Sorting dominates: O(n log n) time, O(n) space.
    #[must_use]
    pub fn from_scene(scene: &Scene) -> SymbolicImage {
        let mut xs = Vec::with_capacity(2 * scene.len());
        let mut ys = Vec::with_capacity(2 * scene.len());
        for obj in scene {
            let (class, mbr) = (obj.class().clone(), obj.mbr());
            xs.push(BoundaryEvent::new(
                mbr.x_begin(),
                class.clone(),
                Boundary::Begin,
            ));
            xs.push(BoundaryEvent::new(
                mbr.x_end(),
                class.clone(),
                Boundary::End,
            ));
            ys.push(BoundaryEvent::new(
                mbr.y_begin(),
                class.clone(),
                Boundary::Begin,
            ));
            ys.push(BoundaryEvent::new(mbr.y_end(), class, Boundary::End));
        }
        let x = AnnotatedBeString::from_events(xs, scene.width())
            .expect("scene objects are validated in-frame");
        let y = AnnotatedBeString::from_events(ys, scene.height())
            .expect("scene objects are validated in-frame");
        SymbolicImage { x, y }
    }

    /// Creates an empty symbolic picture with the given frame size.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::OutOfExtent`] for non-positive dimensions.
    pub fn empty(width: i64, height: i64) -> Result<SymbolicImage, BeStringError> {
        Ok(SymbolicImage {
            x: AnnotatedBeString::new(width)?,
            y: AnnotatedBeString::new(height)?,
        })
    }

    /// Combines two annotated axes.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::InvalidString`] when the axes carry
    /// different object multisets.
    pub fn from_axes(
        x: AnnotatedBeString,
        y: AnnotatedBeString,
    ) -> Result<SymbolicImage, BeStringError> {
        let count = |s: &AnnotatedBeString| {
            let mut v: Vec<_> = s
                .events()
                .iter()
                .filter(|e| e.boundary == Boundary::Begin)
                .map(|e| e.class.clone())
                .collect();
            v.sort();
            v
        };
        if count(&x) != count(&y) {
            return Err(BeStringError::InvalidString {
                reason: "x and y axes describe different object multisets".into(),
            });
        }
        Ok(SymbolicImage { x, y })
    }

    /// The annotated x-axis.
    #[must_use]
    pub fn x(&self) -> &AnnotatedBeString {
        &self.x
    }

    /// The annotated y-axis.
    #[must_use]
    pub fn y(&self) -> &AnnotatedBeString {
        &self.y
    }

    /// Frame width.
    #[must_use]
    pub const fn width(&self) -> i64 {
        self.x.extent()
    }

    /// Frame height.
    #[must_use]
    pub const fn height(&self) -> i64 {
        self.y.extent()
    }

    /// Number of objects in the picture.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.x.object_count()
    }

    /// Materialises the 2D BE-string `(u, v)`.
    #[must_use]
    pub fn to_be_string_2d(&self) -> BeString2D {
        BeString2D::new_unchecked(self.x.to_be_string(), self.y.to_be_string())
    }

    /// Inserts an object incrementally (§3.2), by binary search on both
    /// axes.
    ///
    /// # Errors
    ///
    /// Returns an error when the MBR does not fit the frame; the picture is
    /// unchanged on error.
    pub fn add_object(&mut self, class: &ObjectClass, mbr: Rect) -> Result<(), BeStringError> {
        if mbr.x_begin() < 0 || mbr.x_end() > self.width() {
            return Err(BeStringError::OutOfExtent {
                coord: if mbr.x_begin() < 0 {
                    mbr.x_begin()
                } else {
                    mbr.x_end()
                },
                extent: self.width(),
            });
        }
        if mbr.y_begin() < 0 || mbr.y_end() > self.height() {
            return Err(BeStringError::OutOfExtent {
                coord: if mbr.y_begin() < 0 {
                    mbr.y_begin()
                } else {
                    mbr.y_end()
                },
                extent: self.height(),
            });
        }
        self.x
            .insert_object(class.clone(), mbr.x_begin(), mbr.x_end())?;
        self.y
            .insert_object(class.clone(), mbr.y_begin(), mbr.y_end())?;
        Ok(())
    }

    /// Drops an object incrementally (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::ObjectNotFound`] when no object with this
    /// class and MBR exists; on error the picture is unchanged.
    pub fn remove_object(&mut self, class: &ObjectClass, mbr: Rect) -> Result<(), BeStringError> {
        if !self.x.contains_object(class, mbr.x_begin(), mbr.x_end())
            || !self.y.contains_object(class, mbr.y_begin(), mbr.y_end())
        {
            return Err(BeStringError::ObjectNotFound {
                class: class.name().to_owned(),
                begin: mbr.x_begin(),
                end: mbr.x_end(),
            });
        }
        self.x.remove_object(class, mbr.x_begin(), mbr.x_end())?;
        self.y.remove_object(class, mbr.y_begin(), mbr.y_end())?;
        Ok(())
    }

    /// Applies a D4 transform to the symbolic picture (the annotated
    /// equivalent of the §4 string reversal).
    #[must_use]
    pub fn transformed(&self, t: Transform) -> SymbolicImage {
        let (x, y) = match t {
            Transform::Identity => (self.x.clone(), self.y.clone()),
            Transform::Rotate90 => (self.y.clone(), self.x.mirrored()),
            Transform::Rotate180 => (self.x.mirrored(), self.y.mirrored()),
            Transform::Rotate270 => (self.y.mirrored(), self.x.clone()),
            Transform::ReflectX => (self.x.clone(), self.y.mirrored()),
            Transform::ReflectY => (self.x.mirrored(), self.y.clone()),
            Transform::Transpose => (self.y.clone(), self.x.clone()),
            Transform::AntiTranspose => (self.y.mirrored(), self.x.mirrored()),
        };
        SymbolicImage { x, y }
    }
}

impl fmt::Display for SymbolicImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    fn class(name: &str) -> ObjectClass {
        ObjectClass::new(name)
    }

    #[test]
    fn empty_axis_materialises_to_single_dummy() {
        let s = AnnotatedBeString::new(100).unwrap();
        assert_eq!(s.to_be_string().to_string(), "E");
        assert_eq!(s.symbol_len(), 1);
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn rejects_bad_extent_and_coords() {
        assert!(AnnotatedBeString::new(0).is_err());
        let mut s = AnnotatedBeString::new(10).unwrap();
        assert!(s.insert_boundary(class("A"), Boundary::Begin, -1).is_err());
        assert!(s.insert_boundary(class("A"), Boundary::Begin, 11).is_err());
        assert!(s.insert_object(class("A"), 5, 5).is_err());
        assert!(s.insert_object(class("A"), 5, 11).is_err());
    }

    #[test]
    fn materialisation_places_dummies_per_algorithm_1() {
        // A[10,50], B[50,90] in extent 100: leading E, E inside A, shared
        // boundary at 50 (no E), E inside B, trailing E.
        let mut s = AnnotatedBeString::new(100).unwrap();
        s.insert_object(class("A"), 10, 50).unwrap();
        s.insert_object(class("B"), 50, 90).unwrap();
        assert_eq!(s.to_be_string().to_string(), "E A_b E A_e B_b E B_e E");
        assert_eq!(s.symbol_len(), 8);
    }

    #[test]
    fn exact_fit_omits_edge_dummies() {
        let mut s = AnnotatedBeString::new(100).unwrap();
        s.insert_object(class("A"), 0, 100).unwrap();
        assert_eq!(s.to_be_string().to_string(), "A_b E A_e");
    }

    #[test]
    fn best_case_storage_is_2n_plus_1() {
        // n identical whole-frame objects: 2n + 1 symbols (§3.1 best case).
        let mut s = AnnotatedBeString::new(100).unwrap();
        for _ in 0..5 {
            s.insert_object(class("A"), 0, 100).unwrap();
        }
        assert_eq!(s.symbol_len(), 2 * 5 + 1);
        assert_eq!(s.to_be_string().len(), 11);
    }

    #[test]
    fn worst_case_storage_is_4n_plus_1() {
        // all boundaries distinct with free space everywhere (§3.1 worst case).
        let mut s = AnnotatedBeString::new(100).unwrap();
        s.insert_object(class("A"), 10, 20).unwrap();
        s.insert_object(class("B"), 30, 40).unwrap();
        s.insert_object(class("C"), 50, 60).unwrap();
        assert_eq!(s.symbol_len(), 4 * 3 + 1);
    }

    #[test]
    fn symbol_len_matches_materialisation() {
        let mut s = AnnotatedBeString::new(50).unwrap();
        for (c, b, e) in [("A", 0, 10), ("B", 10, 30), ("C", 5, 50), ("A", 20, 30)] {
            s.insert_object(class(c), b, e).unwrap();
            assert_eq!(s.symbol_len(), s.to_be_string().len());
        }
    }

    #[test]
    fn insert_keeps_sorted_order_with_ties() {
        let mut s = AnnotatedBeString::new(100).unwrap();
        s.insert_object(class("B"), 20, 40).unwrap();
        s.insert_object(class("A"), 20, 40).unwrap();
        // begins at the same coordinate sort by class descending, ends
        // ascending — the mirror-symmetric canonical order.
        let names: Vec<_> = s.events().iter().map(|e| e.to_string()).collect();
        assert_eq!(names, ["B_b@20", "A_b@20", "A_e@40", "B_e@40"]);
        // end-before-begin on exact coordinate ties.
        s.insert_object(class("A"), 40, 60).unwrap();
        let names: Vec<_> = s.events().iter().map(|e| e.to_string()).collect();
        assert_eq!(
            names,
            ["B_b@20", "A_b@20", "A_e@40", "B_e@40", "A_b@40", "A_e@60"]
        );
    }

    #[test]
    fn remove_object_and_errors() {
        let mut s = AnnotatedBeString::new(100).unwrap();
        s.insert_object(class("A"), 10, 50).unwrap();
        s.insert_object(class("B"), 50, 90).unwrap();
        assert!(s.contains_object(&class("A"), 10, 50));
        assert!(
            s.remove_object(&class("A"), 10, 51).is_err(),
            "wrong end coord"
        );
        s.remove_object(&class("A"), 10, 50).unwrap();
        assert!(!s.contains_object(&class("A"), 10, 50));
        assert_eq!(s.to_be_string().to_string(), "E B_b E B_e E");
        assert!(s.remove_object(&class("A"), 10, 50).is_err());
    }

    #[test]
    fn incremental_insert_equals_batch_conversion() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85))
            .object("B", (30, 90, 5, 45))
            .object("C", (50, 70, 45, 65))
            .build()
            .unwrap();
        let batch = SymbolicImage::from_scene(&scene);

        let mut incremental = SymbolicImage::empty(100, 100).unwrap();
        for obj in &scene {
            incremental.add_object(obj.class(), obj.mbr()).unwrap();
        }
        assert_eq!(batch, incremental);
        assert_eq!(batch.to_be_string_2d(), incremental.to_be_string_2d());
    }

    #[test]
    fn add_then_remove_restores() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85))
            .object("B", (30, 90, 5, 45))
            .build()
            .unwrap();
        let mut img = SymbolicImage::from_scene(&scene);
        let before = img.clone();
        let r = Rect::new(0, 99, 0, 99).unwrap();
        img.add_object(&class("Z"), r).unwrap();
        assert_ne!(img, before);
        img.remove_object(&class("Z"), r).unwrap();
        assert_eq!(img, before);
    }

    #[test]
    fn add_object_validates_frame() {
        let mut img = SymbolicImage::empty(50, 50).unwrap();
        assert!(img
            .add_object(&class("A"), Rect::new(0, 60, 0, 10).unwrap())
            .is_err());
        assert!(img
            .add_object(&class("A"), Rect::new(0, 10, 0, 60).unwrap())
            .is_err());
        // failed add must not leave a half-inserted x-axis
        assert_eq!(img.x().events().len(), 0);
        assert_eq!(img.y().events().len(), 0);
    }

    #[test]
    fn remove_object_is_atomic() {
        let mut img = SymbolicImage::empty(50, 50).unwrap();
        img.add_object(&class("A"), Rect::new(0, 10, 0, 10).unwrap())
            .unwrap();
        let before = img.clone();
        // x matches but y does not -> error, unchanged
        assert!(img
            .remove_object(&class("A"), Rect::new(0, 10, 0, 20).unwrap())
            .is_err());
        assert_eq!(img, before);
    }

    #[test]
    fn mirrored_axis_matches_geometric_mirror() {
        let mut s = AnnotatedBeString::new(100).unwrap();
        s.insert_object(class("A"), 10, 50).unwrap();
        s.insert_object(class("B"), 50, 90).unwrap();
        let m = s.mirrored();
        // geometric mirror: A -> [50,90], B -> [10,50]
        let mut expected = AnnotatedBeString::new(100).unwrap();
        expected.insert_object(class("A"), 50, 90).unwrap();
        expected.insert_object(class("B"), 10, 50).unwrap();
        assert_eq!(m, expected);
        assert_eq!(m.mirrored(), s);
    }

    #[test]
    fn from_axes_validates_multisets() {
        let mut x = AnnotatedBeString::new(10).unwrap();
        x.insert_object(class("A"), 0, 5).unwrap();
        let mut y_ok = AnnotatedBeString::new(10).unwrap();
        y_ok.insert_object(class("A"), 2, 8).unwrap();
        let y_bad = AnnotatedBeString::new(10).unwrap();
        assert!(SymbolicImage::from_axes(x.clone(), y_ok).is_ok());
        assert!(SymbolicImage::from_axes(x, y_bad).is_err());
    }

    #[test]
    fn from_events_validates() {
        let ev = |c: &str, b, coord| BoundaryEvent::new(coord, class(c), b);
        // unbalanced
        assert!(AnnotatedBeString::from_events(vec![ev("A", Boundary::Begin, 0)], 10).is_err());
        // end before begin
        assert!(AnnotatedBeString::from_events(
            vec![ev("A", Boundary::End, 0), ev("A", Boundary::Begin, 5)],
            10
        )
        .is_err());
        // out of extent
        assert!(AnnotatedBeString::from_events(
            vec![ev("A", Boundary::Begin, 0), ev("A", Boundary::End, 11)],
            10
        )
        .is_err());
        // unsorted input is sorted
        let s = AnnotatedBeString::from_events(
            vec![ev("A", Boundary::End, 7), ev("A", Boundary::Begin, 2)],
            10,
        )
        .unwrap();
        assert_eq!(s.to_be_string().to_string(), "E A_b E A_e E");
    }

    #[test]
    fn display_shows_materialised_string() {
        let mut s = AnnotatedBeString::new(10).unwrap();
        s.insert_object(class("A"), 0, 10).unwrap();
        assert_eq!(s.to_string(), "A_b E A_e");
        let img = SymbolicImage::from_axes(s.clone(), s).unwrap();
        assert_eq!(img.to_string(), "(A_b E A_e, A_b E A_e)");
    }
}
