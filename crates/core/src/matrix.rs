//! Corpus-level similarity analysis: pairwise matrices and threshold
//! clustering.
//!
//! Retrieval ranks one query against a database; collection management
//! tasks (near-duplicate detection, corpus browsing) instead need *all*
//! pairwise similarities. These helpers compute the symmetric similarity
//! matrix under a [`SimilarityConfig`] and group images whose similarity
//! exceeds a threshold into connected components.

use crate::{similarity_with, BeString2D, SimilarityConfig};

/// Computes the symmetric pairwise similarity matrix of a collection.
///
/// `matrix[i][j]` is the configured similarity of images `i` and `j`;
/// the diagonal is 1. O(k²) similarity evaluations for `k` images, each
/// O(mn) — fine for collection-management scale (thousands), not for
/// web scale.
///
/// Note: symmetry is only guaranteed under symmetric configurations
/// (the default Dice normalisation); with `QueryCoverage` the matrix is
/// intentionally asymmetric and both triangles are computed.
///
/// # Example
///
/// ```
/// use be2d_core::{convert_scene, similarity_matrix, SimilarityConfig};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = convert_scene(&SceneBuilder::new(10, 10).object("A", (0, 5, 0, 5)).build()?);
/// let b = convert_scene(&SceneBuilder::new(10, 10).object("B", (0, 5, 0, 5)).build()?);
/// let m = similarity_matrix(&[a.clone(), a, b], &SimilarityConfig::default());
/// assert_eq!(m[0][1], 1.0);
/// assert!(m[0][2] < 0.8);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn similarity_matrix(items: &[BeString2D], cfg: &SimilarityConfig) -> Vec<Vec<f64>> {
    let k = items.len();
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let s = similarity_with(&items[i], &items[j], cfg).score;
            m[i][j] = s;
            m[j][i] = similarity_with(&items[j], &items[i], cfg).score;
        }
    }
    m
}

/// Groups indices into connected components of the graph whose edges are
/// pairs with `matrix[i][j] >= threshold` (in either direction).
///
/// Returns clusters sorted by smallest member, singletons included —
/// with a high threshold this is near-duplicate detection.
///
/// # Panics
///
/// Panics when the matrix is not square.
#[must_use]
#[allow(clippy::needless_range_loop)] // both triangles of the matrix are read
pub fn threshold_clusters(matrix: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let k = matrix.len();
    for row in matrix {
        assert_eq!(row.len(), k, "similarity matrix must be square");
    }
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if matrix[i][j] >= threshold || matrix[j][i] >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..k {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
#[allow(clippy::type_complexity)] // terse MBR tuples keep test fixtures readable
mod tests {
    use super::*;
    use crate::convert_scene;
    use be2d_geometry::SceneBuilder;

    fn strings() -> Vec<BeString2D> {
        let mk = |objs: &[(&str, (i64, i64, i64, i64))]| {
            let mut b = SceneBuilder::new(100, 100);
            for (n, m) in objs {
                b = b.object(n, *m);
            }
            convert_scene(&b.build().unwrap())
        };
        vec![
            mk(&[("A", (0, 20, 0, 20)), ("B", (40, 70, 40, 70))]), // 0
            mk(&[("A", (2, 22, 1, 21)), ("B", (41, 69, 42, 71))]), // 1: near-dup of 0
            mk(&[("Z", (10, 90, 10, 90))]),                        // 2: unrelated
            mk(&[("A", (0, 20, 0, 20)), ("B", (40, 70, 40, 70))]), // 3: exact dup of 0
        ]
    }

    #[test]
    fn matrix_shape_and_diagonal() {
        let m = similarity_matrix(&strings(), &SimilarityConfig::default());
        assert_eq!(m.len(), 4);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row.len(), 4);
            assert_eq!(row[i], 1.0);
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn matrix_is_symmetric_under_dice() {
        let m = similarity_matrix(&strings(), &SimilarityConfig::default());
        for (i, row) in m.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn duplicates_score_one() {
        let m = similarity_matrix(&strings(), &SimilarityConfig::default());
        assert_eq!(m[0][3], 1.0);
        assert!(m[0][1] > 0.8, "near-duplicate scores high: {}", m[0][1]);
        assert!(m[0][2] < 0.5, "unrelated scores low: {}", m[0][2]);
    }

    #[test]
    fn clustering_finds_duplicate_group() {
        let m = similarity_matrix(&strings(), &SimilarityConfig::default());
        let clusters = threshold_clusters(&m, 0.85);
        assert!(clusters.contains(&vec![0, 1, 3]), "clusters: {clusters:?}");
        assert!(clusters.contains(&vec![2]));
    }

    #[test]
    fn threshold_extremes() {
        let m = similarity_matrix(&strings(), &SimilarityConfig::default());
        // everything connects at threshold 0
        assert_eq!(threshold_clusters(&m, 0.0).len(), 1);
        // nothing connects above 1
        assert_eq!(threshold_clusters(&m, 1.1).len(), 4);
    }

    #[test]
    fn empty_collection() {
        let m = similarity_matrix(&[], &SimilarityConfig::default());
        assert!(m.is_empty());
        assert!(threshold_clusters(&m, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_panics() {
        let _ = threshold_clusters(&[vec![1.0, 0.5]], 0.5);
    }
}
