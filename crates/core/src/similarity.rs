//! The §4 similarity evaluation process built on the modified LCS.
//!
//! The paper deliberately scores *graded* similarity: "not only those
//! images which all of the icons and their spatial relationships fully
//! accord with the query image can be sifted out, but also those images
//! which partial of icons and/or spatial relationships are similar". The
//! LCS length is the raw measure; this module normalises it into a
//! `[0, 1]` score per axis and combines the axes.
//!
//! The paper leaves the final scalar open ("evaluate this LCS string with
//! respect to 2D BE-strings of query image and database image"), so the
//! normalisation and combination are configurable via
//! [`SimilarityConfig`]; the default (Dice over all symbols, mean of axes)
//! is symmetric and rewards both precision and recall of spatial
//! relationships. The ablation bench `exp_ablation` compares the options.

use crate::{BeString, BeString2D, LcsTable};
use be2d_geometry::Transform;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a raw per-axis LCS length is normalised into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Normalization {
    /// `L / |Q|`: how much of the *query* is covered — recall-like, the
    /// natural choice when the query is a partial sketch of the target.
    QueryCoverage,
    /// `L / |D|`: how much of the *database image* is covered —
    /// precision-like, penalises large cluttered images.
    TargetCoverage,
    /// `2L / (|Q| + |D|)`: the Dice coefficient, symmetric. Default.
    #[default]
    Dice,
}

impl fmt::Display for Normalization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Normalization::QueryCoverage => "query-coverage",
            Normalization::TargetCoverage => "target-coverage",
            Normalization::Dice => "dice",
        };
        f.write_str(name)
    }
}

/// How the two axis scores combine into one image score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AxisCombine {
    /// Arithmetic mean of the x and y scores. Default.
    #[default]
    Mean,
    /// Product of the axis scores — stricter, both axes must agree.
    Product,
    /// Minimum of the axis scores — the weakest-axis bound.
    Min,
}

impl fmt::Display for AxisCombine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AxisCombine::Mean => "mean",
            AxisCombine::Product => "product",
            AxisCombine::Min => "min",
        };
        f.write_str(name)
    }
}

/// Configuration of the similarity evaluation process.
///
/// # Example
///
/// ```
/// use be2d_core::{SimilarityConfig, Normalization, AxisCombine};
///
/// let strict = SimilarityConfig {
///     normalization: Normalization::QueryCoverage,
///     axis_combine: AxisCombine::Product,
///     count_dummies: false,
/// };
/// assert_ne!(strict, SimilarityConfig::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Length normalisation per axis.
    pub normalization: Normalization,
    /// Combination of the two axis scores.
    pub axis_combine: AxisCombine,
    /// Whether dummy objects count towards lengths (`true`, the paper's
    /// storage-unit view) or only boundary symbols do (`false`,
    /// "objects-and-relations only").
    pub count_dummies: bool,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            normalization: Normalization::default(),
            axis_combine: AxisCombine::default(),
            count_dummies: true,
        }
    }
}

/// Per-axis outcome of the similarity evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisSimilarity {
    /// Raw LCS length under the configured counting rule.
    pub lcs_len: usize,
    /// Query string length under the configured counting rule.
    pub query_len: usize,
    /// Database string length under the configured counting rule.
    pub target_len: usize,
    /// Normalised score in `[0, 1]`.
    pub score: f64,
}

impl AxisSimilarity {
    fn evaluate(query: &BeString, target: &BeString, cfg: &SimilarityConfig) -> AxisSimilarity {
        let table = LcsTable::build(query, target);
        let (lcs_len, query_len, target_len) = if cfg.count_dummies {
            (table.length(), query.len(), target.len())
        } else {
            (
                table.boundary_length(),
                query.boundary_count(),
                target.boundary_count(),
            )
        };
        let score = match cfg.normalization {
            Normalization::QueryCoverage => ratio(lcs_len, query_len),
            Normalization::TargetCoverage => ratio(lcs_len, target_len),
            Normalization::Dice => {
                if query_len + target_len == 0 {
                    1.0
                } else {
                    2.0 * lcs_len as f64 / (query_len + target_len) as f64
                }
            }
        };
        AxisSimilarity {
            lcs_len,
            query_len,
            target_len,
            score,
        }
    }
}

/// `a / b` with the convention `0 / 0 = 1` (two empty images are
/// identical) and `x / 0 = 0` otherwise.
fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        a as f64 / b as f64
    }
}

/// Full outcome of evaluating a query against one database image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Similarity {
    /// X-axis evaluation.
    pub x: AxisSimilarity,
    /// Y-axis evaluation.
    pub y: AxisSimilarity,
    /// Combined score in `[0, 1]`.
    pub score: f64,
}

/// Evaluates the similarity of two 2D BE-strings with the default
/// configuration.
///
/// # Example
///
/// ```
/// use be2d_core::{convert_scene, similarity};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let full = convert_scene(
///     &SceneBuilder::new(100, 100)
///         .object("A", (10, 40, 10, 40))
///         .object("B", (50, 90, 50, 90))
///         .build()?,
/// );
/// let partial = convert_scene(
///     &SceneBuilder::new(100, 100).object("A", (10, 40, 10, 40)).build()?,
/// );
/// let sim = similarity(&partial, &full);
/// assert!(sim.score > 0.4 && sim.score < 1.0);
/// assert_eq!(similarity(&full, &full).score, 1.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn similarity(query: &BeString2D, target: &BeString2D) -> Similarity {
    similarity_with(query, target, &SimilarityConfig::default())
}

/// Evaluates the similarity of two 2D BE-strings under an explicit
/// configuration.
#[must_use]
pub fn similarity_with(
    query: &BeString2D,
    target: &BeString2D,
    cfg: &SimilarityConfig,
) -> Similarity {
    let x = AxisSimilarity::evaluate(query.x(), target.x(), cfg);
    let y = AxisSimilarity::evaluate(query.y(), target.y(), cfg);
    let score = match cfg.axis_combine {
        AxisCombine::Mean => (x.score + y.score) / 2.0,
        AxisCombine::Product => x.score * y.score,
        AxisCombine::Min => x.score.min(y.score),
    };
    Similarity { x, y, score }
}

/// Evaluates a query against a target under every transform in
/// `transforms`, returning the best-scoring transform and its similarity.
///
/// This is the paper's §4 rotation/reflection retrieval: "our approaches
/// only need to reverse the string then apply the similarity retrieval and
/// evaluation" — each candidate transform is a string reversal/axis swap
/// (see [`transformed`](crate::transform::transformed)), not a geometric
/// recomputation.
///
/// Returns `None` when `transforms` is empty.
#[must_use]
pub fn best_transform_similarity(
    query: &BeString2D,
    target: &BeString2D,
    transforms: &[Transform],
    cfg: &SimilarityConfig,
) -> Option<(Transform, Similarity)> {
    transforms
        .iter()
        .map(|&t| {
            (
                t,
                similarity_with(&crate::transform::transformed(query, t), target, cfg),
            )
        })
        .max_by(|a, b| a.1.score.total_cmp(&b.1.score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert_scene;
    use be2d_geometry::SceneBuilder;

    // Disjoint on x, overlapping on y: the two axis strings have different
    // order structure, so the scene is symbolically asymmetric under every
    // non-identity D4 element and transform tests have a unique best match.
    fn scene_ab() -> BeString2D {
        convert_scene(
            &SceneBuilder::new(100, 100)
                .object("A", (10, 40, 20, 60))
                .object("B", (50, 90, 40, 95))
                .build()
                .unwrap(),
        )
    }

    fn scene_a() -> BeString2D {
        convert_scene(
            &SceneBuilder::new(100, 100)
                .object("A", (10, 40, 20, 60))
                .build()
                .unwrap(),
        )
    }

    fn scene_ba() -> BeString2D {
        // same objects, swapped positions
        convert_scene(
            &SceneBuilder::new(100, 100)
                .object("B", (10, 40, 20, 60))
                .object("A", (50, 90, 40, 95))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn self_similarity_is_one_under_all_configs() {
        let s = scene_ab();
        for normalization in [
            Normalization::QueryCoverage,
            Normalization::TargetCoverage,
            Normalization::Dice,
        ] {
            for axis_combine in [AxisCombine::Mean, AxisCombine::Product, AxisCombine::Min] {
                for count_dummies in [true, false] {
                    let cfg = SimilarityConfig {
                        normalization,
                        axis_combine,
                        count_dummies,
                    };
                    let sim = similarity_with(&s, &s, &cfg);
                    assert!(
                        (sim.score - 1.0).abs() < 1e-12,
                        "self-similarity {cfg:?} = {}",
                        sim.score
                    );
                }
            }
        }
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let pairs = [
            (scene_a(), scene_ab()),
            (scene_ab(), scene_a()),
            (scene_ab(), scene_ba()),
        ];
        for (q, d) in pairs {
            let sim = similarity(&q, &d);
            assert!((0.0..=1.0).contains(&sim.score));
            assert!((0.0..=1.0).contains(&sim.x.score));
            assert!((0.0..=1.0).contains(&sim.y.score));
        }
    }

    #[test]
    fn partial_query_coverage_is_full_under_query_normalisation() {
        // the single-object query embeds fully in the two-object image
        let cfg = SimilarityConfig {
            normalization: Normalization::QueryCoverage,
            ..SimilarityConfig::default()
        };
        let sim = similarity_with(&scene_a(), &scene_ab(), &cfg);
        assert!(
            (sim.score - 1.0).abs() < 1e-12,
            "query fully covered: {}",
            sim.score
        );
    }

    #[test]
    fn dice_penalises_partial_matches_from_both_sides() {
        let sim_q = similarity(&scene_a(), &scene_ab());
        let sim_d = similarity(&scene_ab(), &scene_a());
        assert!(sim_q.score < 1.0);
        // Dice is symmetric
        assert!((sim_q.score - sim_d.score).abs() < 1e-12);
    }

    #[test]
    fn swapped_objects_score_below_exact_and_above_disjoint() {
        let exact = similarity(&scene_ab(), &scene_ab()).score;
        let swapped = similarity(&scene_ab(), &scene_ba()).score;
        let disjoint = similarity(
            &scene_ab(),
            &convert_scene(
                &SceneBuilder::new(100, 100)
                    .object("Z", (0, 9, 0, 9))
                    .build()
                    .unwrap(),
            ),
        )
        .score;
        assert!(swapped < exact);
        assert!(disjoint < swapped);
    }

    #[test]
    fn boundary_only_counting_changes_lengths() {
        let cfg = SimilarityConfig {
            count_dummies: false,
            ..SimilarityConfig::default()
        };
        let sim = similarity_with(&scene_ab(), &scene_ab(), &cfg);
        assert_eq!(sim.x.query_len, 4, "2 objects = 4 boundary symbols");
        assert!((sim.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn axis_combiners_order_correctly() {
        // product ≤ min ≤ mean for scores in [0,1]
        let (q, d) = (scene_ab(), scene_ba());
        let score = |combine| {
            similarity_with(
                &q,
                &d,
                &SimilarityConfig {
                    axis_combine: combine,
                    ..SimilarityConfig::default()
                },
            )
            .score
        };
        let (mean, product, min) = (
            score(AxisCombine::Mean),
            score(AxisCombine::Product),
            score(AxisCombine::Min),
        );
        assert!(product <= min + 1e-12);
        assert!(min <= mean + 1e-12);
    }

    #[test]
    fn empty_vs_empty_is_identical() {
        let e = convert_scene(&be2d_geometry::Scene::new(10, 10).unwrap());
        let sim = similarity(&e, &e);
        assert!((sim.score - 1.0).abs() < 1e-12);
        let cfg = SimilarityConfig {
            count_dummies: false,
            ..SimilarityConfig::default()
        };
        let sim = similarity_with(&e, &e, &cfg);
        assert!((sim.score - 1.0).abs() < 1e-12, "0/0 convention");
    }

    #[test]
    fn empty_vs_nonempty_boundary_only_is_zero() {
        let e = convert_scene(&be2d_geometry::Scene::new(10, 10).unwrap());
        let cfg = SimilarityConfig {
            normalization: Normalization::TargetCoverage,
            count_dummies: false,
            ..SimilarityConfig::default()
        };
        let sim = similarity_with(&e, &scene_a(), &cfg);
        assert_eq!(sim.score, 0.0);
    }

    #[test]
    fn best_transform_finds_planted_rotation() {
        use crate::transform::transformed;
        let original = scene_ab();
        let rotated = transformed(&original, Transform::Rotate90);
        // Querying with the original against the rotated copy: the best
        // transform should be Rotate90 with a perfect score.
        let (t, sim) = best_transform_similarity(
            &original,
            &rotated,
            &Transform::ALL,
            &SimilarityConfig::default(),
        )
        .unwrap();
        assert!((sim.score - 1.0).abs() < 1e-12);
        assert_eq!(t, Transform::Rotate90);
        assert!(
            best_transform_similarity(&original, &rotated, &[], &SimilarityConfig::default())
                .is_none()
        );
    }

    #[test]
    fn display_of_config_enums() {
        assert_eq!(Normalization::Dice.to_string(), "dice");
        assert_eq!(AxisCombine::Product.to_string(), "product");
    }
}
