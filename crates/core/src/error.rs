//! Error type for BE-string construction, parsing and editing.

use be2d_geometry::GeometryError;
use std::error::Error;
use std::fmt;

/// Errors produced by the BE-string model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BeStringError {
    /// A geometric precondition failed (propagated from `be2d-geometry`).
    Geometry(GeometryError),
    /// A symbol sequence violates a BE-string invariant.
    ///
    /// The invariants are: no two adjacent dummy objects, per-class
    /// begin/end balance, and non-emptiness.
    InvalidString {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A textual BE-string failed to parse.
    Parse {
        /// The offending token.
        token: String,
    },
    /// An edit addressed an object (class + boundary coordinates) that the
    /// string does not contain.
    ObjectNotFound {
        /// Class name of the missing object.
        class: String,
        /// The begin coordinate that was searched for.
        begin: i64,
        /// The end coordinate that was searched for.
        end: i64,
    },
    /// An edit would place a boundary outside the string's frame extent.
    OutOfExtent {
        /// The offending coordinate.
        coord: i64,
        /// The frame extent on this axis.
        extent: i64,
    },
}

impl fmt::Display for BeStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeStringError::Geometry(e) => write!(f, "geometry error: {e}"),
            BeStringError::InvalidString { reason } => {
                write!(f, "invalid BE-string: {reason}")
            }
            BeStringError::Parse { token } => write!(f, "cannot parse BE-string token {token:?}"),
            BeStringError::ObjectNotFound { class, begin, end } => {
                write!(
                    f,
                    "object {class} with boundaries [{begin}, {end}) not found"
                )
            }
            BeStringError::OutOfExtent { coord, extent } => {
                write!(f, "coordinate {coord} outside frame extent [0, {extent}]")
            }
        }
    }
}

impl Error for BeStringError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BeStringError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for BeStringError {
    fn from(e: GeometryError) -> Self {
        BeStringError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BeStringError::from(GeometryError::NegativeCoordinate { value: -3 });
        assert!(e.to_string().contains("geometry error"));
        assert!(e.source().is_some());

        let e = BeStringError::InvalidString {
            reason: "two adjacent dummies".into(),
        };
        assert!(e.to_string().contains("two adjacent dummies"));
        assert!(e.source().is_none());

        let e = BeStringError::ObjectNotFound {
            class: "A".into(),
            begin: 1,
            end: 5,
        };
        assert_eq!(e.to_string(), "object A with boundaries [1, 5) not found");

        let e = BeStringError::OutOfExtent {
            coord: 12,
            extent: 10,
        };
        assert!(e.to_string().contains("outside frame extent"));

        let e = BeStringError::Parse { token: "??".into() };
        assert!(e.to_string().contains("??"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BeStringError>();
    }
}
