//! Algorithms 2 and 3 — the modified Longest Common Subsequence on
//! BE-strings.
//!
//! The paper's key retrieval insight (§4): *"The LCS string implies that,
//! in query image and database image, all the spatial relationships of
//! every two objects in LCS string are the same."* Finding an LCS between
//! two BE-strings therefore measures how many objects-plus-relations the
//! two images share — in O(mn), where the classic 2-D string family needs
//! a maximum-clique search (NP-complete).
//!
//! Two modifications distinguish this from the textbook LCS:
//!
//! 1. **No consecutive dummies.** One dummy object suffices to witness
//!    "these boundaries are distinct"; letting the LCS pick two in a row
//!    would inflate scores with meaningless free-space matches. The DP
//!    table stores *signed* lengths: `w[i][j] < 0` records that the LCS
//!    realised at `(i, j)` ends with a dummy, and a diagonal ε–ε match is
//!    admitted only when `w[i-1][j-1] ≥ 0`.
//! 2. **No direction matrix.** The classic algorithm keeps a second matrix
//!    of back-pointers; Algorithm 2 evaluates the left/up inheritance
//!    *before* the diagonal and Algorithm 3 re-infers the path from the
//!    length table alone.

use crate::{BeString, BeSymbol};

/// The signed LCS length-inference table `W` of Algorithm 2.
///
/// Row `i`/column `j` correspond to the length-`i`/`j` prefixes of the
/// query/database strings; `|w[i][j]|` is the LCS length of those prefixes
/// and the sign records whether that LCS ends with a dummy object.
///
/// # Example
///
/// ```
/// use be2d_core::{BeString, LcsTable};
///
/// let q: BeString = "E A_b E A_e E".parse()?;
/// let d: BeString = "E A_b E B_b E A_e E B_e E".parse()?;
/// let table = LcsTable::build(&q, &d);
/// assert_eq!(table.length(), 5); // all of q embeds in d
/// # Ok::<(), be2d_core::BeStringError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LcsTable {
    /// Row-major `(m+1) × (n+1)` signed length table.
    w: Vec<i32>,
    /// Number of columns (`n + 1`).
    cols: usize,
    /// Query symbols (needed to print the LCS string).
    query: Vec<BeSymbol>,
}

impl LcsTable {
    /// Runs Algorithm 2 (`2D_Be_LCS_Length`) on one axis pair.
    ///
    /// Time and space are O(mn) in the string lengths; for images with
    /// `m`/`n` objects the strings have at most `4m+1` / `4n+1` symbols,
    /// so this is O(mn) in the object counts too — the complexity the
    /// paper claims.
    #[must_use]
    pub fn build(query: &BeString, database: &BeString) -> LcsTable {
        let q = query.symbols();
        let d = database.symbols();
        let (m, n) = (q.len(), d.len());
        let cols = n + 1;
        // Lines 7–11: first row and column initialised to zero.
        let mut w = vec![0i32; (m + 1) * cols];
        for i in 1..=m {
            let qi = &q[i - 1];
            let qi_is_dummy = qi.is_dummy();
            for j in 1..=n {
                let up = w[(i - 1) * cols + j];
                let left = w[i * cols + (j - 1)];
                // Lines 16–19: inherit the neighbour with the larger
                // absolute value, preferring up on ties.
                let mut cell = if up.abs() >= left.abs() { up } else { left };
                // Line 21: a match may extend the diagonal only when the
                // symbols agree and (for dummies) the diagonal LCS does not
                // already end with a dummy.
                let diag = w[(i - 1) * cols + (j - 1)];
                if qi == &d[j - 1] && (!qi_is_dummy || diag >= 0) {
                    // Lines 23–24: follow the diagonal only when strictly
                    // longer than the inherited value.
                    let candidate = diag.abs() + 1;
                    if candidate > cell.abs() {
                        // Lines 25–26: negative sign marks "ends with ε".
                        cell = if qi_is_dummy { -candidate } else { candidate };
                    }
                }
                w[i * cols + j] = cell;
            }
        }
        LcsTable {
            w,
            cols,
            query: q.to_vec(),
        }
    }

    /// The LCS length `|w[m][n]|`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.w.last().map_or(0, |v| v.unsigned_abs() as usize)
    }

    /// Raw signed cell value (row `i`, column `j`). Exposed for the
    /// algorithm-shape tests and the demo's table visualisation.
    ///
    /// # Panics
    ///
    /// Panics when the indices exceed the table dimensions.
    #[must_use]
    pub fn cell(&self, i: usize, j: usize) -> i32 {
        assert!(
            j < self.cols && i * self.cols + j < self.w.len(),
            "cell index out of range"
        );
        self.w[i * self.cols + j]
    }

    /// Number of rows (`m + 1`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.w.len() / self.cols
    }

    /// Number of columns (`n + 1`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reconstructs one LCS string — Algorithm 3 (`Print_2D_Be_LCS`),
    /// iteratively.
    ///
    /// Walks from `w[m][n]`: when the absolute value equals the upper
    /// cell's the path came from above; else when it equals the left
    /// cell's it came from the left; otherwise the cell was set by a
    /// diagonal match and its query symbol belongs to the LCS.
    #[must_use]
    pub fn lcs_string(&self) -> Vec<BeSymbol> {
        let mut out = Vec::new();
        let (mut i, mut j) = (self.rows() - 1, self.cols - 1);
        while i > 0 && j > 0 {
            let here = self.cell(i, j).abs();
            if here == self.cell(i - 1, j).abs() {
                i -= 1;
            } else if here == self.cell(i, j - 1).abs() {
                j -= 1;
            } else {
                out.push(self.query[i - 1].clone());
                i -= 1;
                j -= 1;
            }
        }
        out.reverse();
        out
    }

    /// Reconstructs the LCS with the paper's literal recursion (Algorithm
    /// 3). Provided to cross-check the iterative version; both always
    /// produce identical output (property-tested).
    #[must_use]
    pub fn lcs_string_recursive(&self) -> Vec<BeSymbol> {
        fn rec(t: &LcsTable, i: usize, j: usize, out: &mut Vec<BeSymbol>) {
            if i == 0 || j == 0 {
                return;
            }
            if t.cell(i, j).abs() == t.cell(i - 1, j).abs() {
                rec(t, i - 1, j, out);
            } else if t.cell(i, j).abs() == t.cell(i, j - 1).abs() {
                rec(t, i, j - 1, out);
            } else {
                rec(t, i - 1, j - 1, out);
                out.push(t.query[i - 1].clone());
            }
        }
        let mut out = Vec::new();
        rec(self, self.rows() - 1, self.cols - 1, &mut out);
        out
    }

    /// Number of boundary (non-dummy) symbols in the reconstructed LCS —
    /// the "objects and relations actually shared" count used by the
    /// boundary-only similarity normalisation.
    #[must_use]
    pub fn boundary_length(&self) -> usize {
        self.lcs_string().iter().filter(|s| s.is_boundary()).count()
    }

    /// Renders the signed inference table for inspection — the exact `W`
    /// of the paper's Algorithm 2, with negative entries marking cells
    /// whose canonical LCS ends in a dummy object.
    ///
    /// Intended for teaching/debugging on small strings; the output is
    /// `(m+1) × (n+1)` cells wide, so keep inputs short.
    #[must_use]
    pub fn render(&self, database: &BeString) -> String {
        let mut out = String::new();
        // header row: database symbols
        out.push_str(&format!("{:>6}{:>5}", "", "-"));
        for d in database.symbols() {
            out.push_str(&format!("{:>5}", d.to_string()));
        }
        out.push('\n');
        for i in 0..self.rows() {
            let label = if i == 0 {
                "-".to_owned()
            } else {
                self.query[i - 1].to_string()
            };
            out.push_str(&format!("{label:>6}"));
            for j in 0..self.cols {
                out.push_str(&format!("{:>5}", self.cell(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

/// Convenience wrapper: LCS length of two BE-strings (Algorithm 2).
///
/// ```
/// use be2d_core::{be_lcs_length, BeString};
///
/// let a: BeString = "E A_b E A_e E".parse()?;
/// let b: BeString = "A_b E A_e".parse()?;
/// assert_eq!(be_lcs_length(&a, &b), 3);
/// # Ok::<(), be2d_core::BeStringError>(())
/// ```
#[must_use]
pub fn be_lcs_length(query: &BeString, database: &BeString) -> usize {
    LcsTable::build(query, database).length()
}

/// Exact reference for the constrained LCS problem the paper's Algorithm
/// 2 targets: the longest common subsequence **with no two consecutive
/// dummy objects**, computed by dynamic programming over the state
/// `(i, j, last-symbol-was-ε)`.
///
/// Algorithm 2 tracks the ε-tail with a *sign bit on a single canonical
/// value per cell*, which can under-approximate: when a cell's maximal
/// LCS ends in ε but an equally long one ends in a boundary symbol, the
/// signed table remembers only one of them and may refuse a later ε
/// extension that the other would have allowed. This reference keeps
/// both states, so
/// `LcsTable::build(q, d).length() <= exact_constrained_lcs_length(q, d)`
/// always holds (property-tested), and the `exp_lcs_gap` experiment
/// measures how often and how far the heuristic falls short in practice.
///
/// O(mn) time and space, like Algorithm 2, with a 2× constant factor.
///
/// # Example
///
/// ```
/// use be2d_core::{exact_constrained_lcs_length, be_lcs_length, BeString};
///
/// let a: BeString = "E A_b E A_e E".parse()?;
/// let b: BeString = "E A_b E A_e E".parse()?;
/// assert_eq!(exact_constrained_lcs_length(&a, &b), 5);
/// assert!(be_lcs_length(&a, &b) <= exact_constrained_lcs_length(&a, &b));
/// # Ok::<(), be2d_core::BeStringError>(())
/// ```
#[must_use]
pub fn exact_constrained_lcs_length(query: &BeString, database: &BeString) -> usize {
    let q = query.symbols();
    let d = database.symbols();
    let (m, n) = (q.len(), d.len());
    let cols = n + 1;
    const NEG: i32 = i32::MIN / 2; // "state unreachable" sentinel
                                   // best[k][i][j]: longest constrained common subsequence of the
                                   // prefixes whose last picked symbol is a boundary (k = 0) or a dummy
                                   // (k = 1); the empty subsequence counts as boundary-tailed.
    let mut bound = vec![0i32; (m + 1) * cols];
    let mut dummy = vec![NEG; (m + 1) * cols];
    for i in 1..=m {
        let qi = &q[i - 1];
        let qi_is_dummy = qi.is_dummy();
        for j in 1..=n {
            let here = i * cols + j;
            let up = (i - 1) * cols + j;
            let left = i * cols + (j - 1);
            let diag = (i - 1) * cols + (j - 1);
            let mut b = bound[up].max(bound[left]);
            let mut e = dummy[up].max(dummy[left]);
            if qi == &d[j - 1] {
                if qi_is_dummy {
                    // extending with ε requires a boundary-tailed LCS
                    if bound[diag] >= 0 {
                        e = e.max(bound[diag] + 1);
                    }
                } else {
                    // boundary symbols extend either tail state
                    b = b.max(bound[diag].max(dummy[diag]) + 1);
                }
            }
            bound[here] = b;
            dummy[here] = e;
        }
    }
    let last = m * cols + n;
    bound[last].max(dummy[last]).max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boundary;

    fn s(text: &str) -> BeString {
        text.parse().unwrap()
    }

    fn is_subsequence(needle: &[BeSymbol], hay: &[BeSymbol]) -> bool {
        let mut it = hay.iter();
        needle.iter().all(|n| it.any(|h| h == n))
    }

    #[test]
    fn identical_strings_match_fully() {
        let a = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let t = LcsTable::build(&a, &a);
        assert_eq!(t.length(), a.len());
        assert_eq!(t.lcs_string(), a.symbols());
    }

    #[test]
    fn disjoint_alphabets_share_only_dummies() {
        let a = s("E A_b E A_e E");
        let b = s("E B_b E B_e E");
        // Only single (non-consecutive) dummies can match; the best common
        // subsequence alternates at most around boundary symbols, and with
        // no shared boundary symbol only one dummy can ever be picked.
        assert_eq!(be_lcs_length(&a, &b), 1);
    }

    #[test]
    fn dummy_only_match_cannot_chain() {
        let a = s("E A_b E A_e E B_b E B_e E");
        let b = s("E C_b E C_e E D_b E D_e E");
        // five dummies on each side, but consecutive dummy picks are
        // forbidden, and with no boundary symbol in between the LCS is 1.
        assert_eq!(be_lcs_length(&a, &b), 1);
    }

    #[test]
    fn dummies_may_alternate_with_boundaries() {
        let a = s("E A_b E A_e E");
        let b = s("E A_b E A_e E");
        assert_eq!(be_lcs_length(&a, &b), 5, "E A_b E A_e E is a legal LCS");
    }

    #[test]
    fn partial_object_overlap() {
        // Query: A and B with a gap. Database: A, C, B.
        let q = s("E A_b E A_e E B_b E B_e E");
        let d = s("E A_b E A_e C_b E C_e E B_b E B_e E");
        let t = LcsTable::build(&q, &d);
        // whole query embeds: every query symbol appears in order in d
        assert_eq!(t.length(), q.len());
        assert!(is_subsequence(&t.lcs_string(), d.symbols()));
    }

    #[test]
    fn relation_change_reduces_score() {
        // same objects, different relation (B left of A vs A left of B)
        let q = s("E A_b E A_e E B_b E B_e E");
        let d = s("E B_b E B_e E A_b E A_e E");
        let len = be_lcs_length(&q, &d);
        assert!(len < q.len(), "different order must not match fully");
        // A's pair or B's pair still matches with interleaved dummies:
        // E A_b E A_e E (5)
        assert_eq!(len, 5);
    }

    #[test]
    fn lengths_symmetric() {
        let q = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let d = s("E B_b E A_b E B_e C_b E C_e E A_e E");
        assert_eq!(be_lcs_length(&q, &d), be_lcs_length(&d, &q));
    }

    #[test]
    fn length_bounded_by_shorter_string() {
        let q = s("E A_b E A_e E");
        let d = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        assert!(be_lcs_length(&q, &d) <= q.len().min(d.len()));
    }

    #[test]
    fn reconstruction_matches_reported_length_and_is_common() {
        let q = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let d = s("E B_b E A_b E B_e C_b E C_e E A_e E");
        let t = LcsTable::build(&q, &d);
        let lcs = t.lcs_string();
        assert_eq!(lcs.len(), t.length());
        assert!(is_subsequence(&lcs, q.symbols()));
        assert!(is_subsequence(&lcs, d.symbols()));
    }

    #[test]
    fn reconstruction_never_has_adjacent_dummies() {
        let q = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let d = s("E C_b E C_e E A_b E A_e E B_b E B_e E");
        let lcs = LcsTable::build(&q, &d).lcs_string();
        assert!(
            lcs.windows(2)
                .all(|w| !(w[0].is_dummy() && w[1].is_dummy())),
            "no two consecutive dummies: {lcs:?}"
        );
    }

    #[test]
    fn recursive_and_iterative_reconstruction_agree() {
        let pairs = [
            ("E A_b E A_e E", "E A_b E A_e E"),
            (
                "E A_b E B_b E A_e C_b E C_e E B_e E",
                "E B_b E A_b E B_e C_b E C_e E A_e E",
            ),
            ("A_b E A_e", "E A_b E A_e E"),
            ("E A_b E A_e E", "E B_b E B_e E"),
        ];
        for (a, b) in pairs {
            let t = LcsTable::build(&s(a), &s(b));
            assert_eq!(t.lcs_string(), t.lcs_string_recursive(), "{a} vs {b}");
        }
    }

    #[test]
    fn table_shape_matches_paper() {
        // strings of an m-object image have ≤ 4m+1 symbols; the table is
        // (len_q + 1) × (len_d + 1).
        let q = s("E A_b E A_e E");
        let d = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let t = LcsTable::build(&q, &d);
        assert_eq!(t.rows(), q.len() + 1);
        assert_eq!(t.cols(), d.len() + 1);
        // first row/column all zero
        for i in 0..t.rows() {
            assert_eq!(t.cell(i, 0), 0);
        }
        for j in 0..t.cols() {
            assert_eq!(t.cell(0, j), 0);
        }
    }

    #[test]
    fn sign_tracks_dummy_tail() {
        let q = s("A_b E A_e");
        let d = s("A_b E A_e");
        let t = LcsTable::build(&q, &d);
        // cell (2,2): LCS of "A_b E" and "A_b E" = "A_b E", ends with ε -> negative
        assert_eq!(t.cell(2, 2), -2);
        // cell (3,3): full match length 3, ends with boundary -> positive
        assert_eq!(t.cell(3, 3), 3);
    }

    #[test]
    fn boundary_length_excludes_dummies() {
        let q = s("E A_b E A_e E");
        let t = LcsTable::build(&q, &q);
        assert_eq!(t.length(), 5);
        assert_eq!(t.boundary_length(), 2);
    }

    #[test]
    fn empty_axis_queries() {
        let e = BeString::empty_axis();
        let d = s("E A_b E A_e E");
        assert_eq!(be_lcs_length(&e, &d), 1, "the single dummy matches");
        assert_eq!(be_lcs_length(&e, &e), 1);
    }

    #[test]
    fn mirrored_pair_keeps_palindromic_score() {
        // mirroring both strings preserves LCS length
        let q = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let d = s("E B_b E A_b E B_e C_b E C_e E A_e E");
        assert_eq!(
            be_lcs_length(&q, &d),
            be_lcs_length(&q.mirrored(), &d.mirrored()),
            "mirroring is a bijection on common subsequences"
        );
    }

    #[test]
    fn render_shows_table_with_signs() {
        let q = s("A_b E A_e");
        let t = LcsTable::build(&q, &q);
        let rendered = t.render(&q);
        // header + 4 rows
        assert_eq!(rendered.lines().count(), 5);
        assert!(rendered.contains("A_b"));
        assert!(rendered.contains("-2"), "negative dummy-tail cell visible");
        assert!(rendered
            .lines()
            .last()
            .expect("rows")
            .trim_end()
            .ends_with('3'));
    }

    #[test]
    fn exact_reference_matches_known_cases() {
        let cases = [
            ("E A_b E A_e E", "E A_b E A_e E", 5),
            ("E A_b E A_e E", "E B_b E B_e E", 1),
            ("A_b E A_e", "A_b E A_e", 3),
            ("E A_b E A_e E B_b E B_e E", "E C_b E C_e E D_b E D_e E", 1),
        ];
        for (a, b, expected) in cases {
            assert_eq!(
                exact_constrained_lcs_length(&s(a), &s(b)),
                expected,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn exact_reference_dominates_paper_dp() {
        let strings = [
            "E A_b E A_e E",
            "E A_b E B_b E A_e C_b E C_e E B_e E",
            "E B_b E A_b E B_e C_b E C_e E A_e E",
            "A_b E A_e B_b E B_e",
            "E C_b E C_e E A_b E A_e E B_b E B_e E",
        ];
        for a in &strings {
            for b in &strings {
                let paper = be_lcs_length(&s(a), &s(b));
                let exact = exact_constrained_lcs_length(&s(a), &s(b));
                assert!(paper <= exact, "{a} vs {b}: paper {paper} > exact {exact}");
            }
        }
    }

    #[test]
    fn exact_reference_is_symmetric_and_bounded() {
        let a = s("E A_b E B_b E A_e C_b E C_e E B_e E");
        let b = s("E C_b E C_e E A_b E A_e E B_b E B_e E");
        assert_eq!(
            exact_constrained_lcs_length(&a, &b),
            exact_constrained_lcs_length(&b, &a)
        );
        assert!(exact_constrained_lcs_length(&a, &b) <= a.len().min(b.len()));
        assert_eq!(exact_constrained_lcs_length(&a, &a), a.len());
    }

    #[test]
    fn same_class_begin_end_are_distinct_symbols() {
        let q = s("A_b E A_e");
        let d = s("E A_b E A_e E");
        let t = LcsTable::build(&q, &d);
        assert_eq!(t.length(), 3);
        let lcs = t.lcs_string();
        assert_eq!(lcs[0].boundary(), Some(Boundary::Begin));
        assert_eq!(lcs[2].boundary(), Some(Boundary::End));
    }
}
