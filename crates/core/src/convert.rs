//! Algorithm 1 — `Convert_2D_Be_String`: scene → 2D BE-string.
//!
//! The paper's Algorithm 1 takes the object identifiers and MBR boundary
//! coordinate arrays of an image and produces the `(u, v)` string pair. The
//! implementation lives in [`SymbolicImage`]; this module is the thin
//! public face plus the conversion contract tests, including the Figure 1
//! worked example of §3.1.

use crate::{BeString, BeString2D, SymbolicImage};
use be2d_geometry::Scene;

/// Converts a scene into its 2D BE-string (Algorithm 1 end-to-end).
///
/// Sorting the `2n` boundary events per axis dominates the cost:
/// O(n log n) time and O(n) space; every other step is a linear scan,
/// matching the complexity analysis of §3.2.
///
/// # Example
///
/// The worked example of §3.1 (Figure 1):
///
/// ```
/// use be2d_core::convert_scene;
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (10, 50, 25, 85))
///     .object("B", (30, 90, 5, 45))
///     .object("C", (50, 70, 45, 65))
///     .build()?;
/// let s = convert_scene(&scene);
/// assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");
/// assert_eq!(s.y().to_string(), "E B_b E A_b E B_e C_b E C_e E A_e E");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn convert_scene(scene: &Scene) -> BeString2D {
    SymbolicImage::from_scene(scene).to_be_string_2d()
}

/// Converts only the x-axis projection of a scene.
#[must_use]
pub fn convert_scene_x(scene: &Scene) -> BeString {
    SymbolicImage::from_scene(scene).x().to_be_string()
}

/// Converts only the y-axis projection of a scene.
#[must_use]
pub fn convert_scene_y(scene: &Scene) -> BeString {
    SymbolicImage::from_scene(scene).y().to_be_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::{ObjectClass, Rect, SceneBuilder};

    /// The three-object image of Figure 1, with coordinates chosen to
    /// reproduce §3.1's description exactly: on x, `A_e` and `C_b` project
    /// to the same location; on y, `B_e` and `C_b` coincide; every other
    /// adjacent pair is distinct, and free space borders all four edges.
    fn figure1() -> be2d_geometry::Scene {
        SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85))
            .object("B", (30, 90, 5, 45))
            .object("C", (50, 70, 45, 65))
            .build()
            .unwrap()
    }

    #[test]
    fn figure1_worked_example() {
        let s = convert_scene(&figure1());
        // (u, v) = (EA_b EB_b EA_e C_b EC_e EB_e E, EB_b EA_b EB_e C_b EC_e EA_e E)
        assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");
        assert_eq!(s.y().to_string(), "E B_b E A_b E B_e C_b E C_e E A_e E");
        // d3 on x is the null string (A_e and C_b coincide); similarly on y.
        assert_eq!(s.x().dummy_count(), 6);
        assert_eq!(s.y().dummy_count(), 6);
    }

    #[test]
    fn empty_scene_is_single_dummy_per_axis() {
        let scene = be2d_geometry::Scene::new(10, 10).unwrap();
        let s = convert_scene(&scene);
        assert_eq!(s.x().to_string(), "E");
        assert_eq!(s.y().to_string(), "E");
        assert_eq!(s.total_len(), 2);
    }

    #[test]
    fn single_object_with_margins() {
        let scene = SceneBuilder::new(10, 10)
            .object("A", (2, 5, 0, 10))
            .build()
            .unwrap();
        let s = convert_scene(&scene);
        assert_eq!(s.x().to_string(), "E A_b E A_e E");
        assert_eq!(s.y().to_string(), "A_b E A_e");
    }

    #[test]
    fn axis_helpers_match_full_conversion() {
        let scene = figure1();
        let s = convert_scene(&scene);
        assert_eq!(&convert_scene_x(&scene), s.x());
        assert_eq!(&convert_scene_y(&scene), s.y());
    }

    #[test]
    fn storage_bounds_hold_for_dense_grid() {
        // Worst case: all boundaries distinct, margins everywhere -> 4n+1.
        let mut scene = be2d_geometry::Scene::new(1000, 1000).unwrap();
        for i in 0..10 {
            let base = 1 + i * 90;
            scene
                .add(
                    ObjectClass::new("X"),
                    Rect::new(base, base + 40, base, base + 40).unwrap(),
                )
                .unwrap();
        }
        let s = convert_scene(&scene);
        assert_eq!(s.x().len(), 4 * 10 + 1);
        assert_eq!(s.y().len(), 4 * 10 + 1);
    }

    #[test]
    fn storage_lower_bound_for_identical_stack() {
        // Best case: identical whole-frame objects -> 2n+1.
        let mut scene = be2d_geometry::Scene::new(100, 100).unwrap();
        for _ in 0..7 {
            scene
                .add(ObjectClass::new("A"), Rect::new(0, 100, 0, 100).unwrap())
                .unwrap();
        }
        let s = convert_scene(&scene);
        assert_eq!(s.x().len(), 2 * 7 + 1);
        assert_eq!(s.y().len(), 2 * 7 + 1);
    }

    #[test]
    fn duplicate_classes_are_represented_individually() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 10, 0, 10))
            .object("A", (20, 30, 20, 30))
            .build()
            .unwrap();
        let s = convert_scene(&scene);
        assert_eq!(s.x().to_string(), "A_b E A_e E A_b E A_e E");
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn conversion_is_translation_sensitive_but_order_preserving() {
        // The model captures relative order, not absolute positions —
        // translating objects without changing boundary order and edge gaps
        // yields the identical string.
        let a = SceneBuilder::new(100, 100)
            .object("A", (10, 20, 10, 20))
            .object("B", (30, 40, 30, 40))
            .build()
            .unwrap();
        let b = SceneBuilder::new(100, 100)
            .object("A", (5, 25, 15, 22))
            .object("B", (40, 60, 35, 50))
            .build()
            .unwrap();
        assert_eq!(convert_scene(&a), convert_scene(&b));
    }
}
