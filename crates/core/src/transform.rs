//! §4 — rotation and reflection retrieval by string reversal.
//!
//! The paper: *"For the similarity retrieval of rotation and reflection,
//! our approaches only need to reverse the string then apply the
//! similarity retrieval and evaluation […] This process does not need any
//! conversion of spatial operators."* The earlier 2-D string variants must
//! rewrite every spatial operator through a conversion table (cf. Chien,
//! 1998); the BE-string has no operators, so a mirror is literally the
//! reversed string with begin/end roles swapped.
//!
//! The derivation, with the frame `W × H`, origin bottom-left:
//!
//! | transform        | new x-string      | new y-string      |
//! |------------------|-------------------|-------------------|
//! | identity         | `u`               | `v`               |
//! | rotate 90° cw    | `v`               | `rev(u)`          |
//! | rotate 180°      | `rev(u)`          | `rev(v)`          |
//! | rotate 270° cw   | `rev(v)`          | `u`               |
//! | reflect x-axis   | `u`               | `rev(v)`          |
//! | reflect y-axis   | `rev(u)`          | `v`               |
//! | transpose        | `v`               | `u`               |
//! | anti-transpose   | `rev(v)`          | `rev(u)`          |
//!
//! where `rev` is [`BeString::mirrored`]: reverse the symbols and swap
//! `_b`/`_e`. The property tests at the bottom verify that this table
//! commutes with the geometric [`Transform`](be2d_geometry::Transform) action on scenes for every
//! group element — the central §4 correctness claim.

use crate::BeString2D;
use be2d_geometry::Transform;

/// Applies a D4 transform to a 2D BE-string by string reversal (§4).
///
/// O(m) in the string length — no geometry, no operator conversion.
///
/// # Example
///
/// ```
/// use be2d_core::{convert_scene, transformed};
/// use be2d_geometry::{SceneBuilder, Transform};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(100, 50).object("A", (10, 30, 5, 20)).build()?;
/// let symbolic = transformed(&convert_scene(&scene), Transform::Rotate90);
/// let geometric = convert_scene(&scene.transformed(Transform::Rotate90));
/// assert_eq!(symbolic, geometric);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn transformed(s: &BeString2D, t: Transform) -> BeString2D {
    let (x, y) = (s.x(), s.y());
    let (nx, ny) = match t {
        Transform::Identity => (x.clone(), y.clone()),
        Transform::Rotate90 => (y.clone(), x.mirrored()),
        Transform::Rotate180 => (x.mirrored(), y.mirrored()),
        Transform::Rotate270 => (y.mirrored(), x.clone()),
        Transform::ReflectX => (x.clone(), y.mirrored()),
        Transform::ReflectY => (x.mirrored(), y.clone()),
        Transform::Transpose => (y.clone(), x.clone()),
        Transform::AntiTranspose => (y.mirrored(), x.mirrored()),
    };
    BeString2D::new_unchecked(nx, ny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{convert_scene, SymbolicImage};
    use be2d_geometry::{Scene, SceneBuilder};

    fn scenes() -> Vec<Scene> {
        vec![
            // asymmetric three-object scene (Figure 1)
            SceneBuilder::new(100, 100)
                .object("A", (10, 50, 25, 85))
                .object("B", (30, 90, 5, 45))
                .object("C", (50, 70, 45, 65))
                .build()
                .unwrap(),
            // non-square frame
            SceneBuilder::new(120, 40)
                .object("A", (0, 30, 0, 40))
                .object("B", (30, 120, 10, 25))
                .build()
                .unwrap(),
            // shared boundaries and duplicate classes
            SceneBuilder::new(60, 60)
                .object("A", (0, 20, 0, 20))
                .object("A", (20, 40, 20, 40))
                .object("B", (20, 40, 0, 20))
                .build()
                .unwrap(),
            // empty scene
            Scene::new(10, 10).unwrap(),
        ]
    }

    #[test]
    fn symbolic_transform_commutes_with_geometric() {
        for scene in scenes() {
            let s = convert_scene(&scene);
            for t in Transform::ALL {
                let symbolic = transformed(&s, t);
                let geometric = convert_scene(&scene.transformed(t));
                assert_eq!(symbolic, geometric, "transform {t} on\n{scene}");
            }
        }
    }

    #[test]
    fn symbolic_image_transform_commutes_with_geometric() {
        for scene in scenes() {
            let img = SymbolicImage::from_scene(&scene);
            for t in Transform::ALL {
                let symbolic = img.transformed(t);
                let geometric = SymbolicImage::from_scene(&scene.transformed(t));
                assert_eq!(symbolic, geometric, "transform {t}");
            }
        }
    }

    #[test]
    fn transform_composition_matches_group() {
        let s = convert_scene(&scenes()[0]);
        for a in Transform::ALL {
            for b in Transform::ALL {
                let seq = transformed(&transformed(&s, a), b);
                let comp = transformed(&s, a.then(b));
                assert_eq!(seq, comp, "{a} then {b}");
            }
        }
    }

    #[test]
    fn transform_then_inverse_is_identity() {
        let s = convert_scene(&scenes()[0]);
        for t in Transform::ALL {
            assert_eq!(transformed(&transformed(&s, t), t.inverse()), s, "{t}");
        }
    }

    #[test]
    fn rotation_preserves_length_and_objects() {
        let s = convert_scene(&scenes()[0]);
        for t in Transform::ALL {
            let r = transformed(&s, t);
            assert_eq!(r.total_len(), s.total_len(), "{t}");
            assert_eq!(r.object_count(), s.object_count(), "{t}");
            assert_eq!(r.class_counts(), s.class_counts(), "{t}");
        }
    }
}
