//! The 2D BE-string representation: validated symbol sequences.

use crate::{BeStringError, BeSymbol, Boundary};
use be2d_geometry::ObjectClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A one-axis BE-string: the projection of a symbolic picture onto the x-
/// or y-axis (§3.1 of the paper).
///
/// A valid BE-string satisfies three invariants, enforced by
/// [`BeString::new`]:
///
/// 1. **No two adjacent dummies.** One dummy is sufficient to witness that
///    two boundary projections are distinct; the conversion algorithm never
///    emits two in a row, and the modified LCS relies on this.
/// 2. **Begin/end balance.** Every class has equally many begin and end
///    symbols, and in every prefix the number of `C_e` symbols never
///    exceeds the number of `C_b` symbols for any class `C` — any string
///    produced from real MBRs has this shape.
/// 3. **Non-emptiness.** The string of an *empty* image is the single dummy
///    `E` (the whole axis is free space), never the empty sequence.
///
/// For an image with `n` objects the length is between `2n + 1` and
/// `4n + 1` symbols — the paper's O(n) storage bound, which
/// [`BeString::len`] lets experiments verify directly.
///
/// # Example
///
/// ```
/// use be2d_core::BeString;
///
/// let s: BeString = "E A_b E B_b E A_e C_b E C_e E B_e E".parse()?;
/// assert_eq!(s.len(), 12);
/// assert_eq!(s.object_count(), 3);
/// # Ok::<(), be2d_core::BeStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BeString {
    symbols: Vec<BeSymbol>,
}

impl BeString {
    /// Creates a BE-string from a symbol sequence, validating the
    /// invariants listed in the type documentation.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::InvalidString`] when any invariant is
    /// violated.
    pub fn new(symbols: Vec<BeSymbol>) -> Result<Self, BeStringError> {
        Self::validate(&symbols)?;
        Ok(BeString { symbols })
    }

    /// Creates a BE-string without validation.
    ///
    /// Only for use by the conversion and transform code in this crate,
    /// which construct strings that are valid by construction; debug builds
    /// still assert the invariants.
    pub(crate) fn from_symbols_unchecked(symbols: Vec<BeSymbol>) -> Self {
        debug_assert!(
            Self::validate(&symbols).is_ok(),
            "unchecked BE-string invalid"
        );
        BeString { symbols }
    }

    /// The BE-string of an empty axis: a single dummy.
    #[must_use]
    pub fn empty_axis() -> Self {
        BeString {
            symbols: vec![BeSymbol::Dummy],
        }
    }

    fn validate(symbols: &[BeSymbol]) -> Result<(), BeStringError> {
        if symbols.is_empty() {
            return Err(BeStringError::InvalidString {
                reason: "empty symbol sequence (an empty axis is the single dummy E)".into(),
            });
        }
        let mut balance: HashMap<&ObjectClass, i64> = HashMap::new();
        let mut prev_dummy = false;
        for s in symbols {
            match s {
                BeSymbol::Dummy => {
                    if prev_dummy {
                        return Err(BeStringError::InvalidString {
                            reason: "two adjacent dummy objects".into(),
                        });
                    }
                    prev_dummy = true;
                }
                BeSymbol::Bound { class, boundary } => {
                    prev_dummy = false;
                    let e = balance.entry(class).or_insert(0);
                    match boundary {
                        Boundary::Begin => *e += 1,
                        Boundary::End => {
                            *e -= 1;
                            if *e < 0 {
                                return Err(BeStringError::InvalidString {
                                    reason: format!(
                                        "end boundary of class {class} before its begin"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        if let Some((class, _)) = balance.iter().find(|(_, v)| **v != 0) {
            return Err(BeStringError::InvalidString {
                reason: format!("unbalanced begin/end symbols for class {class}"),
            });
        }
        Ok(())
    }

    /// The symbols in order.
    #[must_use]
    pub fn symbols(&self) -> &[BeSymbol] {
        &self.symbols
    }

    /// Number of symbols, **including** dummies (the paper's storage unit).
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the string contains no symbols. Always `false` for valid
    /// strings (the empty axis is one dummy) — provided for API
    /// completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Number of boundary (non-dummy) symbols: `2n` for `n` objects.
    #[must_use]
    pub fn boundary_count(&self) -> usize {
        self.symbols.iter().filter(|s| s.is_boundary()).count()
    }

    /// Number of dummy symbols.
    #[must_use]
    pub fn dummy_count(&self) -> usize {
        self.symbols.iter().filter(|s| s.is_dummy()).count()
    }

    /// Number of objects represented (`boundary_count / 2`).
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.boundary_count() / 2
    }

    /// Iterates over the symbols.
    pub fn iter(&self) -> std::slice::Iter<'_, BeSymbol> {
        self.symbols.iter()
    }

    /// The mirrored string: symbols reversed and begin/end boundaries
    /// swapped.
    ///
    /// This is the paper's §4 string reversal: mirroring an axis
    /// (`x ↦ X_max − x`) reverses the order of the boundary events and
    /// turns every begin boundary into an end boundary and vice versa,
    /// while free-space dummies keep their relative positions. The result
    /// is exactly the BE-string of the mirrored image, which the property
    /// tests in `be2d-core::transform` verify.
    ///
    /// ```
    /// use be2d_core::BeString;
    /// let s: BeString = "E A_b A_e B_b E B_e".parse()?;
    /// assert_eq!(s.mirrored().to_string(), "B_b E B_e A_b A_e E");
    /// assert_eq!(s.mirrored().mirrored(), s);
    /// # Ok::<(), be2d_core::BeStringError>(())
    /// ```
    #[must_use]
    pub fn mirrored(&self) -> BeString {
        let symbols = self.symbols.iter().rev().map(BeSymbol::flipped).collect();
        BeString::from_symbols_unchecked(symbols)
    }

    /// The multiset of classes appearing in the string, with object counts.
    #[must_use]
    pub fn class_counts(&self) -> HashMap<ObjectClass, usize> {
        let mut counts = HashMap::new();
        for s in &self.symbols {
            if let BeSymbol::Bound {
                class,
                boundary: Boundary::Begin,
            } = s
            {
                *counts.entry(class.clone()).or_insert(0) += 1;
            }
        }
        counts
    }
}

impl fmt::Display for BeString {
    /// Space-separated token rendering, e.g. `E A_b E B_b E A_e C_b E`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for BeString {
    type Err = BeStringError;

    /// Parses the space-separated token rendering produced by `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let symbols = s
            .split_whitespace()
            .map(BeSymbol::parse_token)
            .collect::<Result<Vec<_>, _>>()?;
        BeString::new(symbols)
    }
}

impl<'a> IntoIterator for &'a BeString {
    type Item = &'a BeSymbol;
    type IntoIter = std::slice::Iter<'a, BeSymbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter()
    }
}

/// A full 2D BE-string: the pair `(u, v)` of axis strings (§3.1).
///
/// # Example
///
/// ```
/// use be2d_core::BeString2D;
///
/// let s = BeString2D::parse(
///     "E A_b E B_b E A_e C_b E C_e E B_e E",
///     "E B_b E A_b E B_e C_b E C_e E A_e E",
/// )?;
/// assert_eq!(s.x().object_count(), 3);
/// assert_eq!(s.y().object_count(), 3);
/// # Ok::<(), be2d_core::BeStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BeString2D {
    x: BeString,
    y: BeString,
}

impl BeString2D {
    /// Combines two axis strings into a 2D BE-string.
    ///
    /// # Errors
    ///
    /// Returns [`BeStringError::InvalidString`] when the two axes disagree
    /// on the multiset of object classes — both projections must describe
    /// the same set of objects.
    pub fn new(x: BeString, y: BeString) -> Result<Self, BeStringError> {
        if x.class_counts() != y.class_counts() {
            return Err(BeStringError::InvalidString {
                reason: "x and y strings describe different object multisets".into(),
            });
        }
        Ok(BeString2D { x, y })
    }

    pub(crate) fn new_unchecked(x: BeString, y: BeString) -> Self {
        debug_assert_eq!(x.class_counts(), y.class_counts());
        BeString2D { x, y }
    }

    /// Parses both axis strings from their textual renderings.
    ///
    /// # Errors
    ///
    /// Propagates parse and validation errors.
    pub fn parse(x: &str, y: &str) -> Result<Self, BeStringError> {
        BeString2D::new(x.parse()?, y.parse()?)
    }

    /// The x-axis string (the paper's `u`).
    #[must_use]
    pub fn x(&self) -> &BeString {
        &self.x
    }

    /// The y-axis string (the paper's `v`).
    #[must_use]
    pub fn y(&self) -> &BeString {
        &self.y
    }

    /// Number of objects represented.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.x.object_count()
    }

    /// Total storage units (symbols over both axes).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.x.len() + self.y.len()
    }

    /// Class multiset of the represented objects.
    #[must_use]
    pub fn class_counts(&self) -> HashMap<ObjectClass, usize> {
        self.x.class_counts()
    }
}

impl fmt::Display for BeString2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(token: &str) -> BeSymbol {
        BeSymbol::parse_token(token).unwrap()
    }

    #[test]
    fn valid_string_parses() {
        let s: BeString = "E A_b E A_e E".parse().unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.boundary_count(), 2);
        assert_eq!(s.dummy_count(), 3);
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn rejects_adjacent_dummies() {
        let err = BeString::new(vec![BeSymbol::Dummy, BeSymbol::Dummy]);
        assert!(matches!(err, Err(BeStringError::InvalidString { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert!(BeString::new(vec![]).is_err());
        assert!("".parse::<BeString>().is_err());
    }

    #[test]
    fn rejects_unbalanced() {
        assert!("A_b".parse::<BeString>().is_err());
        assert!("A_e A_b".parse::<BeString>().is_err(), "end before begin");
        assert!("A_b A_e A_e".parse::<BeString>().is_err());
        assert!("A_b B_e".parse::<BeString>().is_err());
    }

    #[test]
    fn accepts_same_class_nesting_and_chains() {
        // two objects of class A: [0,10] and [2,5]
        assert!("A_b E A_b E A_e E A_e".parse::<BeString>().is_ok());
        // meeting chain A[0,5], A[5,9]
        assert!("A_b E A_e A_b E A_e".parse::<BeString>().is_ok());
    }

    #[test]
    fn empty_axis_is_single_dummy() {
        let s = BeString::empty_axis();
        assert_eq!(s.len(), 1);
        assert_eq!(s.object_count(), 0);
        assert_eq!(s.to_string(), "E");
    }

    #[test]
    fn display_parse_roundtrip() {
        let text = "E A_b E B_b E A_e C_b E C_e E B_e E";
        let s: BeString = text.parse().unwrap();
        assert_eq!(s.to_string(), text);
        let again: BeString = s.to_string().parse().unwrap();
        assert_eq!(again, s);
    }

    #[test]
    fn mirrored_is_involution_and_flips() {
        let s: BeString = "E A_b E B_b E A_e C_b E C_e E B_e E".parse().unwrap();
        let m = s.mirrored();
        assert_eq!(m.to_string(), "E B_b E C_b E C_e A_b E B_e E A_e E");
        assert_eq!(m.mirrored(), s);
        assert_eq!(m.len(), s.len());
        assert_eq!(m.object_count(), s.object_count());
    }

    #[test]
    fn class_counts() {
        let s: BeString = "A_b E A_b E A_e E A_e B_b E B_e".parse().unwrap();
        let counts = s.class_counts();
        assert_eq!(counts[&ObjectClass::new("A")], 2);
        assert_eq!(counts[&ObjectClass::new("B")], 1);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn iteration_yields_symbols() {
        let s: BeString = "E A_b A_e".parse().unwrap();
        let v: Vec<_> = s.iter().cloned().collect();
        assert_eq!(v, vec![BeSymbol::Dummy, sym("A_b"), sym("A_e")]);
        let v2: Vec<_> = (&s).into_iter().cloned().collect();
        assert_eq!(v, v2);
    }

    #[test]
    fn bestring2d_requires_matching_classes() {
        let x: BeString = "A_b E A_e".parse().unwrap();
        let y_ok: BeString = "E A_b A_e E".parse().unwrap();
        let y_bad: BeString = "B_b E B_e".parse().unwrap();
        assert!(BeString2D::new(x.clone(), y_ok).is_ok());
        assert!(BeString2D::new(x, y_bad).is_err());
    }

    #[test]
    fn bestring2d_accessors_and_display() {
        let s = BeString2D::parse("A_b E A_e", "E A_b A_e E").unwrap();
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.total_len(), 7);
        assert_eq!(s.to_string(), "(A_b E A_e, E A_b A_e E)");
        assert_eq!(s.class_counts()[&ObjectClass::new("A")], 1);
    }
}
