//! # be2d-core — the 2D BE-string spatial relation model
//!
//! A faithful, from-scratch reproduction of the system proposed in
//! *"Image Indexing and Similarity Retrieval Based on A New Spatial
//! Relation Model"* (Ying-Hong Wang, 2001):
//!
//! * the **2D BE-string** representation (§3): an icon object is
//!   represented by its MBR begin/end boundary symbols; *dummy objects*
//!   `E` (ε) — not spatial operators — encode whether adjacent boundary
//!   projections are distinct ([`BeString`], [`BeString2D`],
//!   [`BeSymbol`]);
//! * **Algorithm 1** `Convert_2D_Be_String` (§3.2): O(n log n) conversion
//!   of an image's object/MBR list into the string pair
//!   ([`convert_scene`], [`SymbolicImage`]);
//! * incremental **maintenance** (§3.2): binary-search insertion and
//!   sequential-search deletion of objects on the coordinate-annotated
//!   string ([`AnnotatedBeString`]);
//! * **Algorithms 2 & 3**, the **modified LCS** (§4): O(mn) signed-table
//!   longest-common-subsequence that never picks two consecutive dummies,
//!   plus path reconstruction without a direction matrix ([`LcsTable`],
//!   [`be_lcs_length`]);
//! * the **similarity evaluation process** (§4): graded `[0, 1]` scores
//!   supporting partial object/relation matches ([`similarity`],
//!   [`SimilarityConfig`]);
//! * **rotation/reflection retrieval by string reversal** (§4):
//!   [`transformed`] applies any D4 symmetry to a BE-string in O(m).
//!
//! # Quickstart
//!
//! ```
//! use be2d_core::{convert_scene, similarity};
//! use be2d_geometry::SceneBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The worked example of the paper's Figure 1.
//! let scene = SceneBuilder::new(100, 100)
//!     .object("A", (10, 50, 25, 85))
//!     .object("B", (30, 90, 5, 45))
//!     .object("C", (50, 70, 45, 65))
//!     .build()?;
//! let s = convert_scene(&scene);
//! assert_eq!(s.x().to_string(), "E A_b E B_b E A_e C_b E C_e E B_e E");
//!
//! // A partial query (only A and B) still scores high.
//! let query = convert_scene(
//!     &SceneBuilder::new(100, 100)
//!         .object("A", (10, 50, 25, 85))
//!         .object("B", (30, 90, 5, 45))
//!         .build()?,
//! );
//! let sim = similarity(&query, &s);
//! assert!(sim.score > 0.7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotated;
mod bestring;
mod convert;
mod error;
mod lcs;
mod matrix;
mod similarity;
mod symbol;
/// Rotation/reflection retrieval by string reversal (§4).
pub mod transform;

pub use annotated::{AnnotatedBeString, BoundaryEvent, SymbolicImage};
pub use bestring::{BeString, BeString2D};
pub use convert::{convert_scene, convert_scene_x, convert_scene_y};
pub use error::BeStringError;
pub use lcs::{be_lcs_length, exact_constrained_lcs_length, LcsTable};
pub use matrix::{similarity_matrix, threshold_clusters};
pub use similarity::{
    best_transform_similarity, similarity, similarity_with, AxisCombine, AxisSimilarity,
    Normalization, Similarity, SimilarityConfig,
};
pub use symbol::{BeSymbol, Boundary};
pub use transform::transformed;
