//! End-to-end tests of the observability surface: `/v1/metrics`
//! exposition, opt-in query tracing, the slow-query ring, and the WAL
//! checkpoint endpoint — all over real TCP sockets.

use be2d_server::client::Client;
use be2d_server::{Server, ServerConfig, ServerHandle};
use serde::{Deserialize, Value};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    runner: Option<JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    fn start(config: ServerConfig) -> RunningServer {
        let server = Server::bind(config).expect("bind ephemeral port");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());
        RunningServer {
            addr,
            handle,
            runner: Some(runner),
        }
    }

    fn client(&self) -> Client {
        Client::new(self.addr, Duration::from_secs(10))
    }

    fn stop(mut self) {
        self.handle.shutdown();
        self.runner
            .take()
            .expect("still running")
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(runner) = self.runner.take() {
            self.handle.shutdown();
            let _ = runner.join();
        }
    }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        shards: 2,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

const LEFT_SCENE: &str = r#"{"width":100,"height":100,"objects":[
    {"class":"A","mbr":[10,30,40,60]},{"class":"B","mbr":[60,85,40,60]}]}"#;

/// Looks a key up in a vendored-serde JSON map.
fn lookup<'v>(value: &'v Value, key: &str) -> Option<&'v Value> {
    value
        .as_map()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn number(value: &Value, key: &str) -> f64 {
    f64::from_value(lookup(value, key).unwrap_or_else(|| panic!("{key} present")))
        .unwrap_or_else(|_| panic!("{key} is a number"))
}

fn string(value: &Value, key: &str) -> String {
    String::from_value(lookup(value, key).unwrap_or_else(|| panic!("{key} present")))
        .unwrap_or_else(|_| panic!("{key} is a string"))
}

fn insert_corpus(client: &mut Client, n: usize) {
    for i in 0..n {
        let response = client
            .request(
                "POST",
                "/v1/images",
                &format!(r#"{{"name":"img-{i}","scene":{LEFT_SCENE}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 201, "{}", response.text());
    }
}

/// `"trace": true` returns a per-stage breakdown whose stages nest
/// inside the total — and the hit list is byte-identical to the
/// untraced response, so tracing cannot perturb rankings.
#[test]
fn traced_search_breaks_down_stages_without_changing_rankings() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();
    insert_corpus(&mut client, 12);

    let untraced = client
        .request(
            "POST",
            "/v1/search",
            &format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":5}}}}"#),
        )
        .unwrap();
    assert_eq!(untraced.status, 200);
    let traced = client
        .request(
            "POST",
            "/v1/search",
            &format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":5}},"trace":true}}"#),
        )
        .unwrap();
    assert_eq!(traced.status, 200);

    // Byte-identical hits: the traced body is the untraced body with a
    // `"trace"` object appended — scores serialise from the same bits.
    let untraced_text = untraced.text();
    let hits_prefix = untraced_text
        .strip_suffix('}')
        .expect("untraced body is a JSON object");
    let traced_text = traced.text();
    assert!(
        traced_text.starts_with(hits_prefix),
        "hit lists differ:\n  untraced: {untraced_text}\n  traced:   {traced_text}"
    );

    let body: Value = serde_json::from_str(&traced_text).unwrap();
    let trace = lookup(&body, "trace").expect("trace section");
    let planner = number(trace, "planner_ms");
    let scatter = number(trace, "scatter_ms");
    let gather = number(trace, "gather_ms");
    let total = number(trace, "total_ms");
    assert!(planner >= 0.0 && scatter >= 0.0 && gather >= 0.0);
    assert!(
        planner + scatter + gather <= total + 1e-9,
        "stages exceed the total: {planner} + {scatter} + {gather} > {total}"
    );
    let shards = lookup(trace, "shards")
        .and_then(Value::as_seq)
        .expect("per-shard entries");
    assert_eq!(shards.len(), 2, "one entry per shard");

    // An untraced body never carries the breakdown.
    assert!(!untraced_text.contains("\"trace\""), "{untraced_text}");

    drop(client);
    server.stop();
}

/// `/v1/metrics` serves valid Prometheus text: versioned content type,
/// HELP/TYPE pairs, per-route and per-shard histograms with non-zero
/// counts after traffic, and cumulative `+Inf` buckets.
#[test]
fn metrics_exposition_covers_request_and_scatter_histograms() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();
    insert_corpus(&mut client, 8);
    for _ in 0..5 {
        let response = client
            .request(
                "POST",
                "/v1/search",
                &format!(r#"{{"scene":{LEFT_SCENE}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 200);
    }

    let response = client.request("GET", "/v1/metrics", "").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = response.text();

    // Line-level syntax: every line is a comment or `name{...} value`.
    for line in text.lines() {
        assert!(
            line.starts_with("# ") || line.split_whitespace().count() == 2,
            "bad exposition line: {line:?}"
        );
    }

    // The headline families, with traffic actually recorded.
    for family in [
        "be2d_http_request_duration_seconds",
        "be2d_http_responses_total",
        "be2d_db_scatter_duration_seconds",
        "be2d_db_search_duration_seconds",
        "be2d_db_gather_duration_seconds",
        "be2d_uptime_seconds",
        "be2d_build_info",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "{family} HELP");
        assert!(text.contains(&format!("# TYPE {family} ")), "{family} TYPE");
    }
    let count_of = |needle: &str| {
        text.lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("{needle} line missing"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse::<f64>()
            .unwrap()
    };
    assert!(
        count_of("be2d_http_request_duration_seconds_count{route=\"search\"}") >= 5.0,
        "per-route request histogram saw the searches"
    );
    assert!(
        count_of("be2d_db_scatter_duration_seconds_count{shard=\"0\"}") >= 5.0
            && count_of("be2d_db_scatter_duration_seconds_count{shard=\"1\"}") >= 5.0,
        "per-shard scatter histograms saw the searches"
    );
    assert!(
        text.contains("be2d_db_scatter_duration_seconds_bucket{shard=\"0\",le=\"+Inf\"}"),
        "+Inf bucket present"
    );

    drop(client);
    server.stop();
}

/// The slow-query ring retains the configured number of worst queries
/// under concurrent load, and `/v1/debug/slow_queries` reports them
/// slowest-first.
#[test]
fn slow_query_ring_retains_worst_under_concurrent_load() {
    let server = RunningServer::start(ServerConfig {
        slow_query_capacity: 4,
        ..test_config()
    });
    let mut client = server.client();
    insert_corpus(&mut client, 16);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mut worker = server.client();
            scope.spawn(move || {
                for _ in 0..25 {
                    let response = worker
                        .request(
                            "POST",
                            "/v1/search",
                            &format!(r#"{{"scene":{LEFT_SCENE}}}"#),
                        )
                        .unwrap();
                    assert_eq!(response.status, 200);
                }
            });
        }
    });

    let response = client.request("GET", "/v1/debug/slow_queries", "").unwrap();
    assert_eq!(response.status, 200);
    let body: Value = serde_json::from_str(&response.text()).unwrap();
    assert!((number(&body, "capacity") - 4.0).abs() < f64::EPSILON);
    let queries = lookup(&body, "queries")
        .and_then(Value::as_seq)
        .expect("queries array");
    assert_eq!(queries.len(), 4, "ring full after 100 searches");
    let totals: Vec<f64> = queries.iter().map(|q| number(q, "total_ms")).collect();
    for pair in totals.windows(2) {
        assert!(pair[0] >= pair[1], "not slowest-first: {totals:?}");
    }
    for query in queries {
        assert!(number(query, "total_ms") > 0.0);
        let stages =
            number(query, "planner_ms") + number(query, "scatter_ms") + number(query, "gather_ms");
        assert!(stages <= number(query, "total_ms") + 1e-9);
        assert_eq!(string(query, "kind"), "scene");
    }

    drop(client);
    server.stop();
}

/// `POST /v1/admin/checkpoint` truncates the WAL over HTTP; without a
/// WAL it fails with the persistence error envelope.
#[test]
fn checkpoint_endpoint_works_with_wal_and_fails_without() {
    // No WAL configured: 500 with the error envelope.
    let server = RunningServer::start(test_config());
    let mut client = server.client();
    let response = client.request("POST", "/v1/admin/checkpoint", "").unwrap();
    assert_eq!(response.status, 500, "{}", response.text());
    assert!(response.text().contains("\"error\""), "{}", response.text());
    drop(client);
    server.stop();

    // WAL on: 200 with the records written and the duration.
    let dir = std::env::temp_dir().join(format!("be2d_obs_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let server = RunningServer::start(ServerConfig {
        wal_dir: Some(dir.clone()),
        ..test_config()
    });
    let mut client = server.client();
    insert_corpus(&mut client, 6);
    let response = client.request("POST", "/v1/admin/checkpoint", "").unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let body: Value = serde_json::from_str(&response.text()).unwrap();
    assert!((number(&body, "records") - 6.0).abs() < f64::EPSILON);
    assert!(number(&body, "duration_ms") >= 0.0);

    // The checkpoint shows up in the metrics.
    let response = client.request("GET", "/v1/metrics", "").unwrap();
    let text = response.text();
    let count = text
        .lines()
        .find(|l| l.starts_with("be2d_db_checkpoint_duration_seconds_count"))
        .expect("checkpoint histogram")
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse::<f64>()
        .unwrap();
    // At least the HTTP checkpoint; WAL boot-time recovery may have
    // recorded one of its own as well.
    assert!(count >= 1.0, "checkpoint count {count}");

    drop(client);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// The health probe reports liveness plus build version and uptime.
#[test]
fn healthz_reports_version_and_uptime() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();
    let response = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(response.status, 200);
    let body: Value = serde_json::from_str(&response.text()).unwrap();
    assert_eq!(string(&body, "status"), "ok");
    assert_eq!(string(&body, "version"), env!("CARGO_PKG_VERSION"));
    assert!(number(&body, "uptime_s") >= 0.0);
    drop(client);
    server.stop();
}
