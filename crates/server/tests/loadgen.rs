//! The acceptance run: loadgen sustains >= 1000 mixed requests against
//! a locally spawned server without a single error.

use be2d_server::{LoadgenConfig, Server, ServerConfig};
use std::time::Duration;

#[test]
fn loadgen_sustains_1000_mixed_requests_without_error() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let config = LoadgenConfig {
        requests: 1200,
        connections: 4,
        prefill: 48,
        seed: 7,
        ..LoadgenConfig::new(addr)
    };
    let report = be2d_server::loadgen::run(&config).expect("loadgen run");

    assert_eq!(report.requests, 1200);
    assert_eq!(
        report.errors,
        0,
        "no request may fail: {}",
        report.summary()
    );
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency_ms.p50_ms > 0.0);
    assert!(report.latency_ms.p50_ms <= report.latency_ms.p95_ms);
    assert!(report.latency_ms.p95_ms <= report.latency_ms.p99_ms);
    assert!(report.latency_ms.p99_ms <= report.latency_ms.max_ms);
    let performed: u64 = report.by_kind.values().sum();
    assert_eq!(performed, 1200, "every request accounted for");
    assert!(
        report.by_kind.contains_key("search") && report.by_kind.contains_key("insert"),
        "mixed traffic: {:?}",
        report.by_kind
    );

    // the JSON report is parseable and BENCH-tagged
    let json = report.to_json();
    assert!(json.contains("\"benchmark\":\"server\""));
    let back: be2d_server::LoadgenReport = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back, report);

    handle.shutdown();
    runner
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}

/// The hot-shard-split scenario: skewed churn traffic hammers shard 0
/// while a live reshard doubles the shard count mid-run — zero errors
/// allowed, and the migration must be confirmed finished via `/stats`.
#[test]
fn loadgen_skewed_churn_survives_a_live_reshard() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        shards: 4,
        replicas: 2,
        reshard_batch: 16,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let config = LoadgenConfig {
        requests: 1500,
        connections: 4,
        prefill: 64,
        seed: 11,
        mix: "churn".parse().expect("churn preset"),
        // Aim the hot edits at shard 0 of the pre-reshard topology —
        // the imbalance a shard split exists to fix.
        skew: be2d_workload::Skew::with_stride(0.8, 4).expect("stride skew"),
        reshard_to: 8,
        reshard_after: 300,
        reshard_batch: 16,
        ..LoadgenConfig::new(addr)
    };
    let report = be2d_server::loadgen::run(&config).expect("loadgen run");

    assert_eq!(
        report.errors,
        0,
        "no request (and the reshard) may fail: {}",
        report.summary()
    );
    assert_eq!(report.reshard_to, 8);
    assert!(
        report.reshard_duration_ms > 0.0,
        "the migration actually ran and finished: {}",
        report.summary()
    );
    assert!(report.summary().contains("live reshard to 8 shards"));
    let json = report.to_json();
    assert!(json.contains("\"reshard_to\":8"), "{json}");

    handle.shutdown();
    runner
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}

/// Open-loop pacing: a modest fixed rate finishes in roughly the
/// expected wall-clock time (not instantly, not hung).
#[test]
fn loadgen_open_loop_paces_requests() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let config = LoadgenConfig {
        requests: 100,
        connections: 2,
        rate: 400.0,
        prefill: 8,
        ..LoadgenConfig::new(addr)
    };
    let report = be2d_server::loadgen::run(&config).expect("loadgen run");
    assert_eq!(report.errors, 0, "{}", report.summary());
    // 100 requests at 400 req/s = 0.25s minimum for the last send slot.
    assert!(
        report.elapsed_s >= 0.2,
        "open loop finished too fast: {:.3}s",
        report.elapsed_s
    );

    handle.shutdown();
    runner
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}
