//! The acceptance run: loadgen sustains >= 1000 mixed requests against
//! a locally spawned server without a single error.

use be2d_server::{LoadgenConfig, Server, ServerConfig};
use std::time::Duration;

#[test]
fn loadgen_sustains_1000_mixed_requests_without_error() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let config = LoadgenConfig {
        requests: 1200,
        connections: 4,
        prefill: 48,
        seed: 7,
        ..LoadgenConfig::new(addr)
    };
    let report = be2d_server::loadgen::run(&config).expect("loadgen run");

    assert_eq!(report.requests, 1200);
    assert_eq!(
        report.errors,
        0,
        "no request may fail: {}",
        report.summary()
    );
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency_ms.p50_ms > 0.0);
    assert!(report.latency_ms.p50_ms <= report.latency_ms.p95_ms);
    assert!(report.latency_ms.p95_ms <= report.latency_ms.p99_ms);
    assert!(report.latency_ms.p99_ms <= report.latency_ms.max_ms);
    let performed: u64 = report.by_kind.values().sum();
    assert_eq!(performed, 1200, "every request accounted for");
    assert!(
        report.by_kind.contains_key("search") && report.by_kind.contains_key("insert"),
        "mixed traffic: {:?}",
        report.by_kind
    );

    // the JSON report is parseable and BENCH-tagged
    let json = report.to_json();
    assert!(json.contains("\"benchmark\":\"server\""));
    let back: be2d_server::LoadgenReport = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back, report);

    handle.shutdown();
    runner
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}

/// Open-loop pacing: a modest fixed rate finishes in roughly the
/// expected wall-clock time (not instantly, not hung).
#[test]
fn loadgen_open_loop_paces_requests() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let config = LoadgenConfig {
        requests: 100,
        connections: 2,
        rate: 400.0,
        prefill: 8,
        ..LoadgenConfig::new(addr)
    };
    let report = be2d_server::loadgen::run(&config).expect("loadgen run");
    assert_eq!(report.errors, 0, "{}", report.summary());
    // 100 requests at 400 req/s = 0.25s minimum for the last send slot.
    assert!(
        report.elapsed_s >= 0.2,
        "open loop finished too fast: {:.3}s",
        report.elapsed_s
    );

    handle.shutdown();
    runner
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}
