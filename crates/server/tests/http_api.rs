//! End-to-end integration tests: a real server on a real TCP socket,
//! driven by the blocking client.

use be2d_server::client::Client;
use be2d_server::{Server, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    runner: Option<JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    fn start(config: ServerConfig) -> RunningServer {
        let server = Server::bind(config).expect("bind ephemeral port");
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());
        RunningServer {
            addr,
            handle,
            runner: Some(runner),
        }
    }

    fn client(&self) -> Client {
        Client::new(self.addr, Duration::from_secs(10))
    }

    fn stop(mut self) {
        self.handle.shutdown();
        self.runner
            .take()
            .expect("still running")
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(runner) = self.runner.take() {
            self.handle.shutdown();
            let _ = runner.join();
        }
    }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

const LEFT_SCENE: &str = r#"{"width":100,"height":100,"objects":[
    {"class":"A","mbr":[10,30,40,60]},{"class":"B","mbr":[60,85,40,60]}]}"#;
const RIGHT_SCENE: &str = r#"{"width":100,"height":100,"objects":[
    {"class":"B","mbr":[10,30,40,60]},{"class":"A","mbr":[60,85,40,60]}]}"#;

/// The acceptance-criteria flow: insert → search → snapshot → restore →
/// search, all over real TCP sockets.
#[test]
fn insert_search_snapshot_restore_search() {
    let dir = std::env::temp_dir().join(format!("be2d_http_api_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let server = RunningServer::start(ServerConfig {
        snapshot_dir: dir.clone(),
        ..test_config()
    });
    let mut client = server.client();

    // insert two images
    let response = client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"left","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 201, "{}", response.text());
    assert!(response.text().contains("\"id\":0"));
    let response = client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"right","scene":{RIGHT_SCENE}}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 201);

    // search ranks the exact match first
    let search_body = format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":2}}}}"#);
    let response = client.request("POST", "/search", &search_body).unwrap();
    assert_eq!(response.status, 200);
    let text = response.text();
    let left_at = text.find("\"left\"").expect("left in results");
    let right_at = text.find("\"right\"").expect("right in results");
    assert!(left_at < right_at, "exact match ranked first: {text}");

    // snapshot to a named file inside the configured snapshot dir
    let snap_body = r#"{"path":"flow.json"}"#;
    let response = client.request("POST", "/snapshot", snap_body).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert!(response.text().contains("\"records\":2"));

    // mutate: drop one image, verify the search changes
    let response = client.request("DELETE", "/images/0", "").unwrap();
    assert_eq!(response.status, 200);
    let response = client.request("POST", "/search", &search_body).unwrap();
    assert!(!response.text().contains("\"left\""));

    // restore brings it back
    let response = client.request("POST", "/restore", snap_body).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert!(response.text().contains("\"records\":2"));
    let response = client.request("POST", "/search", &search_body).unwrap();
    assert!(response.text().contains("\"left\""), "{}", response.text());
    assert!(dir.join("flow.json").is_file(), "snapshot confined to dir");

    std::fs::remove_dir_all(&dir).ok();
    drop(client);
    server.stop();
}

#[test]
fn incremental_object_maintenance_changes_results() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();
    client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"base","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();

    // a query for class Z misses, then hits after the incremental add
    let z_query =
        r#"{"scene":{"width":100,"height":100,"objects":[{"class":"Z","mbr":[1,9,1,9]}]}}"#;
    let response = client.request("POST", "/search", z_query).unwrap();
    assert_eq!(response.text(), r#"{"hits":[]}"#);

    let add = r#"{"class":"Z","mbr":[1,9,1,9]}"#;
    let response = client.request("POST", "/images/0/objects", add).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let response = client.request("POST", "/search", z_query).unwrap();
    assert!(response.text().contains("\"base\""));

    // and misses again after the incremental removal
    let response = client.request("DELETE", "/images/0/objects", add).unwrap();
    assert_eq!(response.status, 200);
    let response = client.request("POST", "/search", z_query).unwrap();
    assert_eq!(response.text(), r#"{"hits":[]}"#);

    drop(client);
    server.stop();
}

#[test]
fn sketch_text_queries_and_transform_options() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();
    client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"ab","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();

    // the paper's §1 query as a sketch
    let response = client
        .request("POST", "/search/sketch", r#"{"sketch":"A left-of B"}"#)
        .unwrap();
    assert_eq!(response.status, 200);
    assert!(response.text().contains("\"ab\""), "{}", response.text());

    // transform-invariant search finds a rotated insert
    let rotated = r#"{"name":"rot","scene":{"width":100,"height":100,"objects":[
        {"class":"Q","mbr":[40,60,10,30]},{"class":"R","mbr":[40,60,60,85]}]}}"#;
    client.request("POST", "/images", rotated).unwrap();
    let query = r#"{"scene":{"width":100,"height":100,"objects":[
        {"class":"Q","mbr":[10,30,40,60]},{"class":"R","mbr":[60,85,40,60]}]},
        "options":{"transforms":"paper-set","top_k":1}}"#;
    let response = client.request("POST", "/search", query).unwrap();
    let text = response.text();
    assert!(text.contains("\"rot\""), "{text}");
    assert!(text.contains("rotate-"), "best transform reported: {text}");

    // text-form query: the Display rendering of the stored image's own
    // strings must retrieve it with score 1
    let stored = be2d_core::convert_scene(
        &be2d_geometry::SceneBuilder::new(100, 100)
            .object("A", (10, 30, 40, 60))
            .object("B", (60, 85, 40, 60))
            .build()
            .unwrap(),
    );
    let body = format!(
        r#"{{"text":{{"u":{:?},"v":{:?}}},"options":{{"top_k":1}}}}"#,
        stored.x().to_string(),
        stored.y().to_string()
    );
    let response = client.request("POST", "/search", &body).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert!(response.text().contains("\"ab\""), "{}", response.text());

    drop(client);
    server.stop();
}

#[test]
fn error_statuses_over_the_wire() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();

    for (method, path, body, expected) in [
        ("GET", "/nope", "", 404),
        ("GET", "/images", "", 405),
        ("DELETE", "/images/notanumber", "", 400),
        ("DELETE", "/images/99", "", 404),
        ("POST", "/search", "{not json", 400),
        (
            "POST",
            "/search",
            r#"{"scene":{"width":0,"height":5}}"#,
            400,
        ),
        (
            "POST",
            "/search/sketch",
            r#"{"sketch":"A teleports B"}"#,
            422,
        ),
        (
            "POST",
            "/restore",
            r#"{"path":"no-such-snapshot.json"}"#,
            500,
        ),
        ("POST", "/restore", r#"{"path":"/etc/passwd"}"#, 400),
        ("POST", "/snapshot", r#"{"path":"../escape.json"}"#, 400),
    ] {
        let response = client.request(method, path, body).unwrap();
        assert_eq!(
            response.status,
            expected,
            "{method} {path}: {}",
            response.text()
        );
        assert!(response.text().contains("\"error\""), "{}", response.text());
    }

    drop(client);
    server.stop();
}

#[test]
fn stats_reflect_traffic_and_health_is_cheap() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();

    let response = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(response.status, 200);
    let health = response.text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(
        health.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
        "{health}"
    );
    assert!(health.contains("\"uptime_s\":"), "{health}");

    client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"s","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();
    client
        .request("POST", "/search", &format!(r#"{{"scene":{LEFT_SCENE}}}"#))
        .unwrap();
    let _ = client.request("GET", "/nope", "").unwrap();

    let response = client.request("GET", "/stats", "").unwrap();
    let text = response.text();
    assert!(text.contains("\"records\":1"), "{text}");
    assert!(text.contains("\"objects\":2"), "{text}");
    assert!(text.contains("\"classes\":2"), "{text}");
    assert!(text.contains("\"inserts\":1"), "{text}");
    assert!(text.contains("\"searches\":1"), "{text}");
    assert!(text.contains("\"errors\":1"), "{text}");
    assert!(text.contains("\"threads\":4"), "{text}");

    drop(client);
    server.stop();
}

#[test]
fn symbolic_insert_matches_scene_insert() {
    use be2d_core::SymbolicImage;
    use be2d_geometry::SceneBuilder;

    let server = RunningServer::start(test_config());
    let mut client = server.client();

    // insert the same image once as a scene, once pre-converted
    let scene = SceneBuilder::new(100, 100)
        .object("A", (10, 30, 40, 60))
        .object("B", (60, 85, 40, 60))
        .build()
        .unwrap();
    let symbolic = SymbolicImage::from_scene(&scene);
    client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"as-scene","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();
    let response = client
        .request(
            "POST",
            "/images",
            &format!(
                r#"{{"name":"as-symbolic","symbolic":{}}}"#,
                serde_json::to_string(&symbolic).unwrap()
            ),
        )
        .unwrap();
    assert_eq!(response.status, 201, "{}", response.text());

    // both must score 1.0 for the exact query
    let response = client
        .request(
            "POST",
            "/search",
            &format!(r#"{{"scene":{LEFT_SCENE},"options":{{"min_score":0.999}}}}"#),
        )
        .unwrap();
    let text = response.text();
    assert!(
        text.contains("as-scene") && text.contains("as-symbolic"),
        "{text}"
    );

    drop(client);
    server.stop();
}

#[test]
fn concurrent_clients_mixed_traffic() {
    let server = RunningServer::start(test_config());
    let addr = server.addr;

    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr, Duration::from_secs(10));
                let mut ok = 0usize;
                for i in 0..25 {
                    let name = format!("w{w}-{i}");
                    let insert = format!(r#"{{"name":{name:?},"scene":{LEFT_SCENE}}}"#);
                    let response = client.request("POST", "/images", &insert).unwrap();
                    assert_eq!(response.status, 201);
                    let search = format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":3}}}}"#);
                    let response = client.request("POST", "/search", &search).unwrap();
                    assert_eq!(response.status, 200);
                    ok += 2;
                }
                ok
            })
        })
        .collect();
    let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, 200);

    let mut client = server.client();
    let response = client.request("GET", "/stats", "").unwrap();
    let text = response.text();
    assert!(text.contains("\"records\":100"), "{text}");
    assert!(text.contains("\"inserts\":100"), "{text}");

    drop(client);
    server.stop();
}

/// Replica fault injection over the wire: a replicated server keeps
/// answering searches while one replica per shard is failed, and the
/// healed replicas serve identical results afterwards.
#[test]
fn replica_fail_heal_over_the_wire() {
    let server = RunningServer::start(ServerConfig {
        shards: 2,
        replicas: 2,
        ..test_config()
    });
    let mut client = server.client();

    for (name, scene) in [("left", LEFT_SCENE), ("right", RIGHT_SCENE)] {
        let response = client
            .request(
                "POST",
                "/images",
                &format!(r#"{{"name":{name:?},"scene":{scene}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 201);
    }
    let search_body = format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":2}}}}"#);
    let baseline = client
        .request("POST", "/search", &search_body)
        .unwrap()
        .text();

    // Stats advertise the replicated topology.
    let stats = client.request("GET", "/stats", "").unwrap().text();
    assert!(stats.contains("\"shards\":2"), "{stats}");
    assert!(stats.contains("\"replicas\":2"), "{stats}");
    assert!(
        stats.contains("\"replica_health\":[[true,true],[true,true]]"),
        "{stats}"
    );

    // Fail one replica per shard; every search must still answer, and
    // identically (repeat so the round-robin picker cycles).
    for body in [r#"{"shard":0,"replica":1}"#, r#"{"shard":1,"replica":0}"#] {
        let response = client
            .request("POST", "/admin/replicas/fail", body)
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
    for _ in 0..6 {
        let response = client.request("POST", "/search", &search_body).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.text(), baseline, "degraded search identical");
    }
    // Writes while degraded land on the survivors only. (A duplicate of
    // "right" ties below it by id, so the top-2 baseline is unchanged.)
    let response = client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"degraded","scene":{RIGHT_SCENE}}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 201);

    // Failing the last healthy copy is refused with 409.
    let response = client
        .request("POST", "/admin/replicas/fail", r#"{"shard":0,"replica":0}"#)
        .unwrap();
    assert_eq!(response.status, 409, "{}", response.text());

    // Heal both; the rebuilt replicas rejoin with identical state.
    for body in [r#"{"shard":0,"replica":1}"#, r#"{"shard":1,"replica":0}"#] {
        let response = client
            .request("POST", "/admin/replicas/heal", body)
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
    let stats = client.request("GET", "/stats", "").unwrap().text();
    assert!(
        stats.contains("\"replica_health\":[[true,true],[true,true]]"),
        "{stats}"
    );
    assert!(stats.contains("\"records\":3"), "{stats}");
    for _ in 0..6 {
        let response = client.request("POST", "/search", &search_body).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.text(), baseline, "healed search identical");
    }

    drop(client);
    server.stop();
}

/// `POST /admin/reshard` over the wire: the migration runs in the
/// background while searches keep answering identically, `/stats`
/// reports the progress trajectory, and conflicting requests are
/// rejected with the right statuses.
#[test]
fn online_reshard_over_the_wire() {
    let server = RunningServer::start(ServerConfig {
        shards: 2,
        replicas: 2,
        reshard_batch: 4,
        ..test_config()
    });
    let mut client = server.client();

    for i in 0..20 {
        let scene = if i % 2 == 0 { LEFT_SCENE } else { RIGHT_SCENE };
        let response = client
            .request(
                "POST",
                "/images",
                &format!(r#"{{"name":"img-{i}","scene":{scene}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 201);
    }
    let search_body = format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":null}}}}"#);
    let baseline = client
        .request("POST", "/search", &search_body)
        .unwrap()
        .text();

    // Bad targets first: 400 for zero, 200 no-op for the same count.
    let response = client
        .request("POST", "/admin/reshard", r#"{"shards":0}"#)
        .unwrap();
    assert_eq!(response.status, 400, "{}", response.text());
    let response = client
        .request("POST", "/admin/reshard", r#"{"shards":2}"#)
        .unwrap();
    assert_eq!(response.status, 200);
    assert!(response.text().contains("\"started\":false"));

    // Grow 2 → 5 in the background; searches during the migration stay
    // byte-identical to the pre-reshard baseline.
    let response = client
        .request("POST", "/admin/reshard", r#"{"shards":5,"batch":3}"#)
        .unwrap();
    assert_eq!(response.status, 202, "{}", response.text());
    assert!(
        response.text().contains("\"from\":2"),
        "{}",
        response.text()
    );
    assert!(response.text().contains("\"to\":5"), "{}", response.text());

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let response = client.request("POST", "/search", &search_body).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.text(), baseline, "mid-reshard search identical");
        let stats = client.request("GET", "/stats", "").unwrap().text();
        if stats.contains("\"reshard_active\":false") && stats.contains("\"shards\":5") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "reshard never finished: {stats}"
        );
    }

    let stats = client.request("GET", "/stats", "").unwrap().text();
    assert!(stats.contains("\"shards\":5"), "{stats}");
    assert!(stats.contains("\"replicas\":2"), "{stats}");
    assert!(stats.contains("\"reshard_from\":2"), "{stats}");
    assert!(stats.contains("\"reshard_to\":5"), "{stats}");
    assert!(stats.contains("\"reshard_migrated_ids\":20"), "{stats}");
    assert!(stats.contains("\"records\":20"), "{stats}");
    assert!(
        stats.contains(
            "\"replica_health\":[[true,true],[true,true],[true,true],[true,true],[true,true]]"
        ),
        "{stats}"
    );

    // Post-migration: identical ranking, writes still live, and the
    // replica admin API addresses the new shards.
    let response = client.request("POST", "/search", &search_body).unwrap();
    assert_eq!(response.text(), baseline, "post-reshard search identical");
    let response = client
        .request(
            "POST",
            "/images",
            &format!(r#"{{"name":"after","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 201);
    assert!(response.text().contains("\"id\":20"), "{}", response.text());
    let response = client
        .request("POST", "/admin/replicas/fail", r#"{"shard":4,"replica":1}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let response = client
        .request("POST", "/admin/replicas/heal", r#"{"shard":4,"replica":1}"#)
        .unwrap();
    assert_eq!(response.status, 200);

    drop(client);
    server.stop();
}

/// The versioned surface end-to-end: `/v1/` paths serve the same
/// handlers without the deprecation header, legacy aliases answer
/// identically but flagged, and errors share the coded envelope.
#[test]
fn v1_surface_and_deprecation_over_the_wire() {
    let server = RunningServer::start(test_config());
    let mut client = server.client();

    // Insert through /v1, search through /v1: same behaviour as legacy.
    let response = client
        .request(
            "POST",
            "/v1/images",
            &format!(r#"{{"name":"left","scene":{LEFT_SCENE}}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 201, "{}", response.text());
    assert_eq!(response.header("deprecation"), None, "/v1 is canonical");

    let search_body = format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":1}}}}"#);
    let v1 = client.request("POST", "/v1/search", &search_body).unwrap();
    let legacy = client.request("POST", "/search", &search_body).unwrap();
    assert_eq!(v1.status, 200);
    assert_eq!(v1.body, legacy.body, "same handler behind both paths");
    assert_eq!(v1.header("deprecation"), None);
    assert_eq!(
        legacy.header("deprecation"),
        Some("true"),
        "legacy alias is flagged"
    );

    // /healthz is infrastructure: never deprecated.
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.header("deprecation"), None);

    // Errors carry the coded envelope on both surfaces.
    let missing = client.request("DELETE", "/v1/images/99", "").unwrap();
    assert_eq!(missing.status, 404);
    let text = missing.text();
    assert!(text.contains("\"code\":\"unknown_record\""), "{text}");
    assert!(text.contains("\"retryable\":false"), "{text}");
    let bad = client.request("POST", "/v1/search", "{not json").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("\"code\":"), "{}", bad.text());
    let unknown = client.request("GET", "/v1/nope", "").unwrap();
    assert_eq!(unknown.status, 404);
    assert!(
        unknown.text().contains("\"code\":\"not_found\""),
        "{}",
        unknown.text()
    );

    drop(client);
    server.stop();
}

/// `GET /v1/stats` reports the nested shape — topology, replication
/// with per-replica lag, op log — while legacy `/stats` keeps the flat
/// keys scripts already parse.
#[test]
fn stats_v1_is_nested_and_legacy_stays_flat() {
    let server = RunningServer::start(ServerConfig {
        shards: 2,
        replicas: 2,
        ..test_config()
    });
    let mut client = server.client();
    for i in 0..4 {
        let response = client
            .request(
                "POST",
                "/v1/images",
                &format!(r#"{{"name":"img-{i}","scene":{LEFT_SCENE}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 201);
    }

    let v1 = client.request("GET", "/v1/stats", "").unwrap();
    assert_eq!(v1.status, 200);
    let text = v1.text();
    assert!(text.contains("\"topology\":{"), "{text}");
    assert!(text.contains("\"replication\":{"), "{text}");
    assert!(text.contains("\"mode\":\"sync\""), "{text}");
    assert!(text.contains("\"last_applied_seq\""), "{text}");
    assert!(text.contains("\"lag\":0"), "{text}");
    assert!(text.contains("\"oplog\":{"), "{text}");
    assert!(text.contains("\"service\":{"), "{text}");
    assert!(text.contains("\"records\":4"), "{text}");
    assert!(
        !text.contains("\"reshard_active\""),
        "flat keys stay legacy-only: {text}"
    );

    let legacy = client.request("GET", "/stats", "").unwrap();
    let text = legacy.text();
    assert!(text.contains("\"reshard_active\":false"), "{text}");
    assert!(text.contains("\"shards\":2"), "{text}");
    assert!(!text.contains("\"topology\""), "{text}");

    drop(client);
    server.stop();
}

/// Async replication over the wire: writes ack at the leader, the
/// background pump drains followers, a failed-then-healed replica
/// catches up by op-log replay (visible in `/v1/stats`), and searches
/// stay byte-identical throughout.
#[test]
fn async_replication_catchup_over_the_wire() {
    use be2d_db::ReplicationMode;
    let server = RunningServer::start(ServerConfig {
        shards: 2,
        replicas: 2,
        replication: ReplicationMode::Async { max_lag: 64 },
        oplog_window: 1024,
        ..test_config()
    });
    let mut client = server.client();

    for i in 0..6 {
        let scene = if i % 2 == 0 { LEFT_SCENE } else { RIGHT_SCENE };
        let response = client
            .request(
                "POST",
                "/v1/images",
                &format!(r#"{{"name":"img-{i}","scene":{scene}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 201);
    }
    let search_body = format!(r#"{{"scene":{LEFT_SCENE},"options":{{"top_k":3}}}}"#);
    let baseline = client
        .request("POST", "/v1/search", &search_body)
        .unwrap()
        .text();

    // Fail a replica, write through the gap, heal: the gap fits the
    // op-log window, so the heal must replay, not clone.
    let response = client
        .request(
            "POST",
            "/v1/admin/replicas/fail",
            r#"{"shard":0,"replica":1}"#,
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    for i in 6..12 {
        let response = client
            .request(
                "POST",
                "/v1/images",
                &format!(r#"{{"name":"img-{i}","scene":{LEFT_SCENE}}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 201);
    }
    let response = client
        .request(
            "POST",
            "/v1/admin/replicas/heal",
            r#"{"shard":0,"replica":1}"#,
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());

    let stats = client.request("GET", "/v1/stats", "").unwrap().text();
    assert!(stats.contains("\"mode\":\"async\""), "{stats}");
    assert!(stats.contains("\"max_lag\":64"), "{stats}");
    assert!(!stats.contains("\"catchup_replays\":0"), "{stats}");
    assert!(stats.contains("\"catchup_clones\":0"), "{stats}");

    // Everything drained: healed replica serves identical rankings.
    for _ in 0..6 {
        let response = client.request("POST", "/v1/search", &search_body).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.text(), baseline, "healed async search identical");
    }

    drop(client);
    server.stop();
}

/// Keep-alive budget exhaustion closes politely; the client reconnects.
#[test]
fn keep_alive_budget_rolls_over() {
    let server = RunningServer::start(ServerConfig {
        keep_alive_requests: 3,
        ..test_config()
    });
    let mut client = server.client();
    for _ in 0..10 {
        let response = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(response.status, 200);
    }
    drop(client);
    server.stop();
}
