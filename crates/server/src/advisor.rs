//! The dry-run autopilot advisor.
//!
//! Each tick of the background health loop feeds an
//! [`AdvisorEngine`] the current windowed signals; when a condition
//! holds for [`hysteresis`](AdvisorEngine) consecutive ticks the
//! engine emits a [`Recommendation`] naming the exact admin call an
//! operator (or a future actuating mode) would issue — and then holds
//! its tongue about that signal for a cooldown, so an oscillating
//! condition pages once, not once per tick.
//!
//! The engine is deliberately pure clockwork: no time source, no
//! database handle, no I/O. The server owns the tick cadence and the
//! signal gathering; the engine only decides *whether the evidence is
//! sustained enough to speak*. That makes hysteresis and cooldown
//! directly unit-testable with synthetic tick streams.
//!
//! In `dry-run` mode (the only actuating-adjacent mode that exists)
//! recommendations are recorded as `advisor_recommendation` events in
//! the database's [`EventJournal`](be2d_db::EventJournal) and nothing
//! else happens: no admin call is issued, and search rankings remain
//! bit-identical to a server running with the advisor off.

use crate::health::Verdict;
use std::collections::HashMap;
use std::time::Duration;

/// Whether the advisor loop runs, and what it is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvisorMode {
    /// No advisor loop at all.
    Off,
    /// Evaluate signals and journal recommendations; never act.
    DryRun,
}

impl AdvisorMode {
    /// Parses the `--advisor` flag value.
    pub fn parse(s: &str) -> Result<AdvisorMode, String> {
        match s {
            "off" => Ok(AdvisorMode::Off),
            "dry-run" => Ok(AdvisorMode::DryRun),
            other => Err(format!("invalid advisor mode '{other}' (off|dry-run)")),
        }
    }

    /// Stable name for display.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AdvisorMode::Off => "off",
            AdvisorMode::DryRun => "dry-run",
        }
    }
}

/// One admin call the advisor would issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// The admin verb (`"rebuild_replica"`, `"reshard"`).
    pub action: String,
    /// Machine-readable target (`"shard=1,replica=0"`, `"shards=8"`).
    pub target: String,
    /// The sustained evidence behind it.
    pub reason: String,
}

/// A snapshot of the signals the advisor reasons over, gathered by the
/// server each tick.
#[derive(Debug, Clone)]
pub struct AdvisorSignals {
    /// Per-shard replica health bits
    /// (`db.replica_health()`).
    pub replica_health: Vec<Vec<bool>>,
    /// Records per physical shard.
    pub shard_records: Vec<usize>,
    /// Whether a reshard is already in flight (suppresses reshard
    /// advice).
    pub resharding: bool,
    /// The 1-minute SLO verdict.
    pub slo: Verdict,
}

/// Records moved per shard before imbalance advice is worth the cost
/// of a migration.
pub const MIN_IMBALANCE_RECORDS: usize = 128;

/// Sustained-signal detector with per-signal hysteresis and cooldown.
///
/// Time is counted in ticks: a signal must hold for `hysteresis`
/// *consecutive* observations to fire, and once fired its key is
/// silenced for `cooldown_ticks`. Distinct signals (each failed
/// replica, the shared reshard condition) track independently.
#[derive(Debug)]
pub struct AdvisorEngine {
    hysteresis: u64,
    cooldown_ticks: u64,
    tick: u64,
    /// Consecutive ticks each key's condition has held.
    streaks: HashMap<String, u64>,
    /// Tick at which each key last fired.
    fired: HashMap<String, u64>,
}

impl AdvisorEngine {
    /// An engine requiring `hysteresis` consecutive ticks (clamped to
    /// ≥ 1) and silencing each fired signal for `cooldown` expressed in
    /// tick units of `tick_interval`.
    #[must_use]
    pub fn new(hysteresis: u64, cooldown: Duration, tick_interval: Duration) -> AdvisorEngine {
        let interval_ms = tick_interval.as_millis().max(1);
        let cooldown_ticks = cooldown.as_millis().div_ceil(interval_ms).max(1);
        AdvisorEngine {
            hysteresis: hysteresis.max(1),
            cooldown_ticks: cooldown_ticks.min(u128::from(u64::MAX)) as u64,
            tick: 0,
            streaks: HashMap::new(),
            fired: HashMap::new(),
        }
    }

    /// Advances one tick and returns the recommendations whose
    /// conditions just crossed the hysteresis threshold outside their
    /// cooldown.
    pub fn observe(&mut self, signals: &AdvisorSignals) -> Vec<Recommendation> {
        self.tick += 1;
        let mut active: Vec<(String, Recommendation)> = Vec::new();

        for (shard, replicas) in signals.replica_health.iter().enumerate() {
            for (replica, healthy) in replicas.iter().enumerate() {
                if !healthy {
                    active.push((
                        format!("heal:{shard}/{replica}"),
                        Recommendation {
                            action: "rebuild_replica".into(),
                            target: format!("shard={shard},replica={replica}"),
                            reason: format!(
                                "replica shard={shard} replica={replica} out of rotation"
                            ),
                        },
                    ));
                }
            }
        }

        if let Some(rec) = reshard_condition(signals) {
            active.push(("reshard".into(), rec));
        }

        // Streaks of conditions that stopped holding reset to zero —
        // hysteresis means *consecutive* ticks.
        self.streaks
            .retain(|key, _| active.iter().any(|(k, _)| k == key));

        let mut out = Vec::new();
        for (key, rec) in active {
            let streak = self.streaks.entry(key.clone()).or_insert(0);
            *streak += 1;
            if *streak < self.hysteresis {
                continue;
            }
            let silenced = self
                .fired
                .get(&key)
                .is_some_and(|&at| self.tick - at < self.cooldown_ticks);
            if silenced {
                continue;
            }
            self.fired.insert(key, self.tick);
            out.push(rec);
        }
        out
    }
}

/// The reshard condition: the fullest shard holds at least
/// [`MIN_IMBALANCE_RECORDS`] records and more than twice the mean of
/// the *other* shards (comparing against the overall mean could never
/// fire at two shards, where the mean is at least half the max by
/// construction), or the SLO is burning under material load — and no
/// migration is already running. Recommends doubling the shard count
/// (the same growth step the reshard tests exercise).
fn reshard_condition(signals: &AdvisorSignals) -> Option<Recommendation> {
    if signals.resharding || signals.shard_records.is_empty() {
        return None;
    }
    let total: usize = signals.shard_records.iter().sum();
    let max = signals.shard_records.iter().copied().max().unwrap_or(0);
    let shards = signals.shard_records.len();
    let others_mean = if shards > 1 {
        (total - max) as f64 / (shards - 1) as f64
    } else {
        f64::INFINITY
    };
    let imbalanced = max >= MIN_IMBALANCE_RECORDS && (max as f64) > 2.0 * others_mean;
    let burning = signals.slo >= Verdict::Degraded && total >= MIN_IMBALANCE_RECORDS;
    if imbalanced {
        Some(Recommendation {
            action: "reshard".into(),
            target: format!("shards={}", shards * 2),
            reason: format!(
                "shard imbalance max={max} others_mean={others_mean:.1} over {shards} shards"
            ),
        })
    } else if burning {
        Some(Recommendation {
            action: "reshard".into(),
            target: format!("shards={}", shards * 2),
            reason: format!("sustained slo burn with {total} records over {shards} shards"),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(hysteresis: u64, cooldown_ticks: u64) -> AdvisorEngine {
        AdvisorEngine::new(
            hysteresis,
            Duration::from_millis(cooldown_ticks * 100),
            Duration::from_millis(100),
        )
    }

    fn healthy() -> AdvisorSignals {
        AdvisorSignals {
            replica_health: vec![vec![true, true], vec![true, true]],
            shard_records: vec![10, 10],
            resharding: false,
            slo: Verdict::Ok,
        }
    }

    fn one_failed() -> AdvisorSignals {
        let mut s = healthy();
        s.replica_health[1][0] = false;
        s
    }

    #[test]
    fn hysteresis_requires_consecutive_ticks() {
        let mut e = engine(3, 100);
        assert!(e.observe(&one_failed()).is_empty(), "tick 1: streak 1");
        assert!(e.observe(&one_failed()).is_empty(), "tick 2: streak 2");
        let recs = e.observe(&one_failed());
        assert_eq!(recs.len(), 1, "tick 3 crosses hysteresis");
        assert_eq!(recs[0].action, "rebuild_replica");
        assert_eq!(recs[0].target, "shard=1,replica=0");
    }

    #[test]
    fn interruption_resets_the_streak() {
        let mut e = engine(3, 100);
        e.observe(&one_failed());
        e.observe(&one_failed());
        assert!(e.observe(&healthy()).is_empty(), "condition cleared");
        assert!(e.observe(&one_failed()).is_empty(), "streak restarted at 1");
        assert!(e.observe(&one_failed()).is_empty());
        assert_eq!(e.observe(&one_failed()).len(), 1);
    }

    #[test]
    fn oscillating_signal_fires_at_most_once_per_cooldown() {
        let mut e = engine(1, 10);
        let mut fired = 0;
        // 20 ticks of a signal flapping every tick but always observed
        // as failing at observation time.
        for _ in 0..20 {
            fired += e.observe(&one_failed()).len();
        }
        assert_eq!(fired, 2, "tick 1 and tick 11 only");
    }

    #[test]
    fn signal_refires_after_cooldown_expires() {
        let mut e = engine(2, 5);
        e.observe(&one_failed());
        assert_eq!(e.observe(&one_failed()).len(), 1, "fires at tick 2");
        for _ in 0..4 {
            assert!(e.observe(&one_failed()).is_empty(), "cooldown holds");
        }
        assert_eq!(e.observe(&one_failed()).len(), 1, "refires at tick 7");
    }

    #[test]
    fn independent_signals_have_independent_cooldowns() {
        let mut e = engine(1, 100);
        let mut two_failed = one_failed();
        let first = e.observe(&two_failed);
        assert_eq!(first.len(), 1);
        // A second replica fails later: it fires on its own schedule.
        two_failed.replica_health[0][1] = false;
        let second = e.observe(&two_failed);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].target, "shard=0,replica=1");
    }

    #[test]
    fn reshard_advice_needs_material_imbalance_and_no_migration() {
        let mut signals = healthy();
        signals.shard_records = vec![300, 20];
        let rec = reshard_condition(&signals).expect("imbalance fires");
        assert_eq!(rec.action, "reshard");
        assert_eq!(rec.target, "shards=4");

        signals.resharding = true;
        assert!(
            reshard_condition(&signals).is_none(),
            "in-flight migration suppresses advice"
        );

        signals.resharding = false;
        signals.shard_records = vec![60, 20];
        assert!(
            reshard_condition(&signals).is_none(),
            "small shards are not worth migrating"
        );
    }

    #[test]
    fn sustained_slo_burn_also_recommends_resharding() {
        let mut signals = healthy();
        signals.shard_records = vec![100, 100];
        signals.slo = Verdict::Degraded;
        let rec = reshard_condition(&signals).expect("burn fires");
        assert_eq!(rec.target, "shards=4");
        signals.slo = Verdict::Ok;
        assert!(reshard_condition(&signals).is_none());
    }

    #[test]
    fn mode_parses_and_round_trips() {
        assert_eq!(AdvisorMode::parse("off").unwrap(), AdvisorMode::Off);
        assert_eq!(AdvisorMode::parse("dry-run").unwrap(), AdvisorMode::DryRun);
        assert!(AdvisorMode::parse("on").is_err());
        assert_eq!(AdvisorMode::DryRun.as_str(), "dry-run");
    }
}
