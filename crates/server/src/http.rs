//! Minimal HTTP/1.1 wire handling: an incremental request parser and a
//! response writer.
//!
//! The build is offline, so instead of hyper this module hand-rolls the
//! small, strict subset the service needs: request line + headers +
//! `Content-Length` bodies, keep-alive by default (HTTP/1.1 semantics),
//! explicit size limits, and pipelining-safe buffering (bytes after a
//! complete request stay in the connection buffer for the next parse).

use std::fmt;
use std::io::{Read, Write};

/// Request methods the service understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
}

impl Method {
    fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The path component of the target (before any `?`).
    pub path: String,
    /// The raw query string (after `?`, may be empty).
    pub query: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.0, where connections close by
    /// default instead of staying alive.
    pub http10: bool,
}

impl Request {
    /// The first header with this (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should drop after this request: an
    /// explicit `Connection: close`, or HTTP/1.0 without an explicit
    /// `Connection: keep-alive` (1.0 closes by default).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadRequest`] on invalid UTF-8.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("request body is not valid UTF-8".into()))
    }
}

/// Parse-level failures, each mapping to a response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or body (400).
    BadRequest(String),
    /// Method token is valid HTTP but not supported here (501).
    UnsupportedMethod(String),
    /// Request line + headers exceed the head limit (431).
    HeadTooLarge,
    /// Declared `Content-Length` exceeds the body limit (413).
    BodyTooLarge,
}

impl HttpError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::UnsupportedMethod(_) => 501,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m}"),
            HttpError::HeadTooLarge => f.write_str("request head too large"),
            HttpError::BodyTooLarge => f.write_str("request body too large"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Size limits applied while parsing.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body.
    pub max_body_bytes: usize,
}

/// Incremental request parser over a growing connection buffer.
///
/// Feed it the buffer after every socket read: it answers `None` while
/// the request is still incomplete, and `Some((request, consumed))`
/// once a full request is buffered — `consumed` bytes belong to this
/// request and must be drained; anything beyond them is the start of
/// the next (pipelined) request.
///
/// # Errors
///
/// Returns [`HttpError`] for malformed or over-limit requests.
pub fn try_parse(buf: &[u8], limits: &ParseLimits) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_len > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".into()))?;

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => {
            return Err(HttpError::BadRequest(format!(
                "unsupported version {other:?}"
            )))
        }
    };
    let method =
        Method::parse(method).ok_or_else(|| HttpError::UnsupportedMethod(method.into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; send Content-Length".into(),
        ));
    }

    let content_length = match headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .count()
    {
        0 => 0usize,
        1 => {
            let raw = headers
                .iter()
                .find(|(n, _)| n == "content-length")
                .map(|(_, v)| v.as_str())
                .expect("counted above");
            raw.parse()
                .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length {raw:?}")))?
        }
        _ => {
            return Err(HttpError::BadRequest(
                "multiple Content-Length headers".into(),
            ))
        }
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let request = Request {
        method,
        path,
        query,
        headers,
        body: buf[head_len..total].to_vec(),
        http10,
    };
    Ok(Some((request, total)))
}

/// Index just past the `\r\n\r\n` head terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Reads one request from a stream, buffering into `buf`.
///
/// Returns `Ok(None)` on a clean EOF between requests (the client hung
/// up). Leftover bytes beyond the parsed request stay in `buf`.
///
/// `budget` bounds the **whole** request read, counted from its first
/// byte: a client trickling one byte per socket-timeout interval cannot
/// pin a worker past the budget (slow-loris defence) — the per-read
/// socket timeout alone resets on every byte and would never fire.
///
/// # Errors
///
/// `Err(Ok(http_error))` for protocol violations (caller should answer
/// with `http_error.status()` and close), `Err(Err(io_error))` for
/// socket failures, per-read timeouts, and an exhausted budget.
#[allow(clippy::result_large_err)] // the nested Result *is* the protocol/io split
pub fn read_request(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    limits: &ParseLimits,
    budget: std::time::Duration,
) -> Result<Option<Request>, Result<HttpError, std::io::Error>> {
    let mut chunk = [0u8; 8 * 1024];
    // The budget clock starts at the request's first byte; leftover
    // pipelined bytes count as that first byte.
    let mut deadline: Option<std::time::Instant> =
        (!buf.is_empty()).then(|| std::time::Instant::now() + budget);
    loop {
        if let Some((request, consumed)) = try_parse(buf, limits).map_err(Ok)? {
            buf.drain(..consumed);
            return Ok(Some(request));
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return Err(Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read budget exhausted",
            )));
        }
        let n = stream.read(&mut chunk).map_err(Err)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(Ok(HttpError::BadRequest(
                "connection closed mid-request".into(),
            )));
        }
        if deadline.is_none() {
            deadline = Some(std::time::Instant::now() + budget);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// One HTTP response, ready to serialise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra response headers (lower-case names), e.g. `deprecation`.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response from already-serialised text.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// Adds one extra response header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// The unified JSON error envelope:
    /// `{"error": {"code": "...", "message": "...", "retryable": bool}}`.
    ///
    /// Every error this service emits — router misses, parse failures,
    /// handler errors, overload shedding — uses this shape, so clients
    /// branch on the stable `code` instead of scraping messages.
    #[must_use]
    pub fn error_coded(status: u16, code: &str, message: &str, retryable: bool) -> Response {
        let detail = serde::Value::Map(vec![
            ("code".into(), serde::Value::Str(code.into())),
            ("message".into(), serde::Value::Str(message.into())),
            ("retryable".into(), serde::Value::Bool(retryable)),
        ]);
        let body = serde_json::to_string(&serde::Value::Map(vec![("error".into(), detail)]))
            .expect("error envelope serialises");
        Response::json(status, body)
    }

    /// An error envelope with the default code for `status` (see
    /// [`default_code`]).
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        Response::error_coded(status, default_code(status), message, status == 503)
    }

    /// Serialises the status line, headers and body.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// The stable machine-readable error code implied by a bare status.
#[must_use]
pub fn default_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        409 => "conflict",
        413 => "payload_too_large",
        422 => "unprocessable",
        431 => "headers_too_large",
        501 => "not_implemented",
        503 => "overloaded",
        _ => "internal",
    }
}

/// The canonical reason phrase for the statuses this service emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: ParseLimits = ParseLimits {
        max_head_bytes: 1024,
        max_body_bytes: 4096,
    };

    fn parse_ok(raw: &str) -> (Request, usize) {
        try_parse(raw.as_bytes(), &LIMITS)
            .expect("parses")
            .expect("complete")
    }

    #[test]
    fn parses_get_without_body() {
        let (req, used) = parse_ok("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(used, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let raw = "POST /search?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdEXTRA";
        let (req, used) = try_parse(raw.as_bytes(), &LIMITS).unwrap().unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/search");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert_eq!(&raw.as_bytes()[used..], b"EXTRA", "pipelined tail survives");
    }

    #[test]
    fn incremental_parsing_waits_for_completion() {
        let full = "POST /images HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
        for cut in [3, 20, full.len() - 1] {
            assert_eq!(try_parse(&full.as_bytes()[..cut], &LIMITS).unwrap(), None);
        }
        assert!(try_parse(full.as_bytes(), &LIMITS).unwrap().is_some());
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            "NOPE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET  HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(try_parse(raw.as_bytes(), &LIMITS).is_err(), "{raw:?}");
        }
        let patch = try_parse(b"PATCH /x HTTP/1.1\r\n\r\n", &LIMITS);
        assert_eq!(patch.unwrap_err().status(), 501);
    }

    #[test]
    fn enforces_limits() {
        let huge_head = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "a".repeat(2000));
        assert_eq!(
            try_parse(huge_head.as_bytes(), &LIMITS).unwrap_err(),
            HttpError::HeadTooLarge
        );
        // an unterminated head growing past the limit is shed early
        let creeping = format!("GET /x HTTP/1.1\r\nh: {}", "a".repeat(2000));
        assert_eq!(
            try_parse(creeping.as_bytes(), &LIMITS).unwrap_err(),
            HttpError::HeadTooLarge
        );
        let big_body = "POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
        assert_eq!(
            try_parse(big_body.as_bytes(), &LIMITS).unwrap_err(),
            HttpError::BodyTooLarge
        );
    }

    #[test]
    fn connection_close_detection() {
        let (req, _) = parse_ok("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.wants_close());
        let (req, _) = parse_ok("GET /x HTTP/1.1\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.wants_close());
        let (req, _) = parse_ok("GET /x HTTP/1.1\r\n\r\n");
        assert!(!req.wants_close(), "1.1 keeps alive by default");

        // HTTP/1.0 closes by default, keeps alive only when asked
        let (req, _) = parse_ok("GET /x HTTP/1.0\r\n\r\n");
        assert!(req.http10);
        assert!(req.wants_close());
        let (req, _) = parse_ok("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.wants_close());
    }

    #[test]
    fn read_request_over_fragmented_stream() {
        // A reader that yields one byte at a time exercises the
        // incremental path hard.
        struct Trickle(Vec<u8>, usize);
        impl Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let raw = b"POST /search HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}".to_vec();
        let budget = std::time::Duration::from_secs(5);
        let mut stream = Trickle(raw, 0);
        let mut buf = Vec::new();
        let req = read_request(&mut stream, &mut buf, &LIMITS, budget)
            .expect("reads")
            .expect("one request");
        assert_eq!(req.body, b"{}");
        assert!(buf.is_empty());
        // next read: clean EOF
        assert!(read_request(&mut stream, &mut buf, &LIMITS, budget)
            .expect("clean EOF")
            .is_none());
    }

    #[test]
    fn slow_loris_is_cut_by_the_request_budget() {
        // Each read yields one byte after a small delay; the per-read
        // socket timeout would never fire, but the budget must.
        struct Drip(Vec<u8>, usize);
        impl Read for Drip {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(std::time::Duration::from_millis(5));
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let raw = b"POST /search HTTP/1.1\r\ncontent-length: 400\r\n\r\n".to_vec();
        let mut stream = Drip(raw, 0);
        let mut buf = Vec::new();
        let budget = std::time::Duration::from_millis(30);
        let err = read_request(&mut stream, &mut buf, &LIMITS, budget)
            .expect_err("budget must cut the drip")
            .expect_err("io-level timeout, not a protocol error");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn response_writing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        Response::error(503, "server overloaded")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with(
            "{\"error\":{\"code\":\"overloaded\",\"message\":\"server overloaded\",\"retryable\":true}}"
        ));
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .with_header("deprecation", "true")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("deprecation: true\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn error_envelope_is_coded() {
        let resp = Response::error_coded(404, "unknown_record", "no record 7", false);
        let text = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            text,
            "{\"error\":{\"code\":\"unknown_record\",\"message\":\"no record 7\",\"retryable\":false}}"
        );
        assert_eq!(default_code(405), "method_not_allowed");
        assert_eq!(default_code(418), "internal");
    }
}
